//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`] (seedable, clonable), the [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits, and uniform range sampling over the integer and
//! float types the simulators draw. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic and high-quality, but *not* stream-compatible
//! with upstream rand. Nothing in this workspace depends on the exact
//! stream, only on seeded determinism (same seed ⇒ same stream).

/// Core random-number generation: the raw output interface.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience draws layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // Compare against a 53-bit uniform in [0, 1). p = 1.0 always wins;
        // p = 0.0 never does.
        if p >= 1.0 {
            return true;
        }
        distributions::uniform01(self.next_u64()) < p
    }

    /// A uniform value of an upstream-`Standard`-distribution-style type
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: distributions::Generable>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Map 64 uniform bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
    #[inline]
    pub(crate) fn uniform01(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types drawable by [`super::Rng::gen`] (upstream's `Standard`).
    pub trait Generable {
        fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Generable for f64 {
        fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            uniform01(rng.next_u64())
        }
    }

    impl Generable for f32 {
        fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Generable for bool {
        fn generate<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! generable_int {
        ($($t:ty),*) => {$(
            impl Generable for $t {
                fn generate<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    generable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod uniform {
        use super::super::RngCore;
        use super::uniform01;

        /// Types uniformly sampleable over a range.
        pub trait SampleUniform: Sized {
            /// Uniform draw in `[low, high]` (both inclusive).
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
            /// Uniform draw in `[low, high)` — per type, because "one below
            /// the end" differs between integers and floats.
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        /// Range forms accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    #[inline]
                    fn sample_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: $t,
                        high: $t,
                    ) -> $t {
                        debug_assert!(low <= high);
                        // Span as u64 handles the full signed domain via
                        // wrapping arithmetic; `span == 0` encodes the full
                        // 64-bit (or narrower) domain.
                        let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                        if span == 0 {
                            return rng.next_u64() as $t;
                        }
                        // Multiply-shift bounded draw (Lemire); the modulo
                        // bias at these span sizes is irrelevant here — only
                        // seeded determinism matters.
                        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                        (low as u64).wrapping_add(hi) as $t
                    }

                    #[inline]
                    fn sample_exclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: $t,
                        high: $t,
                    ) -> $t {
                        Self::sample_inclusive(rng, low, high - 1)
                    }
                }
            )*};
        }
        sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
                low + uniform01(rng.next_u64()) * (high - low)
            }

            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
                Self::sample_inclusive(rng, low, high)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_exclusive(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                T::sample_inclusive(rng, low, high)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(3u64..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn gen_bool_extremes_and_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

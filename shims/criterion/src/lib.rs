//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`], benchmark
//! groups with [`BenchmarkId`], `bench_function` / `bench_with_input`,
//! `sample_size`, and [`Throughput`] reporting. Measurement is a simple
//! calibrated wall-clock loop (median of samples); there is no statistical
//! regression analysis, plotting, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Throughput basis for a benchmark: bytes or logical elements processed
/// per iteration. Enables MB/s (or Melem/s) reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identify a bench as `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// The timing loop driver handed to bench closures.
pub struct Bencher {
    /// Measured median per-iteration time, filled by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Measure `routine`: warm up, calibrate an iteration count, then take
    /// timed samples and record the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find how many iterations fill ~5 ms.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(5) || n >= 1 << 30 {
                break t / (n as u32);
            }
            n *= 2;
        };
        let iters_per_sample = (Duration::from_millis(10).as_nanos() as u64)
            .checked_div(per_iter.as_nanos().max(1) as u64)
            .unwrap_or(1)
            .clamp(1, 1 << 30);
        const SAMPLES: usize = 11;
        let mut samples = [Duration::ZERO; SAMPLES];
        for s in &mut samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            *s = start.elapsed() / (iters_per_sample as u32);
        }
        samples.sort_unstable();
        self.elapsed_per_iter = samples[SAMPLES / 2];
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn format_throughput(t: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64();
    match t {
        Throughput::Bytes(b) => {
            let mib = b as f64 / (1024.0 * 1024.0) / secs;
            format!("{mib:.2} MiB/s")
        }
        Throughput::Elements(e) => {
            let melem = e as f64 / 1e6 / secs;
            format!("{melem:.2} Melem/s")
        }
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    match throughput {
        Some(t) => println!(
            "{label:<50} time: {:>12}   thrpt: {:>14}",
            format_time(b.elapsed_per_iter),
            format_throughput(t, b.elapsed_per_iter)
        ),
        None => println!("{label:<50} time: {:>12}", format_time(b.elapsed_per_iter)),
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Criterion {
        run_one(name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("— group {name} —");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput basis.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput basis for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a named benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, f);
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        match self.throughput {
            Some(t) => println!(
                "{label:<50} time: {:>12}   thrpt: {:>14}",
                format_time(b.elapsed_per_iter),
                format_throughput(t, b.elapsed_per_iter)
            ),
            None => println!("{label:<50} time: {:>12}", format_time(b.elapsed_per_iter)),
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect bench functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .throughput(Throughput::Bytes(1024))
            .bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    #[test]
    fn formatting() {
        assert_eq!(format_time(Duration::from_nanos(5)), "5 ns");
        assert!(format_time(Duration::from_micros(5)).ends_with("µs"));
        assert!(
            format_throughput(Throughput::Bytes(1 << 20), Duration::from_secs(1))
                .starts_with("1.00")
        );
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
    }
}

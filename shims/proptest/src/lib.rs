//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of the proptest 1.x API its test suites use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `boxed`, tuple and `Vec` composition,
//! [`collection::vec`], [`char::range`], [`arbitrary::any`], `prop_oneof!`,
//! and the `prop_assert*` macros. Inputs are drawn from a deterministic
//! seeded RNG. **No shrinking**: a failing case panics with the standard
//! assertion message (the generated inputs are printed by the failing
//! assertion itself where the test includes them).

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic source of random test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        pub(crate) fn new(seed: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; 64 keeps the offline suite quick
            // while still exercising a meaningful input distribution.
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives a property: samples inputs and applies the test closure.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
    }

    impl TestRunner {
        /// A runner with a fixed seed (deterministic across runs).
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner {
                rng: TestRng::new(0x0bad_5eed_cafe_f00d),
                cases: config.cases,
            }
        }

        /// Run `test` against `cases` sampled inputs. Failures panic.
        pub fn run<S, T, R>(&mut self, strategy: &S, mut test: T)
        where
            S: crate::strategy::Strategy,
            T: FnMut(S::Value) -> R,
        {
            for _ in 0..self.cases {
                let input = strategy.sample(&mut self.rng);
                test(input);
            }
        }
    }
}

pub mod strategy {
    use std::sync::Arc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// `prop_flat_map` adapter.
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from the alternative strategies.
        ///
        /// # Panics
        /// Panics on an empty alternative list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.0.len());
            self.0[i].sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Fixed-shape composition: a `Vec` of strategies generates a `Vec` of
    /// one value per element, in order.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
        (A, B, C, D, E, F, G, H, I);
        (A, B, C, D, E, F, G, H, I, J);
        (A, B, C, D, E, F, G, H, I, J, K);
        (A, B, C, D, E, F, G, H, I, J, K, L);
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.gen::<$t>()
                }
            }
        )*};
    }
    arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// The canonical strategy for `T` (`any::<T>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size specifications for [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Variable-length `Vec` strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod char {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `char` in an inclusive code-point range.
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn sample(&self, rng: &mut TestRng) -> char {
            // Resample on surrogate gaps; callers use small ASCII ranges
            // where the first draw always succeeds.
            loop {
                if let Some(c) = char::from_u32(rng.0.gen_range(self.lo..=self.hi)) {
                    return c;
                }
            }
        }
    }

    /// Chars in `[start, end]` inclusive.
    pub fn range(start: char, end: char) -> CharRange {
        assert!(start <= end, "empty char range");
        CharRange {
            lo: start as u32,
            hi: end as u32,
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::char;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests: each function runs its body against `cases`
/// random samples of its `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| $body);
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

/// Uniform choice among strategies generating the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (panics on failure; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_draws_the_configured_case_count() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(17));
        let mut n = 0;
        runner.run(&(0i64..10, any::<bool>()), |(x, _b)| {
            assert!((0..10).contains(&x));
            n += 1;
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn strategies_compose() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(50));
        let strat = prop::collection::vec(
            prop_oneof![Just(0u8), 1u8..4, any::<u8>().prop_map(|b| b | 0x80)],
            1..=5,
        )
        .prop_flat_map(|v| (Just(v.len()), Just(v)));
        runner.run(&(strat,), |((len, v),)| {
            assert_eq!(len, v.len());
            assert!((1..=5).contains(&v.len()));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro form compiles and runs with tuple patterns.
        #[test]
        fn macro_form_works((a, mut b) in (0u32..5, 0u32..5), c in prop::char::range('a', 'c')) {
            b += 1;
            prop_assert!(a < 5 && b <= 5);
            prop_assert!(('a'..='c').contains(&c));
            prop_assert_eq!(a + b, b + a);
        }
    }
}

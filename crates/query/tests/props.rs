//! Property-based tests of the relational operators: algebraic identities
//! that must hold for arbitrary data, plus kernel/oracle agreement.

use df_query::ops::{
    cross_pages, cross_pages_raw, dedup_pages_raw, dedup_tuples, difference_pages_raw,
    difference_relations, join_pages, join_pages_raw, merge_join_relations,
    nested_loops_join_relations, project_page, project_page_raw, restrict_page, restrict_page_raw,
    union_pages_raw, union_relations,
};
use df_relalg::{
    CmpOp, DataType, JoinCondition, Page, Predicate, Projection, Relation, Schema, Tuple, Value,
};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::build()
        .attr("a", DataType::Int)
        .attr("b", DataType::Int)
        .finish()
        .expect("schema")
}

fn relation(name: &str, rows: &[(i64, i64)]) -> Relation {
    Relation::from_tuples(
        name,
        schema(),
        16 + 16 * 3,
        rows.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)])),
    )
    .expect("relation")
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((-20i64..20, -20i64..20), 0..max)
}

fn count_matches(rows: &[(i64, i64)], pred: impl Fn(&(i64, i64)) -> bool) -> usize {
    rows.iter().filter(|r| pred(r)).count()
}

// ---- mixed-schema fixtures for the zero-copy/decoded equivalence tests ----

fn mixed_schema() -> Schema {
    Schema::build()
        .attr("id", DataType::Int)
        .attr("flag", DataType::Bool)
        .attr("tag", DataType::Str(6))
        .finish()
        .expect("schema")
}

/// (id, flag, tag) rows; tags draw from a tiny alphabet at varying lengths
/// so padding, prefixes, and duplicates all occur.
fn arb_mixed_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64, Vec<char>)>> {
    prop::collection::vec(
        (
            -30i64..30,
            0i64..2,
            prop::collection::vec(prop::char::range('a', 'c'), 0..6),
        ),
        0..max,
    )
}

fn mixed_relation(rows: &[(i64, i64, Vec<char>)]) -> Relation {
    Relation::from_tuples(
        "m",
        mixed_schema(),
        16 + mixed_schema().tuple_width() * 3,
        rows.iter().map(|(id, flag, tag)| {
            Tuple::new(vec![
                Value::Int(*id),
                Value::Bool(*flag % 2 == 1),
                Value::str(&tag.iter().collect::<String>()),
            ])
        }),
    )
    .expect("relation")
}

/// Canonical encoding of a decoded tuple stream (the byte-identity oracle).
fn encode_all(schema: &Schema, tuples: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tuples {
        t.encode(schema, &mut out).expect("conforming tuple");
    }
    out
}

/// The raw images a zero-copy kernel produced, concatenated.
fn raw_bytes(buf: &df_relalg::TupleBuf) -> Vec<u8> {
    buf.refs().flat_map(|r| r.raw().to_vec()).collect()
}

proptest! {
    /// σ keeps exactly the matching tuples, page by page.
    #[test]
    fn restrict_counts_match_reference(rows in arb_rows(60), cutoff in -20i64..20) {
        let rel = relation("t", &rows);
        let p = Predicate::cmp_const(rel.schema(), "a", CmpOp::Lt, Value::Int(cutoff)).unwrap();
        let kept: usize = rel.pages().iter().map(|pg| restrict_page(pg, &p).len()).sum();
        prop_assert_eq!(kept, count_matches(&rows, |&(a, _)| a < cutoff));
    }

    /// σ_p(σ_q(R)) ≡ σ_{p∧q}(R).
    #[test]
    fn restrict_composes_as_conjunction(rows in arb_rows(60), c1 in -20i64..20, c2 in -20i64..20) {
        let rel = relation("t", &rows);
        let p = Predicate::cmp_const(rel.schema(), "a", CmpOp::Lt, Value::Int(c1)).unwrap();
        let q = Predicate::cmp_const(rel.schema(), "b", CmpOp::Ge, Value::Int(c2)).unwrap();
        let pq = p.clone().and(q.clone());
        let two_pass: Vec<Tuple> = rel
            .pages()
            .iter()
            .flat_map(|pg| restrict_page(pg, &p))
            .filter(|t| q.eval(t))
            .collect();
        let one_pass: Vec<Tuple> = rel
            .pages()
            .iter()
            .flat_map(|pg| restrict_page(pg, &pq))
            .collect();
        prop_assert_eq!(two_pass, one_pass);
    }

    /// Nested loops and sort-merge agree (as multisets) on any equi-join.
    #[test]
    fn join_algorithms_agree(left in arb_rows(40), right in arb_rows(40)) {
        let l = relation("l", &left);
        let r = relation("r", &right);
        let cond = JoinCondition::equi(l.schema(), "a", r.schema(), "a").unwrap();
        let mut nl = nested_loops_join_relations(&l, &r, &cond);
        let mut sm = merge_join_relations(&l, &r, &cond).unwrap();
        let key = |t: &Tuple| format!("{t}");
        nl.sort_by_key(key);
        sm.sort_by_key(key);
        prop_assert_eq!(nl, sm);
    }

    /// |R ⋈ S| on the key attribute equals the sum over key groups of
    /// |R_k|·|S_k| (the textbook cardinality identity).
    #[test]
    fn join_cardinality_identity(left in arb_rows(40), right in arb_rows(40)) {
        let l = relation("l", &left);
        let r = relation("r", &right);
        let cond = JoinCondition::equi(l.schema(), "a", r.schema(), "a").unwrap();
        let joined = nested_loops_join_relations(&l, &r, &cond).len();
        let expected: usize = (-20i64..20)
            .map(|k| {
                count_matches(&left, |&(a, _)| a == k) * count_matches(&right, |&(a, _)| a == k)
            })
            .sum();
        prop_assert_eq!(joined, expected);
    }

    /// Cross product cardinality is |R|·|S| (page-wise kernel).
    #[test]
    fn cross_cardinality(left in arb_rows(25), right in arb_rows(25)) {
        let l = relation("l", &left);
        let r = relation("r", &right);
        let mut n = 0;
        for lp in l.pages() {
            for rp in r.pages() {
                n += cross_pages(lp, rp).len();
            }
        }
        prop_assert_eq!(n, left.len() * right.len());
    }

    /// Set identities: |R ∪ S| = |distinct R| + |S − R|;  R − R = ∅;
    /// union is commutative as a set.
    #[test]
    fn set_operator_identities(left in arb_rows(40), right in arb_rows(40)) {
        let l = relation("l", &left);
        let r = relation("r", &right);
        let union_lr = union_relations(&l, &r).unwrap();
        let union_rl = union_relations(&r, &l).unwrap();
        prop_assert_eq!(union_lr.len(), union_rl.len());
        let distinct_l = dedup_tuples(l.tuples()).len();
        let r_minus_l = difference_relations(&r, &l).unwrap().len();
        prop_assert_eq!(union_lr.len(), distinct_l + r_minus_l);
        prop_assert!(difference_relations(&l, &l).unwrap().is_empty());
    }

    /// π is idempotent on the identity projection and length-preserving.
    #[test]
    fn projection_laws(rows in arb_rows(40)) {
        let rel = relation("t", &rows);
        let ident = Projection::new(rel.schema(), &["a", "b"]).unwrap();
        for pg in rel.pages() {
            let out = project_page(pg, &ident);
            prop_assert_eq!(out.len(), pg.len());
            let back: Vec<Tuple> = pg.tuples().collect();
            prop_assert_eq!(out, back);
        }
        let narrow = Projection::new(rel.schema(), &["b"]).unwrap();
        let projected: usize = rel.pages().iter().map(|pg| project_page(pg, &narrow).len()).sum();
        prop_assert_eq!(projected, rows.len());
    }

    /// join_pages over all page pairs equals the whole-relation kernel.
    #[test]
    fn page_kernel_composes_to_relation_kernel(left in arb_rows(30), right in arb_rows(30)) {
        let l = relation("l", &left);
        let r = relation("r", &right);
        let cond = JoinCondition::new(l.schema(), "a", CmpOp::Le, r.schema(), "b").unwrap();
        let mut page_wise = Vec::new();
        for lp in l.pages() {
            for rp in r.pages() {
                page_wise.extend(join_pages(lp, rp, &cond));
            }
        }
        let mut whole = nested_loops_join_relations(&l, &r, &cond);
        let key = |t: &Tuple| format!("{t}");
        page_wise.sort_by_key(key);
        whole.sort_by_key(key);
        prop_assert_eq!(page_wise, whole);
    }

    /// Zero-copy restrict emits byte-identical images to the decoded
    /// kernel on a mixed Int/Bool/Str schema (string predicates exercise
    /// the NUL-padding-aware encoded comparison).
    #[test]
    fn raw_restrict_byte_identical(rows in arb_mixed_rows(50), cut in -30i64..30) {
        let rel = mixed_relation(&rows);
        let s = rel.schema().clone();
        let p = Predicate::cmp_const(&s, "id", CmpOp::Ge, Value::Int(cut))
            .unwrap()
            .or(Predicate::cmp_const(&s, "tag", CmpOp::Lt, Value::str("bb")).unwrap())
            .and(Predicate::cmp_const(&s, "flag", CmpOp::Eq, Value::Bool(true)).unwrap());
        for pg in rel.pages() {
            let raw = restrict_page_raw(pg, &p);
            let decoded = restrict_page(pg, &p);
            prop_assert_eq!(raw.len(), decoded.len());
            prop_assert_eq!(encode_all(&s, &decoded), raw_bytes(&raw));
        }
    }

    /// Zero-copy projection (attribute byte-range copies) matches the
    /// decoded kernel, including reordering, byte for byte.
    #[test]
    fn raw_project_byte_identical(rows in arb_mixed_rows(50)) {
        let rel = mixed_relation(&rows);
        let s = rel.schema().clone();
        for names in [&["tag"][..], &["tag", "id"][..], &["flag", "id", "tag"][..]] {
            let proj = Projection::new(&s, names).unwrap();
            let out_schema = proj.output_schema(&s).unwrap();
            for pg in rel.pages() {
                let raw = project_page_raw(pg, &proj, &out_schema);
                let decoded = project_page(pg, &proj);
                prop_assert_eq!(encode_all(&out_schema, &decoded), raw_bytes(&raw));
            }
        }
    }

    /// Zero-copy join (raw key-byte comparison) agrees with the decoded
    /// kernel for every comparison operator, on Int and Str keys.
    #[test]
    fn raw_join_matches_decoded(left in arb_mixed_rows(25), right in arb_mixed_rows(25)) {
        let l = mixed_relation(&left);
        let r = mixed_relation(&right);
        let out_schema = l.schema().concat(r.schema());
        for key in ["id", "tag"] {
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                let c = JoinCondition::new(l.schema(), key, op, r.schema(), key).unwrap();
                for lp in l.pages() {
                    for rp in r.pages() {
                        let raw = join_pages_raw(lp, rp, &c, &out_schema);
                        prop_assert_eq!(raw.to_tuples(), join_pages(lp, rp, &c));
                    }
                }
            }
        }
        for lp in l.pages() {
            for rp in r.pages() {
                let raw = cross_pages_raw(lp, rp, &out_schema);
                prop_assert_eq!(raw.to_tuples(), cross_pages(lp, rp));
            }
        }
    }

    /// Zero-copy set operators (raw-image hashing) agree with the decoded
    /// relation kernels tuple for tuple, in order.
    #[test]
    fn raw_set_ops_match_decoded(left in arb_mixed_rows(40), right in arb_mixed_rows(40)) {
        let l = mixed_relation(&left);
        let r = mixed_relation(&right);
        let s = l.schema().clone();
        let lp: Vec<&Page> = l.pages().iter().map(|p| p.as_ref()).collect();
        let rp: Vec<&Page> = r.pages().iter().map(|p| p.as_ref()).collect();
        prop_assert_eq!(
            union_pages_raw(&lp, &rp, &s).to_tuples(),
            union_relations(&l, &r).unwrap()
        );
        prop_assert_eq!(
            difference_pages_raw(&lp, &rp, &s).to_tuples(),
            difference_relations(&l, &r).unwrap()
        );
        prop_assert_eq!(dedup_pages_raw(&lp, &s).to_tuples(), dedup_tuples(l.tuples()));
    }

    /// dedup is idempotent and order-preserving on first occurrences.
    #[test]
    fn dedup_idempotent(rows in arb_rows(50)) {
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect();
        let once = dedup_tuples(tuples.clone());
        let twice = dedup_tuples(once.clone());
        prop_assert_eq!(&once, &twice);
        // Every output tuple appears in the input, in order of first occurrence.
        let mut cursor = 0;
        for t in &once {
            let pos = tuples[cursor..].iter().position(|u| u == t);
            prop_assert!(pos.is_some());
            cursor += pos.unwrap();
        }
    }
}

proptest! {
    /// The hash-accelerated page kernel is byte-identical to the
    /// nested-loops sweep on every equi-join page pair, under
    /// duplicate-heavy Int, Bool, and Str keys (`flag` has two distinct
    /// values, so probe lists run long).
    #[test]
    fn hash_join_byte_identical_to_nested(
        left in arb_mixed_rows(40),
        right in arb_mixed_rows(40),
    ) {
        use df_query::ops::hash_join_pages_raw;
        let l = mixed_relation(&left);
        let r = mixed_relation(&right);
        let out_schema = l.schema().concat(r.schema());
        for key in ["id", "flag", "tag"] {
            let c = JoinCondition::equi(l.schema(), key, r.schema(), key).unwrap();
            for lp in l.pages() {
                for rp in r.pages() {
                    let nested = join_pages_raw(lp, rp, &c, &out_schema);
                    let hashed = hash_join_pages_raw(lp, rp, &c, &out_schema);
                    prop_assert_eq!(
                        raw_bytes(&nested),
                        raw_bytes(&hashed),
                        "hash join diverged on key {}", key
                    );
                }
            }
        }
    }
}

//! Page-at-a-time operator kernels.
//!
//! These functions are the "opcode" implementations an instruction processor
//! runs on the data pages inside an instruction packet (paper Fig 4.3). The
//! oracle executor composes the very same kernels sequentially, which is why
//! simulated-machine results are bit-comparable with oracle results.

mod join;
mod project;
mod raw;
mod restrict;
mod set_ops;
mod span;

pub use join::{
    hash_join_applicable, hash_join_pages_raw, hash_join_probe, hash_join_relations, join_pages,
    join_pages_raw, merge_join_relations, nested_loops_join_relations,
};
pub use project::{dedup_tuples, project_page, project_page_raw};
pub use restrict::{restrict_page, restrict_page_raw};
pub use set_ops::{
    cross_pages, cross_pages_raw, dedup_pages_raw, difference_pages_raw, difference_relations,
    union_pages_raw, union_relations,
};
pub use span::{span_output_schema, span_page, span_page_raw, SpanStep};

use df_relalg::{Page, Relation, Result, Schema, Tuple};

/// Pack a tuple stream into pages of `page_size` (the last page may be
/// partial). Used by kernels' callers to build output relations.
pub fn pack_tuples(
    name: &str,
    schema: Schema,
    page_size: usize,
    tuples: impl IntoIterator<Item = Tuple>,
) -> Result<Relation> {
    Relation::from_tuples(name, schema, page_size, tuples)
}

/// Pack tuples into a single (possibly overfull-rejecting) sequence of
/// pages without a relation wrapper — what an IP's output buffer does.
pub fn pack_pages(
    schema: &Schema,
    page_size: usize,
    tuples: impl IntoIterator<Item = Tuple>,
) -> Result<Vec<Page>> {
    let mut pages: Vec<Page> = Vec::new();
    for t in tuples {
        if pages.last().map_or(true, Page::is_full) {
            pages.push(Page::new(schema.clone(), page_size)?);
        }
        pages.last_mut().expect("just pushed a page").push(&t)?;
    }
    Ok(pages)
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for kernel tests.
    use df_relalg::{DataType, Page, Schema, Tuple, Value};

    pub fn kv_schema() -> Schema {
        Schema::build()
            .attr("k", DataType::Int)
            .attr("v", DataType::Int)
            .finish()
            .unwrap()
    }

    pub fn kv(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    /// A page holding the given (k, v) pairs.
    pub fn kv_page(pairs: &[(i64, i64)]) -> Page {
        let mut p = Page::new(kv_schema(), 16 + 16 * pairs.len().max(1)).unwrap();
        for &(k, v) in pairs {
            p.push(&kv(k, v)).unwrap();
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn pack_tuples_pages_correctly() {
        let r = pack_tuples("t", kv_schema(), 16 + 32, (0..5).map(|i| kv(i, i))).unwrap();
        assert_eq!(r.num_pages(), 3); // 2 per page
        assert_eq!(r.num_tuples(), 5);
    }

    #[test]
    fn pack_pages_behaves_like_ip_output_buffer() {
        let pages = pack_pages(&kv_schema(), 16 + 32, (0..5).map(|i| kv(i, i))).unwrap();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[2].len(), 1);
        let empty = pack_pages(&kv_schema(), 16 + 32, std::iter::empty()).unwrap();
        assert!(empty.is_empty());
    }
}

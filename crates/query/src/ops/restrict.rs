//! The restrict (σ) kernel.

use df_relalg::{Page, Predicate, Tuple, TupleBuf};

use super::raw::{copy_rows, RowFilter};

/// Apply `predicate` to every tuple of `page`, returning the survivors.
///
/// This is the unit of work an IP performs for one restrict instruction
/// packet: one source page in, up to one page worth of result tuples out.
///
/// Decoded-tuple variant, kept for the oracle executor and as the
/// baseline the kernel benches compare against; the machines run
/// [`restrict_page_raw`].
pub fn restrict_page(page: &Page, predicate: &Predicate) -> Vec<Tuple> {
    page.tuples().filter(|t| predicate.eval(t)).collect()
}

/// Zero-copy restrict: two-pass selection over the page's raw byte area.
/// The predicate's `Int` comparisons run as branchless stride loops AND-ing
/// into a selection mask; runs of consecutive survivors then copy as single
/// `memcpy`s. No tuple is decoded or re-encoded.
pub fn restrict_page_raw(page: &Page, predicate: &Predicate) -> TupleBuf {
    let schema = page.schema();
    let w = schema.tuple_width();
    let filter = RowFilter::compile(std::slice::from_ref(predicate), schema);
    if filter.is_trivial() {
        return TupleBuf::from_images(schema.clone(), page.raw_data().to_vec());
    }
    let mut mask = vec![true; page.len()];
    filter.apply(page, &mut mask);
    let bytes = copy_rows(page.raw_data(), w, Some(&mask), &[(0, w)], w);
    TupleBuf::from_images(schema.clone(), bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;
    use df_relalg::{CmpOp, Value};

    #[test]
    fn filters_tuples() {
        let page = kv_page(&[(1, 10), (2, 20), (3, 30)]);
        let p = Predicate::cmp_const(&kv_schema(), "k", CmpOp::Ge, Value::Int(2)).unwrap();
        let out = restrict_page(&page, &p);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], kv(2, 20));
    }

    #[test]
    fn true_predicate_keeps_everything() {
        let page = kv_page(&[(1, 1), (2, 2)]);
        assert_eq!(restrict_page(&page, &Predicate::True).len(), 2);
    }

    #[test]
    fn empty_page_yields_nothing() {
        let page = kv_page(&[]);
        assert!(restrict_page(&page, &Predicate::True).is_empty());
    }

    #[test]
    fn raw_restrict_is_byte_identical_to_decoded() {
        let page = kv_page(&[(1, 10), (2, 20), (3, 30), (4, 40)]);
        let p = Predicate::cmp_const(&kv_schema(), "k", CmpOp::Ge, Value::Int(2))
            .unwrap()
            .and(Predicate::cmp_const(&kv_schema(), "v", CmpOp::Ne, Value::Int(30)).unwrap());
        assert_eq!(
            restrict_page_raw(&page, &p).to_tuples(),
            restrict_page(&page, &p)
        );
    }

    #[test]
    fn preserves_input_order() {
        let page = kv_page(&[(3, 0), (1, 0), (2, 0)]);
        let p = Predicate::cmp_const(&kv_schema(), "k", CmpOp::Le, Value::Int(3)).unwrap();
        let ks: Vec<i64> = restrict_page(&page, &p)
            .iter()
            .map(|t| match t.get(0).unwrap() {
                Value::Int(k) => *k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ks, vec![3, 1, 2]);
    }
}

//! Cross product, union, and difference kernels.

use std::collections::HashSet;

use df_relalg::{Error, Page, Relation, Result, Schema, Tuple, TupleBuf};

/// Cross product of one page pair (the join kernel with θ ≡ true, kept
/// separate so metrics can distinguish the operators).
///
/// Decoded-tuple variant, kept for the oracle executor; the machines run
/// [`cross_pages_raw`].
pub fn cross_pages(outer: &Page, inner: &Page) -> Vec<Tuple> {
    let inner_tuples: Vec<Tuple> = inner.tuples().collect();
    let mut out = Vec::new();
    for o in outer.tuples() {
        for i in &inner_tuples {
            out.push(o.concat(i));
        }
    }
    out
}

/// Zero-copy cross product: every output row is the concatenation of two
/// borrowed images.
pub fn cross_pages_raw(outer: &Page, inner: &Page, out_schema: &Schema) -> TupleBuf {
    let mut out = TupleBuf::new(out_schema.clone());
    for o in outer.tuple_refs() {
        for i in inner.tuple_refs() {
            out.push_concat(o.raw(), i.raw());
        }
    }
    out
}

/// Zero-copy set union over complete page lists: membership hashes the raw
/// tuple images (the encoding is canonical — images are equal exactly when
/// tuples are), so nothing is decoded. First-occurrence order, like
/// [`union_relations`].
pub fn union_pages_raw(left: &[&Page], right: &[&Page], schema: &Schema) -> TupleBuf {
    let mut seen: HashSet<&[u8]> = HashSet::new();
    let mut out = TupleBuf::new(schema.clone());
    for t in left
        .iter()
        .flat_map(|p| p.tuple_refs())
        .chain(right.iter().flat_map(|p| p.tuple_refs()))
    {
        if seen.insert(t.raw()) {
            out.push_ref(&t);
        }
    }
    out
}

/// Zero-copy set difference `left − right` over complete page lists, with
/// raw-image hashing like [`union_pages_raw`].
pub fn difference_pages_raw(left: &[&Page], right: &[&Page], schema: &Schema) -> TupleBuf {
    let exclude: HashSet<&[u8]> = right
        .iter()
        .flat_map(|p| p.tuple_refs())
        .map(|t| t.raw())
        .collect();
    let mut seen: HashSet<&[u8]> = HashSet::new();
    let mut out = TupleBuf::new(schema.clone());
    for t in left.iter().flat_map(|p| p.tuple_refs()) {
        if !exclude.contains(t.raw()) && seen.insert(t.raw()) {
            out.push_ref(&t);
        }
    }
    out
}

/// Zero-copy duplicate elimination over complete page lists (raw-image
/// hashing, first-occurrence order) — the π-dedup finalizer's hot path.
pub fn dedup_pages_raw(pages: &[&Page], schema: &Schema) -> TupleBuf {
    let mut seen: HashSet<&[u8]> = HashSet::new();
    let mut out = TupleBuf::new(schema.clone());
    for t in pages.iter().flat_map(|p| p.tuple_refs()) {
        if seen.insert(t.raw()) {
            out.push_ref(&t);
        }
    }
    out
}

/// Set union of two relations (duplicates across and within inputs removed).
///
/// # Errors
/// Fails if the inputs are not union-compatible (different schemas).
pub fn union_relations(left: &Relation, right: &Relation) -> Result<Vec<Tuple>> {
    if left.schema() != right.schema() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "union of incompatible schemas {} vs {}",
                left.schema(),
                right.schema()
            ),
        });
    }
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut out = Vec::new();
    for t in left.tuples().chain(right.tuples()) {
        if seen.insert(t.clone()) {
            out.push(t);
        }
    }
    Ok(out)
}

/// Set difference `left − right`.
///
/// This operator is *blocking* on its right input: no tuple of `left` can be
/// emitted until all of `right` has been seen — which is why
/// [`crate::Op::Difference`] reports `is_pipelineable() == false` and the
/// page-level scheduler treats its right operand at relation granularity.
///
/// # Errors
/// Fails if the inputs are not union-compatible.
pub fn difference_relations(left: &Relation, right: &Relation) -> Result<Vec<Tuple>> {
    if left.schema() != right.schema() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "difference of incompatible schemas {} vs {}",
                left.schema(),
                right.schema()
            ),
        });
    }
    let exclude: HashSet<Tuple> = right.tuples().collect();
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut out = Vec::new();
    for t in left.tuples() {
        if !exclude.contains(&t) && seen.insert(t.clone()) {
            out.push(t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;

    fn rel(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(
            "t",
            kv_schema(),
            16 + 32,
            pairs.iter().map(|&(k, v)| kv(k, v)),
        )
        .unwrap()
    }

    #[test]
    fn cross_is_full_product() {
        let a = kv_page(&[(1, 1), (2, 2)]);
        let b = kv_page(&[(9, 9), (8, 8), (7, 7)]);
        assert_eq!(cross_pages(&a, &b).len(), 6);
        assert_eq!(cross_pages(&a, &kv_page(&[])).len(), 0);
    }

    #[test]
    fn union_removes_duplicates() {
        let a = rel(&[(1, 1), (2, 2), (2, 2)]);
        let b = rel(&[(2, 2), (3, 3)]);
        let out = union_relations(&a, &b).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn raw_set_ops_match_decoded_kernels() {
        let a = rel(&[(1, 1), (2, 2), (2, 2), (3, 3), (1, 1)]);
        let b = rel(&[(2, 2), (4, 4), (4, 4)]);
        let s = kv_schema();
        let ap: Vec<&df_relalg::Page> = a.pages().iter().map(|p| p.as_ref()).collect();
        let bp: Vec<&df_relalg::Page> = b.pages().iter().map(|p| p.as_ref()).collect();
        assert_eq!(
            union_pages_raw(&ap, &bp, &s).to_tuples(),
            union_relations(&a, &b).unwrap()
        );
        assert_eq!(
            difference_pages_raw(&ap, &bp, &s).to_tuples(),
            difference_relations(&a, &b).unwrap()
        );
        assert_eq!(
            dedup_pages_raw(&ap, &s).to_tuples(),
            crate::ops::dedup_tuples(a.tuples())
        );
        // Cross product, raw vs decoded.
        let out_schema = s.concat(&s);
        assert_eq!(
            cross_pages_raw(ap[0], bp[0], &out_schema).to_tuples(),
            cross_pages(ap[0], bp[0])
        );
    }

    #[test]
    fn union_incompatible_schemas_fail() {
        let a = rel(&[(1, 1)]);
        let other_schema = df_relalg::Schema::build()
            .attr("z", df_relalg::DataType::Int)
            .finish()
            .unwrap();
        let b = Relation::new("b", other_schema, 100).unwrap();
        assert!(union_relations(&a, &b).is_err());
    }

    #[test]
    fn difference_subtracts_and_dedups() {
        let a = rel(&[(1, 1), (2, 2), (2, 2), (3, 3)]);
        let b = rel(&[(2, 2)]);
        let out = difference_relations(&a, &b).unwrap();
        assert_eq!(out, vec![kv(1, 1), kv(3, 3)]);
    }

    #[test]
    fn difference_with_empty_right_is_dedup_of_left() {
        let a = rel(&[(1, 1), (1, 1)]);
        let b = rel(&[]);
        assert_eq!(difference_relations(&a, &b).unwrap().len(), 1);
    }
}

//! Cross product, union, and difference kernels.

use std::collections::HashSet;

use df_relalg::{Error, Page, Relation, Result, Tuple};

/// Cross product of one page pair (the join kernel with θ ≡ true, kept
/// separate so metrics can distinguish the operators).
pub fn cross_pages(outer: &Page, inner: &Page) -> Vec<Tuple> {
    let inner_tuples: Vec<Tuple> = inner.tuples().collect();
    let mut out = Vec::new();
    for o in outer.tuples() {
        for i in &inner_tuples {
            out.push(o.concat(i));
        }
    }
    out
}

/// Set union of two relations (duplicates across and within inputs removed).
///
/// # Errors
/// Fails if the inputs are not union-compatible (different schemas).
pub fn union_relations(left: &Relation, right: &Relation) -> Result<Vec<Tuple>> {
    if left.schema() != right.schema() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "union of incompatible schemas {} vs {}",
                left.schema(),
                right.schema()
            ),
        });
    }
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut out = Vec::new();
    for t in left.tuples().chain(right.tuples()) {
        if seen.insert(t.clone()) {
            out.push(t);
        }
    }
    Ok(out)
}

/// Set difference `left − right`.
///
/// This operator is *blocking* on its right input: no tuple of `left` can be
/// emitted until all of `right` has been seen — which is why
/// [`crate::Op::Difference`] reports `is_pipelineable() == false` and the
/// page-level scheduler treats its right operand at relation granularity.
///
/// # Errors
/// Fails if the inputs are not union-compatible.
pub fn difference_relations(left: &Relation, right: &Relation) -> Result<Vec<Tuple>> {
    if left.schema() != right.schema() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "difference of incompatible schemas {} vs {}",
                left.schema(),
                right.schema()
            ),
        });
    }
    let exclude: HashSet<Tuple> = right.tuples().collect();
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut out = Vec::new();
    for t in left.tuples() {
        if !exclude.contains(&t) && seen.insert(t.clone()) {
            out.push(t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;

    fn rel(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_tuples("t", kv_schema(), 16 + 32, pairs.iter().map(|&(k, v)| kv(k, v)))
            .unwrap()
    }

    #[test]
    fn cross_is_full_product() {
        let a = kv_page(&[(1, 1), (2, 2)]);
        let b = kv_page(&[(9, 9), (8, 8), (7, 7)]);
        assert_eq!(cross_pages(&a, &b).len(), 6);
        assert_eq!(cross_pages(&a, &kv_page(&[])).len(), 0);
    }

    #[test]
    fn union_removes_duplicates() {
        let a = rel(&[(1, 1), (2, 2), (2, 2)]);
        let b = rel(&[(2, 2), (3, 3)]);
        let out = union_relations(&a, &b).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn union_incompatible_schemas_fail() {
        let a = rel(&[(1, 1)]);
        let other_schema = df_relalg::Schema::build()
            .attr("z", df_relalg::DataType::Int)
            .finish()
            .unwrap();
        let b = Relation::new("b", other_schema, 100).unwrap();
        assert!(union_relations(&a, &b).is_err());
    }

    #[test]
    fn difference_subtracts_and_dedups() {
        let a = rel(&[(1, 1), (2, 2), (2, 2), (3, 3)]);
        let b = rel(&[(2, 2)]);
        let out = difference_relations(&a, &b).unwrap();
        assert_eq!(out, vec![kv(1, 1), kv(3, 3)]);
    }

    #[test]
    fn difference_with_empty_right_is_dedup_of_left() {
        let a = rel(&[(1, 1), (1, 1)]);
        let b = rel(&[]);
        assert_eq!(difference_relations(&a, &b).unwrap().len(), 1);
    }
}

//! The project (π) kernel and duplicate elimination.
//!
//! Paper §5 reports the authors had "not yet developed an algorithm for
//! which a high degree of parallelism can be maintained" for projection
//! with duplicate elimination. We therefore split the operator exactly the
//! way their machines would have to:
//!
//! 1. [`project_page`] — the embarrassingly parallel part (attribute
//!    elimination), run per page on any IP;
//! 2. [`dedup_tuples`] — the blocking part (duplicate elimination), run
//!    where the projected stream is gathered (the oracle, or the IC that
//!    owns the project instruction).

use std::collections::HashSet;

use df_relalg::{Page, Projection, Schema, Tuple, TupleBuf};

use super::raw::{attr_runs, copy_rows};

/// Project every tuple of `page` onto the given attribute list.
///
/// Decoded-tuple variant, kept for the oracle executor and as the baseline
/// the kernel benches compare against; the machines run
/// [`project_page_raw`].
pub fn project_page(page: &Page, projection: &Projection) -> Vec<Tuple> {
    page.tuples()
        .map(|t| {
            projection
                .apply(&t)
                .expect("projection validated against page schema")
        })
        .collect()
}

/// Zero-copy projection: builds each output image by copying the selected
/// attributes' byte ranges out of the input image — no value is decoded.
/// `out_schema` is the projection's output schema (derived once by the
/// caller, typically carried by the instruction packet).
pub fn project_page_raw(page: &Page, projection: &Projection, out_schema: &Schema) -> TupleBuf {
    // Selected attribute ranges are coalesced once into contiguous byte
    // runs, so each output row is a handful of bulk copies instead of a
    // per-attribute offset recomputation (and an adjacent-attribute
    // projection is one memcpy per row).
    let runs = attr_runs(projection.indices(), page.schema());
    let bytes = copy_rows(
        page.raw_data(),
        page.schema().tuple_width(),
        None,
        &runs,
        out_schema.tuple_width(),
    );
    TupleBuf::from_images(out_schema.clone(), bytes)
}

/// Eliminate duplicates from a tuple stream, preserving first occurrence
/// order. Order preservation makes the oracle deterministic; the machines'
/// outputs are compared as multisets so their gather order doesn't matter.
pub fn dedup_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Vec<Tuple> {
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut out = Vec::new();
    for t in tuples {
        if seen.insert(t.clone()) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;
    use df_relalg::Value;

    #[test]
    fn projects_attributes() {
        let page = kv_page(&[(1, 10), (2, 20)]);
        let proj = Projection::new(&kv_schema(), &["v"]).unwrap();
        let out = project_page(&page, &proj);
        assert_eq!(out[0].values(), &[Value::Int(10)]);
        assert_eq!(out[1].values(), &[Value::Int(20)]);
    }

    #[test]
    fn projection_can_reorder() {
        let page = kv_page(&[(1, 10)]);
        let proj = Projection::new(&kv_schema(), &["v", "k"]).unwrap();
        let out = project_page(&page, &proj);
        assert_eq!(out[0].values(), &[Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn raw_project_matches_decoded_including_reorder() {
        let page = kv_page(&[(1, 10), (2, 20), (3, 30)]);
        for names in [&["v"][..], &["v", "k"][..], &["k", "v"][..]] {
            let proj = Projection::new(&kv_schema(), names).unwrap();
            let out_schema = proj.output_schema(&kv_schema()).unwrap();
            assert_eq!(
                project_page_raw(&page, &proj, &out_schema).to_tuples(),
                project_page(&page, &proj),
                "projection {names:?}"
            );
        }
    }

    #[test]
    fn dedup_removes_duplicates_keeping_first() {
        let ts = vec![kv(1, 1), kv(2, 2), kv(1, 1), kv(3, 3), kv(2, 2)];
        let out = dedup_tuples(ts);
        assert_eq!(out, vec![kv(1, 1), kv(2, 2), kv(3, 3)]);
    }

    #[test]
    fn dedup_of_unique_stream_is_identity() {
        let ts = vec![kv(1, 1), kv(2, 2)];
        assert_eq!(dedup_tuples(ts.clone()), ts);
    }

    #[test]
    fn projection_then_dedup_models_distinct() {
        // π_v over (1,7),(2,7),(3,8) with dedup -> {7, 8}
        let page = kv_page(&[(1, 7), (2, 7), (3, 8)]);
        let proj = Projection::new(&kv_schema(), &["v"]).unwrap();
        let out = dedup_tuples(project_page(&page, &proj));
        assert_eq!(out.len(), 2);
    }
}

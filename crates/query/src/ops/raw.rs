//! Shared machinery for the vectorized raw kernels.
//!
//! The canonical tuple encoding is fixed-width, so the unary kernels are
//! stride loops over a page's raw byte area. This module turns the
//! per-tuple interpreted hot loops (recursive predicate walk, per-attribute
//! range recomputation) into a two-pass shape:
//!
//! 1. **mask pass** — each comparison specialized out of the predicate tree
//!    runs as its own tight stride loop over the column bytes, AND-ing into
//!    a selection mask (branchless per row, auto-vectorizable);
//! 2. **copy pass** — surviving rows are copied with their projected
//!    attribute ranges coalesced into contiguous byte runs, so consecutive
//!    survivors of a whole-row copy collapse into single `memcpy`s.
//!
//! `restrict_page_raw`, `project_page_raw`, and `span_page_raw` are thin
//! compositions of these two passes.

use df_relalg::{CmpOp, DataType, Page, Predicate, Schema, Value};

/// One conjunct of a restriction, specialized for the mask pass.
enum Cmp<'a> {
    /// `Int` attribute vs constant: an 8-byte big-endian column compare.
    IntConst { off: usize, op: CmpOp, rhs: i64 },
    /// `Int` attribute vs `Int` attribute within one tuple.
    IntAttrs { l: usize, op: CmpOp, r: usize },
    /// Anything else falls back to the interpreted zero-copy evaluator.
    General(&'a Predicate),
}

/// A restriction compiled into per-conjunct stride loops.
///
/// Top-level conjunctions are flattened; `Int` comparisons (the workload's
/// common case) become direct word compares over the column bytes, and every
/// other shape keeps its exact `eval_ref` semantics.
pub(crate) struct RowFilter<'a> {
    cmps: Vec<Cmp<'a>>,
}

impl<'a> RowFilter<'a> {
    /// Compile the conjunction of `preds` against the input `schema`.
    pub(crate) fn compile(preds: &'a [Predicate], schema: &Schema) -> RowFilter<'a> {
        let mut cmps = Vec::new();
        for p in preds {
            flatten(p, schema, &mut cmps);
        }
        RowFilter { cmps }
    }

    /// True when the filter keeps every row (the `True` predicate).
    pub(crate) fn is_trivial(&self) -> bool {
        self.cmps.is_empty()
    }

    /// AND each row's verdict into `mask` (one slot per page tuple).
    pub(crate) fn apply(&self, page: &Page, mask: &mut [bool]) {
        debug_assert_eq!(mask.len(), page.len());
        let w = page.schema().tuple_width();
        let data = page.raw_data();
        // Specializing the operator *outside* the stride loop leaves each
        // inner loop a plain load→compare→store the compiler can unroll
        // and vectorize (bswap + compare have SIMD forms).
        let int_at =
            |o: usize| i64::from_be_bytes(data[o..o + 8].try_into().expect("Int attr is 8 bytes"));
        fn stride(mask: &mut [bool], mut test: impl FnMut(usize) -> bool) {
            for (i, m) in mask.iter_mut().enumerate() {
                *m &= test(i);
            }
        }
        for c in &self.cmps {
            match *c {
                Cmp::IntConst { off, op, rhs } => {
                    let v = |i: usize| int_at(off + i * w);
                    match op {
                        CmpOp::Eq => stride(mask, |i| v(i) == rhs),
                        CmpOp::Ne => stride(mask, |i| v(i) != rhs),
                        CmpOp::Lt => stride(mask, |i| v(i) < rhs),
                        CmpOp::Le => stride(mask, |i| v(i) <= rhs),
                        CmpOp::Gt => stride(mask, |i| v(i) > rhs),
                        CmpOp::Ge => stride(mask, |i| v(i) >= rhs),
                    }
                }
                Cmp::IntAttrs { l, op, r } => {
                    let lv = |i: usize| int_at(l + i * w);
                    let rv = |i: usize| int_at(r + i * w);
                    match op {
                        CmpOp::Eq => stride(mask, |i| lv(i) == rv(i)),
                        CmpOp::Ne => stride(mask, |i| lv(i) != rv(i)),
                        CmpOp::Lt => stride(mask, |i| lv(i) < rv(i)),
                        CmpOp::Le => stride(mask, |i| lv(i) <= rv(i)),
                        CmpOp::Gt => stride(mask, |i| lv(i) > rv(i)),
                        CmpOp::Ge => stride(mask, |i| lv(i) >= rv(i)),
                    }
                }
                Cmp::General(p) => {
                    for (m, t) in mask.iter_mut().zip(page.tuple_refs()) {
                        if *m {
                            *m = p.eval_ref(&t);
                        }
                    }
                }
            }
        }
    }
}

/// Flatten top-level conjunctions, specializing `Int` comparisons.
fn flatten<'a>(p: &'a Predicate, schema: &Schema, out: &mut Vec<Cmp<'a>>) {
    let is_int = |i: usize| schema.attrs()[i].dtype == DataType::Int;
    match p {
        Predicate::True => {}
        Predicate::And(a, b) => {
            flatten(a, schema, out);
            flatten(b, schema, out);
        }
        Predicate::CmpConst {
            index,
            op,
            value: Value::Int(k),
        } if is_int(*index) => out.push(Cmp::IntConst {
            off: schema.offsets()[*index],
            op: *op,
            rhs: *k,
        }),
        Predicate::CmpAttrs { left, op, right } if is_int(*left) && is_int(*right) => {
            out.push(Cmp::IntAttrs {
                l: schema.offsets()[*left],
                op: *op,
                r: schema.offsets()[*right],
            });
        }
        other => out.push(Cmp::General(other)),
    }
}

/// Coalesce an attribute index list into contiguous `(offset, len)` byte
/// runs over the input tuple layout: adjacent source attributes kept in
/// input order copy as one run.
pub(crate) fn attr_runs(indices: &[usize], schema: &Schema) -> Vec<(usize, usize)> {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for &i in indices {
        let r = schema.attr_range(i);
        match runs.last_mut() {
            Some((off, len)) if *off + *len == r.start => *len += r.end - r.start,
            _ => runs.push((r.start, r.end - r.start)),
        }
    }
    runs
}

/// Copy pass: emit each selected row's byte runs, in row order, into one
/// output byte vector. `mask: None` keeps every row; a whole-row run list
/// collapses consecutive survivors into single bulk copies.
pub(crate) fn copy_rows(
    data: &[u8],
    w_in: usize,
    mask: Option<&[bool]>,
    runs: &[(usize, usize)],
    w_out: usize,
) -> Vec<u8> {
    let n = data.len() / w_in;
    let whole_row = runs.len() == 1 && runs[0] == (0, w_in);
    match mask {
        None if whole_row => data.to_vec(),
        None => {
            let mut out = Vec::with_capacity(n * w_out);
            for row in data.chunks_exact(w_in) {
                for &(off, len) in runs {
                    out.extend_from_slice(&row[off..off + len]);
                }
            }
            out
        }
        Some(mask) if whole_row => {
            let kept = mask.iter().filter(|&&m| m).count();
            let mut out = Vec::with_capacity(kept * w_out);
            let mut i = 0;
            while i < n {
                if mask[i] {
                    let s = i;
                    while i < n && mask[i] {
                        i += 1;
                    }
                    out.extend_from_slice(&data[s * w_in..i * w_in]);
                } else {
                    i += 1;
                }
            }
            out
        }
        Some(mask) => {
            let kept = mask.iter().filter(|&&m| m).count();
            let mut out = Vec::with_capacity(kept * w_out);
            for (i, row) in data.chunks_exact(w_in).enumerate() {
                if mask[i] {
                    for &(off, len) in runs {
                        out.extend_from_slice(&row[off..off + len]);
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;

    #[test]
    fn attr_runs_coalesce_adjacent_attributes() {
        let s = kv_schema(); // (k: Int, v: Int) -> offsets 0, 8
        assert_eq!(attr_runs(&[0, 1], &s), vec![(0, 16)]);
        assert_eq!(attr_runs(&[1, 0], &s), vec![(8, 8), (0, 8)]);
        assert_eq!(attr_runs(&[1], &s), vec![(8, 8)]);
    }

    #[test]
    fn row_filter_matches_eval_ref_on_every_shape() {
        use df_relalg::{CmpOp, Value};
        let s = kv_schema();
        let page = kv_page(&[(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
        let preds = vec![
            Predicate::True,
            Predicate::cmp_const(&s, "k", CmpOp::Ge, Value::Int(3)).unwrap(),
            Predicate::cmp_attrs(&s, "k", CmpOp::Lt, "v").unwrap(),
            Predicate::cmp_const(&s, "k", CmpOp::Eq, Value::Int(2))
                .unwrap()
                .or(Predicate::cmp_const(&s, "v", CmpOp::Gt, Value::Int(35)).unwrap()),
            Predicate::cmp_const(&s, "k", CmpOp::Ne, Value::Int(4))
                .unwrap()
                .not(),
        ];
        for p in &preds {
            let preds_slice = std::slice::from_ref(p);
            let filter = RowFilter::compile(preds_slice, &s);
            let mut mask = vec![true; page.len()];
            filter.apply(&page, &mut mask);
            let expect: Vec<bool> = page.tuple_refs().map(|t| p.eval_ref(&t)).collect();
            assert_eq!(mask, expect, "pred {p}");
        }
    }
}

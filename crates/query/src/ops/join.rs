//! Join kernels: page×page nested loops, plus whole-relation nested-loops
//! and sort-merge baselines from Blasgen & Eswaran \[5\].
//!
//! The paper (§2.1) argues the O(n²) nested-loops algorithm is "the best
//! algorithm for execution of the join operator on multiple processors"
//! because each page (or tuple) of the outer relation can be joined with the
//! inner relation independently — [`join_pages`] is precisely that unit of
//! independent work. The sort-merge algorithm, faster on one processor, is
//! implemented as the uniprocessor baseline ([`merge_join_relations`]) and
//! exercised by the `abl_join_kernels` bench.

use std::cmp::Ordering;

use df_relalg::{
    CmpOp, Error, JoinCondition, Page, PageKeyIndex, Relation, Result, Schema, Tuple, TupleBuf,
    TupleRef,
};

/// Join one outer page against one inner page: the IP work unit for a join
/// instruction packet (Fig 4.3 carries exactly these two data pages).
///
/// Emits `outer ++ inner` concatenated tuples for every pair satisfying the
/// condition, in (outer slot, inner slot) order.
///
/// Decoded-tuple variant, kept for the oracle executor and as the baseline
/// the kernel benches compare against; the machines run [`join_pages_raw`].
pub fn join_pages(outer: &Page, inner: &Page, condition: &JoinCondition) -> Vec<Tuple> {
    let inner_tuples: Vec<Tuple> = inner.tuples().collect();
    let mut out = Vec::new();
    for o in outer.tuples() {
        for i in &inner_tuples {
            if condition.matches(&o, i) {
                out.push(o.concat(i));
            }
        }
    }
    out
}

/// Zero-copy page×page nested-loops join: compares the raw key bytes of
/// each (outer, inner) image pair (a `memcmp` for equi-joins over
/// equal-width keys) and builds output rows by concatenating the two
/// surviving images — nothing is decoded or re-encoded. `out_schema` is the
/// concatenated output schema carried by the instruction packet.
pub fn join_pages_raw(
    outer: &Page,
    inner: &Page,
    condition: &JoinCondition,
    out_schema: &Schema,
) -> TupleBuf {
    let mut out = TupleBuf::new(out_schema.clone());
    for o in outer.tuple_refs() {
        for i in inner.tuple_refs() {
            if condition.matches_ref(&o, &i) {
                out.push_concat(o.raw(), i.raw());
            }
        }
    }
    out
}

/// True when `condition` can run on the hash path: an equi-join whose key
/// byte widths match on both sides, so raw key images are hashable and
/// comparable with `memcmp` — the same rule `JoinCondition::matches_ref`
/// uses for its fast path. Mixed-width string keys (e.g. `Str(4)` vs
/// `Str(8)`) compare by value, not by image, and stay on nested loops.
pub fn hash_join_applicable(outer: &Schema, inner: &Schema, condition: &JoinCondition) -> bool {
    condition.op == CmpOp::Eq
        && outer.attr_range(condition.left).len() == inner.attr_range(condition.right).len()
}

/// Hash-accelerated page×page equi-join: builds a [`PageKeyIndex`] over the
/// inner page's raw key bytes and probes it with each outer tuple, emitting
/// O(n + m + matches) work instead of the nested-loops O(n·m) sweep.
///
/// Output is **byte-identical** to [`join_pages_raw`]: outer tuples probe in
/// page order and each probe's slot list is in ascending inner-slot order,
/// exactly the nested iteration order. Conditions the hash path cannot run
/// ([`hash_join_applicable`] is false: non-equi θs, mixed-width keys)
/// silently fall back to [`join_pages_raw`].
pub fn hash_join_pages_raw(
    outer: &Page,
    inner: &Page,
    condition: &JoinCondition,
    out_schema: &Schema,
) -> TupleBuf {
    if !hash_join_applicable(outer.schema(), inner.schema(), condition) {
        return join_pages_raw(outer, inner, condition, out_schema);
    }
    let index = PageKeyIndex::build(inner, condition.right);
    hash_join_probe(outer, inner, &index, condition, out_schema)
}

/// The probe half of [`hash_join_pages_raw`], taking a prebuilt inner-page
/// index so executors that see the same inner page many times (one sweep
/// per outer page) amortize the build — the df-host cell page tables cache
/// one index per (cell, page).
///
/// Callers must have checked [`hash_join_applicable`]; `index` must be
/// built over `inner` on `condition.right`.
///
/// # Panics
/// Panics (debug) if `index` was built on a different attribute.
pub fn hash_join_probe(
    outer: &Page,
    inner: &Page,
    index: &PageKeyIndex,
    condition: &JoinCondition,
    out_schema: &Schema,
) -> TupleBuf {
    debug_assert_eq!(index.key(), condition.right, "index/condition mismatch");
    let inner_refs: Vec<TupleRef<'_>> = inner.tuple_refs().collect();
    let mut out = TupleBuf::new(out_schema.clone());
    for o in outer.tuple_refs() {
        for &slot in index.probe(o.attr_bytes(condition.left)) {
            out.push_concat(o.raw(), inner_refs[slot as usize].raw());
        }
    }
    out
}

/// Whole-relation hash join: one [`PageKeyIndex`] per inner page, built
/// once and reused across every outer page. Output order is identical to
/// [`nested_loops_join_relations`] (outer page → inner page → slot pairs).
///
/// Conditions outside the hash path's domain ([`hash_join_applicable`] is
/// false: non-equi θs, mixed-width keys) silently fall back to
/// [`nested_loops_join_relations`] — the same contract as the page-level
/// kernel [`hash_join_pages_raw`], so every `hash_join_*` entry point
/// accepts any valid θ-join and accelerates the ones it can. (Contrast
/// [`merge_join_relations`], a deliberate single-algorithm baseline that
/// errors instead.)
pub fn hash_join_relations(
    outer: &Relation,
    inner: &Relation,
    condition: &JoinCondition,
) -> Vec<Tuple> {
    if !hash_join_applicable(outer.schema(), inner.schema(), condition) {
        return nested_loops_join_relations(outer, inner, condition);
    }
    let indexes: Vec<PageKeyIndex> = inner
        .pages()
        .iter()
        .map(|p| PageKeyIndex::build(p, condition.right))
        .collect();
    let out_schema = outer.schema().concat(inner.schema());
    let mut out = Vec::new();
    for op in outer.pages() {
        for (ip, index) in inner.pages().iter().zip(&indexes) {
            out.extend(hash_join_probe(op, ip, index, condition, &out_schema).to_tuples());
        }
    }
    out
}

/// Whole-relation nested-loops join (the uniprocessor form of the paper's
/// chosen algorithm).
pub fn nested_loops_join_relations(
    outer: &Relation,
    inner: &Relation,
    condition: &JoinCondition,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    for op in outer.pages() {
        for ip in inner.pages() {
            out.extend(join_pages(op, ip, condition));
        }
    }
    out
}

/// Sort-merge join (\[5\]'s "sorted-merge", O(n log n)). Only defined for
/// equi-joins; other θs fall back to an error so callers choose nested loops.
///
/// Handles duplicate keys on both sides (emits the full cross product of
/// each matching group).
pub fn merge_join_relations(
    outer: &Relation,
    inner: &Relation,
    condition: &JoinCondition,
) -> Result<Vec<Tuple>> {
    if condition.op != CmpOp::Eq {
        return Err(Error::TypeMismatch {
            detail: format!(
                "sort-merge join requires an equi-join, got `{}`",
                condition.op
            ),
        });
    }
    let key_of = |t: &Tuple, idx: usize| t.get(idx).expect("condition validated").clone();

    let mut left: Vec<Tuple> = outer.tuples().collect();
    let mut right: Vec<Tuple> = inner.tuples().collect();
    let lcmp = |a: &Tuple, b: &Tuple| {
        key_of(a, condition.left)
            .partial_cmp_typed(&key_of(b, condition.left))
            .expect("join keys share a type")
    };
    let rcmp = |a: &Tuple, b: &Tuple| {
        key_of(a, condition.right)
            .partial_cmp_typed(&key_of(b, condition.right))
            .expect("join keys share a type")
    };
    left.sort_by(lcmp);
    right.sort_by(rcmp);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let lk = key_of(&left[i], condition.left);
        let rk = key_of(&right[j], condition.right);
        match lk.partial_cmp_typed(&rk).expect("join keys share a type") {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Find both duplicate groups, emit their cross product.
                let i_end = (i..left.len())
                    .find(|&x| key_of(&left[x], condition.left) != lk)
                    .unwrap_or(left.len());
                let j_end = (j..right.len())
                    .find(|&x| key_of(&right[x], condition.right) != rk)
                    .unwrap_or(right.len());
                for l in &left[i..i_end] {
                    for r in &right[j..j_end] {
                        out.push(l.concat(r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;
    use df_relalg::{Schema, Value};

    fn rel(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(
            "t",
            kv_schema(),
            16 + 16 * 3, // 3 tuples/page
            pairs.iter().map(|&(k, v)| kv(k, v)),
        )
        .unwrap()
    }

    fn cond(outer: &Schema, inner: &Schema) -> JoinCondition {
        JoinCondition::equi(outer, "k", inner, "k").unwrap()
    }

    #[test]
    fn page_join_matches_pairs() {
        let a = kv_page(&[(1, 10), (2, 20)]);
        let b = kv_page(&[(2, 200), (3, 300), (2, 201)]);
        let c = cond(&kv_schema(), &kv_schema());
        let out = join_pages(&a, &b, &c);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].values(),
            &[
                Value::Int(2),
                Value::Int(20),
                Value::Int(2),
                Value::Int(200)
            ]
        );
    }

    #[test]
    fn raw_join_matches_decoded_for_all_ops() {
        let a = kv_page(&[(1, 10), (2, 20), (3, 30)]);
        let b = kv_page(&[(2, 200), (3, 300), (2, 201), (5, 500)]);
        let out_schema = kv_schema().concat(&kv_schema());
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let c = JoinCondition::new(&kv_schema(), "k", op, &kv_schema(), "k").unwrap();
            assert_eq!(
                join_pages_raw(&a, &b, &c, &out_schema).to_tuples(),
                join_pages(&a, &b, &c),
                "op {op}"
            );
        }
    }

    #[test]
    fn hash_join_pages_byte_identical_with_duplicates() {
        // Duplicate keys on both sides: the probe must emit the full cross
        // product of each matching group in nested-loops order.
        let a = kv_page(&[(2, 10), (1, 11), (2, 12), (2, 13)]);
        let b = kv_page(&[(2, 200), (1, 201), (2, 202)]);
        let out_schema = kv_schema().concat(&kv_schema());
        let c = cond(&kv_schema(), &kv_schema());
        let nested = join_pages_raw(&a, &b, &c, &out_schema);
        let hashed = hash_join_pages_raw(&a, &b, &c, &out_schema);
        assert_eq!(hashed.to_tuples(), nested.to_tuples());
        assert_eq!(hashed.to_tuples().len(), 3 * 2 + 1);
        // Byte identity, not just tuple equality.
        let bytes = |buf: &TupleBuf| buf.refs().map(|t| t.raw().to_vec()).collect::<Vec<_>>();
        assert_eq!(bytes(&hashed), bytes(&nested));
    }

    #[test]
    fn hash_join_pages_falls_back_on_non_equi() {
        let a = kv_page(&[(1, 10), (2, 20), (3, 30)]);
        let b = kv_page(&[(2, 200), (3, 300), (2, 201)]);
        let out_schema = kv_schema().concat(&kv_schema());
        for op in [CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let c = JoinCondition::new(&kv_schema(), "k", op, &kv_schema(), "k").unwrap();
            assert!(!hash_join_applicable(&kv_schema(), &kv_schema(), &c));
            assert_eq!(
                hash_join_pages_raw(&a, &b, &c, &out_schema).to_tuples(),
                join_pages_raw(&a, &b, &c, &out_schema).to_tuples(),
                "op {op}"
            );
        }
    }

    #[test]
    fn hash_join_falls_back_on_mixed_width_string_keys() {
        // Str(4) vs Str(8) passes the JoinCondition type check (both
        // strings) but the key images differ in width, so the raw-byte
        // index cannot see equality — the hash path must defer to the
        // typed comparison of nested loops.
        let s4 = Schema::build()
            .attr("s", df_relalg::DataType::Str(4))
            .finish()
            .unwrap();
        let s8 = Schema::build()
            .attr("s", df_relalg::DataType::Str(8))
            .finish()
            .unwrap();
        let mk = |schema: &Schema, vals: &[&str]| {
            let mut p = Page::new(schema.clone(), 1024).unwrap();
            for v in vals {
                p.push(&Tuple::new(vec![Value::str(v)])).unwrap();
            }
            p
        };
        let a = mk(&s4, &["ab", "cd"]);
        let b = mk(&s8, &["cd", "zz", "ab"]);
        let c = JoinCondition::equi(&s4, "s", &s8, "s").unwrap();
        assert!(!hash_join_applicable(&s4, &s8, &c));
        let out_schema = s4.concat(&s8);
        let hashed = hash_join_pages_raw(&a, &b, &c, &out_schema);
        assert_eq!(
            hashed.to_tuples(),
            join_pages_raw(&a, &b, &c, &out_schema).to_tuples()
        );
        assert_eq!(hashed.to_tuples().len(), 2); // "ab" and "cd" match
    }

    #[test]
    fn hash_join_relations_matches_nested_loops_order() {
        let outer = rel(&[(1, 1), (2, 2), (2, 3), (4, 4), (7, 7), (2, 8), (4, 9)]);
        let inner = rel(&[(2, 20), (2, 21), (4, 40), (9, 90), (2, 22)]);
        let c = cond(outer.schema(), inner.schema());
        assert_eq!(
            hash_join_relations(&outer, &inner, &c),
            nested_loops_join_relations(&outer, &inner, &c),
            "order-exact, not just multiset-equal"
        );
    }

    #[test]
    fn hash_join_relations_falls_back_on_non_equi() {
        // Same silent-fallback contract as the page-level kernel: any θ is
        // accepted, and the inapplicable ones reproduce nested loops
        // exactly (order included).
        let outer = rel(&[(1, 1), (2, 2), (2, 3), (4, 4), (7, 7)]);
        let inner = rel(&[(2, 20), (2, 21), (4, 40), (9, 90)]);
        for op in [CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let c = JoinCondition::new(outer.schema(), "k", op, inner.schema(), "k").unwrap();
            assert!(!hash_join_applicable(outer.schema(), inner.schema(), &c));
            assert_eq!(
                hash_join_relations(&outer, &inner, &c),
                nested_loops_join_relations(&outer, &inner, &c),
                "op {op}"
            );
        }
    }

    #[test]
    fn hash_join_empty_inputs() {
        let empty = rel(&[]);
        let full = rel(&[(1, 1)]);
        let c = cond(empty.schema(), full.schema());
        assert!(hash_join_relations(&empty, &full, &c).is_empty());
        assert!(hash_join_relations(&full, &empty, &c).is_empty());
    }

    #[test]
    fn theta_join_non_equi() {
        let a = kv_page(&[(1, 0), (5, 0)]);
        let b = kv_page(&[(3, 0)]);
        let c = JoinCondition::new(&kv_schema(), "k", CmpOp::Lt, &kv_schema(), "k").unwrap();
        let out = join_pages(&a, &b, &c);
        assert_eq!(out.len(), 1); // only 1 < 3
    }

    #[test]
    fn nested_loops_equals_merge_join_on_equi() {
        let outer = rel(&[(1, 1), (2, 2), (2, 3), (4, 4), (7, 7)]);
        let inner = rel(&[(2, 20), (2, 21), (4, 40), (9, 90)]);
        let c = cond(outer.schema(), inner.schema());
        let mut nl = nested_loops_join_relations(&outer, &inner, &c);
        let mut mj = merge_join_relations(&outer, &inner, &c).unwrap();
        // Compare as multisets.
        let key = |t: &Tuple| format!("{t}");
        nl.sort_by_key(key);
        mj.sort_by_key(key);
        assert_eq!(nl, mj);
        assert_eq!(nl.len(), 2 * 2 + 1); // (2,2),(2,3) × (2,20),(2,21) + (4,4)×(4,40)
    }

    #[test]
    fn merge_join_rejects_non_equi() {
        let outer = rel(&[(1, 1)]);
        let inner = rel(&[(1, 1)]);
        let c = JoinCondition::new(outer.schema(), "k", CmpOp::Lt, inner.schema(), "k").unwrap();
        assert!(merge_join_relations(&outer, &inner, &c).is_err());
    }

    #[test]
    fn empty_inputs() {
        let empty = rel(&[]);
        let full = rel(&[(1, 1)]);
        let c = cond(empty.schema(), full.schema());
        assert!(nested_loops_join_relations(&empty, &full, &c).is_empty());
        assert!(merge_join_relations(&full, &empty, &c).unwrap().is_empty());
    }

    #[test]
    fn join_output_width_is_concat() {
        let a = kv_page(&[(1, 10)]);
        let b = kv_page(&[(1, 99)]);
        let c = cond(&kv_schema(), &kv_schema());
        let out = join_pages(&a, &b, &c);
        assert_eq!(out[0].arity(), 4);
    }
}

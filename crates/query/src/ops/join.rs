//! Join kernels: page×page nested loops, plus whole-relation nested-loops
//! and sort-merge baselines from Blasgen & Eswaran \[5\].
//!
//! The paper (§2.1) argues the O(n²) nested-loops algorithm is "the best
//! algorithm for execution of the join operator on multiple processors"
//! because each page (or tuple) of the outer relation can be joined with the
//! inner relation independently — [`join_pages`] is precisely that unit of
//! independent work. The sort-merge algorithm, faster on one processor, is
//! implemented as the uniprocessor baseline ([`merge_join_relations`]) and
//! exercised by the `abl_join_kernels` bench.

use std::cmp::Ordering;

use df_relalg::{CmpOp, Error, JoinCondition, Page, Relation, Result, Schema, Tuple, TupleBuf};

/// Join one outer page against one inner page: the IP work unit for a join
/// instruction packet (Fig 4.3 carries exactly these two data pages).
///
/// Emits `outer ++ inner` concatenated tuples for every pair satisfying the
/// condition, in (outer slot, inner slot) order.
///
/// Decoded-tuple variant, kept for the oracle executor and as the baseline
/// the kernel benches compare against; the machines run [`join_pages_raw`].
pub fn join_pages(outer: &Page, inner: &Page, condition: &JoinCondition) -> Vec<Tuple> {
    let inner_tuples: Vec<Tuple> = inner.tuples().collect();
    let mut out = Vec::new();
    for o in outer.tuples() {
        for i in &inner_tuples {
            if condition.matches(&o, i) {
                out.push(o.concat(i));
            }
        }
    }
    out
}

/// Zero-copy page×page nested-loops join: compares the raw key bytes of
/// each (outer, inner) image pair (a `memcmp` for equi-joins over
/// equal-width keys) and builds output rows by concatenating the two
/// surviving images — nothing is decoded or re-encoded. `out_schema` is the
/// concatenated output schema carried by the instruction packet.
pub fn join_pages_raw(
    outer: &Page,
    inner: &Page,
    condition: &JoinCondition,
    out_schema: &Schema,
) -> TupleBuf {
    let mut out = TupleBuf::new(out_schema.clone());
    for o in outer.tuple_refs() {
        for i in inner.tuple_refs() {
            if condition.matches_ref(&o, &i) {
                out.push_concat(o.raw(), i.raw());
            }
        }
    }
    out
}

/// Whole-relation nested-loops join (the uniprocessor form of the paper's
/// chosen algorithm).
pub fn nested_loops_join_relations(
    outer: &Relation,
    inner: &Relation,
    condition: &JoinCondition,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    for op in outer.pages() {
        for ip in inner.pages() {
            out.extend(join_pages(op, ip, condition));
        }
    }
    out
}

/// Sort-merge join (\[5\]'s "sorted-merge", O(n log n)). Only defined for
/// equi-joins; other θs fall back to an error so callers choose nested loops.
///
/// Handles duplicate keys on both sides (emits the full cross product of
/// each matching group).
pub fn merge_join_relations(
    outer: &Relation,
    inner: &Relation,
    condition: &JoinCondition,
) -> Result<Vec<Tuple>> {
    if condition.op != CmpOp::Eq {
        return Err(Error::TypeMismatch {
            detail: format!(
                "sort-merge join requires an equi-join, got `{}`",
                condition.op
            ),
        });
    }
    let key_of = |t: &Tuple, idx: usize| t.get(idx).expect("condition validated").clone();

    let mut left: Vec<Tuple> = outer.tuples().collect();
    let mut right: Vec<Tuple> = inner.tuples().collect();
    let lcmp = |a: &Tuple, b: &Tuple| {
        key_of(a, condition.left)
            .partial_cmp_typed(&key_of(b, condition.left))
            .expect("join keys share a type")
    };
    let rcmp = |a: &Tuple, b: &Tuple| {
        key_of(a, condition.right)
            .partial_cmp_typed(&key_of(b, condition.right))
            .expect("join keys share a type")
    };
    left.sort_by(lcmp);
    right.sort_by(rcmp);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let lk = key_of(&left[i], condition.left);
        let rk = key_of(&right[j], condition.right);
        match lk.partial_cmp_typed(&rk).expect("join keys share a type") {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Find both duplicate groups, emit their cross product.
                let i_end = (i..left.len())
                    .find(|&x| key_of(&left[x], condition.left) != lk)
                    .unwrap_or(left.len());
                let j_end = (j..right.len())
                    .find(|&x| key_of(&right[x], condition.right) != rk)
                    .unwrap_or(right.len());
                for l in &left[i..i_end] {
                    for r in &right[j..j_end] {
                        out.push(l.concat(r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;
    use df_relalg::{Schema, Value};

    fn rel(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(
            "t",
            kv_schema(),
            16 + 16 * 3, // 3 tuples/page
            pairs.iter().map(|&(k, v)| kv(k, v)),
        )
        .unwrap()
    }

    fn cond(outer: &Schema, inner: &Schema) -> JoinCondition {
        JoinCondition::equi(outer, "k", inner, "k").unwrap()
    }

    #[test]
    fn page_join_matches_pairs() {
        let a = kv_page(&[(1, 10), (2, 20)]);
        let b = kv_page(&[(2, 200), (3, 300), (2, 201)]);
        let c = cond(&kv_schema(), &kv_schema());
        let out = join_pages(&a, &b, &c);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].values(),
            &[
                Value::Int(2),
                Value::Int(20),
                Value::Int(2),
                Value::Int(200)
            ]
        );
    }

    #[test]
    fn raw_join_matches_decoded_for_all_ops() {
        let a = kv_page(&[(1, 10), (2, 20), (3, 30)]);
        let b = kv_page(&[(2, 200), (3, 300), (2, 201), (5, 500)]);
        let out_schema = kv_schema().concat(&kv_schema());
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let c = JoinCondition::new(&kv_schema(), "k", op, &kv_schema(), "k").unwrap();
            assert_eq!(
                join_pages_raw(&a, &b, &c, &out_schema).to_tuples(),
                join_pages(&a, &b, &c),
                "op {op}"
            );
        }
    }

    #[test]
    fn theta_join_non_equi() {
        let a = kv_page(&[(1, 0), (5, 0)]);
        let b = kv_page(&[(3, 0)]);
        let c = JoinCondition::new(&kv_schema(), "k", CmpOp::Lt, &kv_schema(), "k").unwrap();
        let out = join_pages(&a, &b, &c);
        assert_eq!(out.len(), 1); // only 1 < 3
    }

    #[test]
    fn nested_loops_equals_merge_join_on_equi() {
        let outer = rel(&[(1, 1), (2, 2), (2, 3), (4, 4), (7, 7)]);
        let inner = rel(&[(2, 20), (2, 21), (4, 40), (9, 90)]);
        let c = cond(outer.schema(), inner.schema());
        let mut nl = nested_loops_join_relations(&outer, &inner, &c);
        let mut mj = merge_join_relations(&outer, &inner, &c).unwrap();
        // Compare as multisets.
        let key = |t: &Tuple| format!("{t}");
        nl.sort_by_key(key);
        mj.sort_by_key(key);
        assert_eq!(nl, mj);
        assert_eq!(nl.len(), 2 * 2 + 1); // (2,2),(2,3) × (2,20),(2,21) + (4,4)×(4,40)
    }

    #[test]
    fn merge_join_rejects_non_equi() {
        let outer = rel(&[(1, 1)]);
        let inner = rel(&[(1, 1)]);
        let c = JoinCondition::new(outer.schema(), "k", CmpOp::Lt, inner.schema(), "k").unwrap();
        assert!(merge_join_relations(&outer, &inner, &c).is_err());
    }

    #[test]
    fn empty_inputs() {
        let empty = rel(&[]);
        let full = rel(&[(1, 1)]);
        let c = cond(empty.schema(), full.schema());
        assert!(nested_loops_join_relations(&empty, &full, &c).is_empty());
        assert!(merge_join_relations(&full, &empty, &c).unwrap().is_empty());
    }

    #[test]
    fn join_output_width_is_concat() {
        let a = kv_page(&[(1, 10)]);
        let b = kv_page(&[(1, 99)]);
        let c = cond(&kv_schema(), &kv_schema());
        let out = join_pages(&a, &b, &c);
        assert_eq!(out[0].arity(), 4);
    }
}

//! Fused restrict/project span kernel.
//!
//! The paper's instruction cells materialize a whole result page between
//! every operator. A *span* collapses a maximal restrict→project→restrict…
//! chain into one kernel that evaluates every predicate and the composed
//! projection per tuple over the **input** page's raw bytes and writes only
//! the final survivors — the intermediate pages are never built, so the
//! page-transfer cost between chained unary operators disappears (the
//! `TransferMode::Pipeline` knob; see DESIGN.md §7 for the deviation note).
//!
//! Correctness rests on the canonical encoding: projection is a pure byte
//! re-arrangement, so a predicate written against a projected schema can be
//! *remapped* ([`Predicate::remap`]) onto the original input layout and
//! compare the very same bytes. Restricts only filter and projects are 1:1,
//! so a tuple survives the chain iff it passes the conjunction of all
//! remapped predicates, and the output order is the input order — the fused
//! result is byte-identical to running the steps one page at a time.

use df_relalg::{Page, Predicate, Projection, Schema, Tuple, TupleBuf};

use super::raw::{attr_runs, copy_rows, RowFilter};

/// One logical operator inside a fused span, in chain order (bottom first).
#[derive(Debug, Clone, PartialEq)]
pub enum SpanStep {
    /// A restriction (σ) applied to the chain's intermediate schema.
    Restrict(Predicate),
    /// A projection (π, no dedup) applied to the chain's intermediate schema.
    Project(Projection),
}

/// The composed form of a span over a concrete input schema: every
/// predicate remapped onto the input layout, plus the final attribute map
/// (output attribute `j` is input attribute `map[j]`).
fn compose(steps: &[SpanStep], input_arity: usize) -> (Vec<Predicate>, Vec<usize>) {
    let mut map: Vec<usize> = (0..input_arity).collect();
    let mut preds = Vec::new();
    for step in steps {
        match step {
            SpanStep::Restrict(p) => preds.push(p.remap(&map)),
            SpanStep::Project(proj) => {
                map = proj.indices().iter().map(|&i| map[i]).collect();
            }
        }
    }
    (preds, map)
}

/// Run a fused span over one page without materializing intermediates:
/// mask pass over the raw column bytes, then one run-coalesced copy of the
/// survivors' projected ranges. `out_schema` is the final step's output
/// schema (carried by the instruction packet).
pub fn span_page_raw(page: &Page, steps: &[SpanStep], out_schema: &Schema) -> TupleBuf {
    let in_schema = page.schema();
    let (preds, map) = compose(steps, in_schema.arity());
    let filter = RowFilter::compile(&preds, in_schema);
    let runs = attr_runs(&map, in_schema);
    let w_in = in_schema.tuple_width();
    let mask_storage;
    let mask = if filter.is_trivial() {
        None
    } else {
        let mut m = vec![true; page.len()];
        filter.apply(page, &mut m);
        mask_storage = m;
        Some(&mask_storage[..])
    };
    let bytes = copy_rows(page.raw_data(), w_in, mask, &runs, out_schema.tuple_width());
    TupleBuf::from_images(out_schema.clone(), bytes)
}

/// Decoded-tuple reference: apply the steps one at a time, materializing
/// each intermediate. Kept for the oracle executor and as the baseline the
/// fused kernel is tested (and benched) against.
pub fn span_page(page: &Page, steps: &[SpanStep]) -> Vec<Tuple> {
    let mut tuples: Vec<Tuple> = page.tuples().collect();
    for step in steps {
        match step {
            SpanStep::Restrict(p) => tuples.retain(|t| p.eval(t)),
            SpanStep::Project(proj) => {
                tuples = tuples
                    .iter()
                    .map(|t| proj.apply(t).expect("span steps validated at compile time"))
                    .collect();
            }
        }
    }
    tuples
}

/// The output schema a span produces when fed `input`: fold each step's
/// schema derivation.
///
/// # Errors
/// Fails if any step references attributes its intermediate schema lacks.
pub fn span_output_schema(input: &Schema, steps: &[SpanStep]) -> df_relalg::Result<Schema> {
    let mut schema = input.clone();
    for step in steps {
        if let SpanStep::Project(proj) = step {
            schema = proj.output_schema(&schema)?;
        }
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::*;
    use crate::ops::{project_page_raw, restrict_page_raw};
    use df_relalg::{CmpOp, Value};

    fn page() -> Page {
        kv_page(&[(1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60)])
    }

    /// Apply the steps unfused, one materialized TupleBuf per hop.
    fn unfused(page: &Page, steps: &[SpanStep]) -> TupleBuf {
        let mut cur = TupleBuf::from_images(page.schema().clone(), page.raw_data().to_vec());
        for step in steps {
            // Repack the intermediate into a page to reuse the unary kernels.
            let mut p = Page::new(
                cur.schema().clone(),
                16 + cur.schema().tuple_width() * cur.len().max(1),
            )
            .unwrap();
            cur.drain_into(&mut p);
            cur = match step {
                SpanStep::Restrict(pred) => restrict_page_raw(&p, pred),
                SpanStep::Project(proj) => {
                    let out = proj.output_schema(p.schema()).unwrap();
                    project_page_raw(&p, proj, &out)
                }
            };
        }
        cur
    }

    #[test]
    fn fused_matches_unfused_restrict_project_restrict() {
        let s = kv_schema();
        let steps = vec![
            SpanStep::Restrict(Predicate::cmp_const(&s, "k", CmpOp::Ge, Value::Int(2)).unwrap()),
            SpanStep::Project(Projection::new(&s, &["v", "k"]).unwrap()),
            // After the projection, attribute 0 is `v`.
            SpanStep::Restrict(Predicate::CmpConst {
                index: 0,
                op: CmpOp::Le,
                value: Value::Int(50),
            }),
        ];
        let p = page();
        let out_schema = span_output_schema(p.schema(), &steps).unwrap();
        let fused = span_page_raw(&p, &steps, &out_schema);
        let by_hand = unfused(&p, &steps);
        assert_eq!(fused.to_tuples(), by_hand.to_tuples());
        assert_eq!(fused.len(), 4); // k in 2..=5
                                    // Decoded reference agrees too.
        assert_eq!(fused.to_tuples(), span_page(&p, &steps));
    }

    #[test]
    fn projection_chains_compose() {
        let s = kv_schema();
        let steps = vec![
            SpanStep::Project(Projection::new(&s, &["v", "k"]).unwrap()),
            // (v, k) -> keep attribute 1 (= original k).
            SpanStep::Project(Projection::from_indices(&span_single(&s), vec![1]).unwrap()),
        ];
        let p = page();
        let out_schema = span_output_schema(p.schema(), &steps).unwrap();
        assert_eq!(out_schema.attrs()[0].name, "k");
        let fused = span_page_raw(&p, &steps, &out_schema);
        assert_eq!(fused.to_tuples(), span_page(&p, &steps));
        assert_eq!(fused.len(), p.len());
    }

    fn span_single(s: &Schema) -> Schema {
        Projection::new(s, &["v", "k"])
            .unwrap()
            .output_schema(s)
            .unwrap()
    }

    #[test]
    fn empty_page_and_empty_steps() {
        let p = kv_page(&[]);
        let out = span_page_raw(&p, &[], p.schema());
        assert!(out.is_empty());
        let p2 = page();
        // No steps: the span is the identity.
        let out2 = span_page_raw(&p2, &[], p2.schema());
        assert_eq!(out2.len(), p2.len());
        assert_eq!(out2.to_tuples(), p2.tuples().collect::<Vec<_>>());
    }

    #[test]
    fn all_filtered_out_yields_empty() {
        let s = kv_schema();
        let steps = vec![SpanStep::Restrict(
            Predicate::cmp_const(&s, "k", CmpOp::Gt, Value::Int(100)).unwrap(),
        )];
        let p = page();
        let out = span_page_raw(&p, &steps, p.schema());
        assert!(out.is_empty());
    }
}

//! ASCII rendering of query trees (cf. the paper's Figure 2.1).

use crate::tree::{NodeId, Op, QueryTree};

/// Render a query tree as indented ASCII, root first:
///
/// ```text
/// J join (#0 = #0)
/// ├── J join (#1 = #0)
/// │   ├── R restrict id > 3
/// │   │   └── scan emp
/// │   └── scan dept
/// └── R restrict floor = 2
///     └── scan dept
/// ```
///
/// `R`/`J` markers follow Figure 2.1's labelling of restricts and joins.
pub fn render_tree(tree: &QueryTree) -> String {
    let mut out = String::new();
    render_node(tree, tree.root(), "", "", &mut out);
    out
}

fn label(op: &Op) -> String {
    match op {
        Op::Scan { relation } => format!("scan {relation}"),
        Op::Restrict { predicate } => format!("R restrict {predicate}").chars().take(72).collect(),
        Op::Project { projection, dedup } => format!(
            "P project{} {:?}",
            if *dedup { "-distinct" } else { "" },
            projection.indices()
        ),
        Op::Join { condition } => format!(
            "J join (#{} {} #{})",
            condition.left, condition.op, condition.right
        ),
        Op::CrossProduct => "X cross".into(),
        Op::Union => "U union".into(),
        Op::Difference => "D difference".into(),
        Op::Append { target } => format!("A append -> {target}"),
        Op::Delete { target, .. } => format!("D delete from {target}"),
    }
}

fn render_node(tree: &QueryTree, id: NodeId, prefix: &str, child_prefix: &str, out: &mut String) {
    out.push_str(prefix);
    out.push_str(&label(&tree.node(id).op));
    out.push('\n');
    let children = &tree.node(id).children;
    for (i, &c) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (branch, extend) = if last {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        render_node(
            tree,
            c,
            &format!("{child_prefix}{branch}"),
            &format!("{child_prefix}{extend}"),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use df_relalg::{Catalog, CmpOp, DataType, Relation, Schema, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let s = Schema::build()
            .attr("a", DataType::Int)
            .attr("b", DataType::Int)
            .finish()
            .unwrap();
        for name in ["x", "y", "z"] {
            db.insert(Relation::new(name, s.clone(), 256).unwrap())
                .unwrap();
        }
        db
    }

    #[test]
    fn renders_figure_2_1_like_tree() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let rx = b
            .scan("x")
            .unwrap()
            .restrict_where("a", CmpOp::Gt, Value::Int(0))
            .unwrap();
        let ry = b
            .scan("y")
            .unwrap()
            .restrict_where("b", CmpOp::Lt, Value::Int(9))
            .unwrap();
        let rz = b
            .scan("z")
            .unwrap()
            .restrict_where("a", CmpOp::Eq, Value::Int(5))
            .unwrap();
        let q = rx
            .equi_join(ry, "a", "a")
            .unwrap()
            .equi_join(rz, "b", "b")
            .unwrap()
            .finish();
        let art = render_tree(&q);
        assert!(art.starts_with("J join"));
        assert_eq!(art.matches("scan").count(), 3);
        assert_eq!(art.matches("restrict").count(), 3);
        assert_eq!(art.matches("J join").count(), 2);
        assert!(art.contains("└── "));
        assert!(art.contains("├── "));
    }

    #[test]
    fn renders_single_leaf() {
        let db = db();
        let q = TreeBuilder::new(&db).scan("x").unwrap().finish();
        assert_eq!(render_tree(&q), "scan x\n");
    }
}

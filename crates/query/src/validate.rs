//! Whole-tree validation and output-schema derivation.

use df_relalg::{Catalog, Error, Result, Schema};

use crate::tree::{NodeId, Op, QueryTree};

/// The derived schema of every node of a validated tree, in node order.
#[derive(Debug, Clone)]
pub struct NodeSchemas {
    schemas: Vec<Schema>,
}

impl NodeSchemas {
    /// The derived schema of `id`.
    pub fn schema(&self, id: NodeId) -> &Schema {
        &self.schemas[id.0]
    }

    /// The root's (i.e. the query's) output schema.
    pub fn output(&self, tree: &QueryTree) -> &Schema {
        self.schema(tree.root())
    }
}

/// Validate `tree` against `db`: every scanned relation exists, every
/// predicate / projection / join condition type-checks against its derived
/// input schema(s), set operations are union-compatible, and update
/// operators appear only at the root.
pub fn validate(db: &Catalog, tree: &QueryTree) -> Result<NodeSchemas> {
    let mut schemas: Vec<Schema> = Vec::with_capacity(tree.len());
    for id in tree.topo_order() {
        let node = tree.node(id);
        if node.op.is_update() && id != tree.root() {
            return Err(Error::SchemaMismatch {
                detail: format!("update operator `{}` must be the root", node.op.name()),
            });
        }
        let child = |i: usize| -> &Schema { &schemas[node.children[i].0] };
        let derived = match &node.op {
            Op::Scan { relation } => db.require(relation)?.schema().clone(),
            Op::Restrict { predicate } => {
                predicate.validate_against(child(0))?;
                child(0).clone()
            }
            Op::Project { projection, .. } => {
                projection.validate_against(child(0))?;
                projection.output_schema(child(0))?
            }
            Op::Join { condition } => {
                condition.validate_against(child(0), child(1))?;
                child(0).concat(child(1))
            }
            Op::CrossProduct => child(0).concat(child(1)),
            Op::Union | Op::Difference => {
                if child(0) != child(1) {
                    return Err(Error::SchemaMismatch {
                        detail: format!(
                            "{} inputs are not union-compatible: {} vs {}",
                            node.op.name(),
                            child(0),
                            child(1)
                        ),
                    });
                }
                child(0).clone()
            }
            Op::Append { target } => {
                let target_schema = db.require(target)?.schema();
                if child(0) != target_schema {
                    return Err(Error::SchemaMismatch {
                        detail: format!(
                            "append source {} does not match target `{target}` {target_schema}",
                            child(0)
                        ),
                    });
                }
                target_schema.clone()
            }
            Op::Delete { target, predicate } => {
                let target_schema = db.require(target)?.schema().clone();
                predicate.validate_against(&target_schema)?;
                target_schema
            }
        };
        schemas.push(derived);
    }
    Ok(NodeSchemas { schemas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use df_relalg::{CmpOp, DataType, Relation, Tuple, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let s = Schema::build()
            .attr("id", DataType::Int)
            .attr("dept", DataType::Int)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "emp",
                s.clone(),
                1024,
                (0..4).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 2)])),
            )
            .unwrap(),
        )
        .unwrap();
        let d = Schema::build()
            .attr("dno", DataType::Int)
            .attr("floor", DataType::Int)
            .finish()
            .unwrap();
        db.insert(Relation::new("dept", d, 1024).unwrap()).unwrap();
        db
    }

    #[test]
    fn derives_join_output_schema() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("emp")
            .unwrap()
            .join_on(b.scan("dept").unwrap(), "dept", CmpOp::Eq, "dno")
            .unwrap()
            .finish();
        let schemas = validate(&db, &q).unwrap();
        let out = schemas.output(&q);
        assert_eq!(out.arity(), 4);
        assert_eq!(out.attrs()[2].name, "dno");
    }

    #[test]
    fn rejects_unknown_relation() {
        let db = db();
        let tree = TreeBuilder::new(&db).scan("emp").unwrap().finish();
        // Forge a scan of a missing relation by validating against empty db.
        let empty = Catalog::new();
        assert!(validate(&empty, &tree).is_err());
    }

    #[test]
    fn rejects_incompatible_union() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("emp")
            .unwrap()
            .union(b.scan("dept").unwrap())
            .unwrap_err();
        // The builder already rejects it; the message mentions compatibility.
        assert!(q.to_string().contains("union"));
    }

    #[test]
    fn append_schema_must_match() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let bad = b.scan("dept").unwrap().append_to("emp");
        assert!(bad.is_err());
        let good = b.scan("emp").unwrap().append_to("emp").unwrap().finish();
        assert!(validate(&db, &good).is_ok());
    }
}

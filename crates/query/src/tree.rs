//! The query-tree IR.

use df_relalg::{JoinCondition, Predicate, Projection};

/// Index of a node within its [`QueryTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A relational algebra operation (one "instruction" in data-flow terms).
///
/// Predicates, projections and join conditions are already resolved to
/// attribute indices against the node's *derived input schema(s)* — the
/// [`crate::TreeBuilder`] and [`crate::parse_query`] do the resolution, and
/// [`crate::validate`] re-checks it.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Leaf: read a base relation from the database.
    Scan {
        /// Name of the base relation.
        relation: String,
    },
    /// σ: keep tuples satisfying the predicate. One child.
    Restrict {
        /// The restriction predicate (indices into the child's schema).
        predicate: Predicate,
    },
    /// π: keep the listed attributes; optionally eliminate duplicates.
    /// One child.
    Project {
        /// Attributes to keep (indices into the child's schema).
        projection: Projection,
        /// Set semantics (duplicate elimination) — the operator the paper's
        /// §5 calls out as hard to parallelize.
        dedup: bool,
    },
    /// ⋈: θ-join of two children (left = outer, right = inner).
    Join {
        /// The join condition (left index into outer schema, right into inner).
        condition: JoinCondition,
    },
    /// ×: cross product of two children.
    CrossProduct,
    /// ∪ with set semantics (children must be union-compatible).
    Union,
    /// − with set semantics (left minus right).
    Difference,
    /// Root-only: append the child's result to a base relation.
    Append {
        /// Target base relation.
        target: String,
    },
    /// Root-only leafless update: delete tuples matching the predicate from
    /// a base relation.
    Delete {
        /// Target base relation.
        target: String,
        /// Tuples matching this are removed.
        predicate: Predicate,
    },
}

impl Op {
    /// How many children this operator requires.
    pub fn arity(&self) -> usize {
        match self {
            Op::Scan { .. } | Op::Delete { .. } => 0,
            Op::Restrict { .. } | Op::Project { .. } | Op::Append { .. } => 1,
            Op::Join { .. } | Op::CrossProduct | Op::Union | Op::Difference => 2,
        }
    }

    /// Short name for display and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Scan { .. } => "scan",
            Op::Restrict { .. } => "restrict",
            Op::Project { .. } => "project",
            Op::Join { .. } => "join",
            Op::CrossProduct => "cross",
            Op::Union => "union",
            Op::Difference => "difference",
            Op::Append { .. } => "append",
            Op::Delete { .. } => "delete",
        }
    }

    /// Whether this operator can emit output before its inputs are complete
    /// (the property page-level granularity exploits to pipeline pages "up
    /// the query tree", §3.2).
    ///
    /// `Difference` and deduplicating `Project` are blocking: they cannot
    /// emit a tuple until they have seen the whole (right / only) input.
    pub fn is_pipelineable(&self) -> bool {
        match self {
            Op::Difference => false,
            Op::Project { dedup, .. } => !dedup,
            _ => true,
        }
    }

    /// Whether this is a database-modifying root operator.
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Append { .. } | Op::Delete { .. })
    }
}

/// One node of a query tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryNode {
    /// The operation.
    pub op: Op,
    /// Children in operand order (outer first for joins).
    pub children: Vec<NodeId>,
}

/// A relational algebra query: a tree of [`QueryNode`]s.
///
/// Nodes are stored in a flat arena; children always have smaller ids than
/// their parent (the builder constructs bottom-up), which the simulators use
/// to iterate leaf-to-root.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTree {
    nodes: Vec<QueryNode>,
    root: NodeId,
}

impl QueryTree {
    /// Assemble a tree from an arena and a root (checked for basic shape).
    ///
    /// # Panics
    /// Panics if the root id is out of range, a child id is not smaller than
    /// its parent's, or a node's child count mismatches its operator arity.
    /// Trees are built by this crate's own builder/parser, so violations are
    /// construction bugs, not user errors.
    pub fn from_parts(nodes: Vec<QueryNode>, root: NodeId) -> QueryTree {
        assert!(root.0 < nodes.len(), "root {root} out of range");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(
                n.children.len(),
                n.op.arity(),
                "node n{i} ({}) has {} children, needs {}",
                n.op.name(),
                n.children.len(),
                n.op.arity()
            );
            for c in &n.children {
                assert!(c.0 < i, "node n{i} has non-topological child {c}");
            }
        }
        QueryTree { nodes, root }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node arena, in topological (leaf-before-parent) order.
    pub fn nodes(&self) -> &[QueryNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &QueryNode {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the (degenerate) empty tree — never produced by the builder.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids in topological order (children before parents).
    pub fn topo_order(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The parent of each node (None for the root and detached nodes).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for c in &n.children {
                parents[c.0] = Some(NodeId(i));
            }
        }
        parents
    }

    /// Count of nodes whose operator name matches `name` (used by the
    /// workload generator to verify the paper's exact query mix).
    pub fn count_op(&self, name: &str) -> usize {
        self.nodes.iter().filter(|n| n.op.name() == name).count()
    }

    /// Names of all base relations this query reads or writes.
    pub fn referenced_relations(&self) -> Vec<String> {
        let mut names = Vec::new();
        for n in &self.nodes {
            match &n.op {
                Op::Scan { relation } => names.push(relation.clone()),
                Op::Append { target } | Op::Delete { target, .. } => names.push(target.clone()),
                _ => {}
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// Names of base relations this query *writes* (empty for read-only).
    pub fn written_relations(&self) -> Vec<String> {
        let mut names = Vec::new();
        for n in &self.nodes {
            match &n.op {
                Op::Append { target } | Op::Delete { target, .. } => names.push(target.clone()),
                _ => {}
            }
        }
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_relalg::{CmpOp, JoinCondition};

    fn scan(rel: &str) -> QueryNode {
        QueryNode {
            op: Op::Scan {
                relation: rel.into(),
            },
            children: vec![],
        }
    }

    fn join(l: usize, r: usize) -> QueryNode {
        QueryNode {
            op: Op::Join {
                condition: JoinCondition {
                    left: 0,
                    op: CmpOp::Eq,
                    right: 0,
                },
            },
            children: vec![NodeId(l), NodeId(r)],
        }
    }

    #[test]
    fn shape_accessors() {
        let t = QueryTree::from_parts(vec![scan("a"), scan("b"), join(0, 1)], NodeId(2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), NodeId(2));
        assert_eq!(t.node(NodeId(0)).op.name(), "scan");
        assert_eq!(t.count_op("scan"), 2);
        assert_eq!(t.count_op("join"), 1);
        assert_eq!(t.referenced_relations(), vec!["a", "b"]);
        assert!(t.written_relations().is_empty());
        assert_eq!(t.parents(), vec![Some(NodeId(2)), Some(NodeId(2)), None]);
    }

    #[test]
    fn arity_rules() {
        assert_eq!(
            Op::Scan {
                relation: "x".into()
            }
            .arity(),
            0
        );
        assert_eq!(Op::Union.arity(), 2);
        assert_eq!(Op::Append { target: "x".into() }.arity(), 1);
    }

    #[test]
    fn pipelineability() {
        assert!(Op::Union.is_pipelineable());
        assert!(!Op::Difference.is_pipelineable());
        let proj = df_relalg::Projection::from_indices(
            &df_relalg::Schema::build()
                .attr("a", df_relalg::DataType::Int)
                .finish()
                .unwrap(),
            vec![0],
        )
        .unwrap();
        assert!(Op::Project {
            projection: proj.clone(),
            dedup: false
        }
        .is_pipelineable());
        assert!(!Op::Project {
            projection: proj,
            dedup: true
        }
        .is_pipelineable());
    }

    #[test]
    #[should_panic(expected = "non-topological")]
    fn rejects_forward_child_references() {
        let _ = QueryTree::from_parts(vec![join(1, 2), scan("a"), scan("b")], NodeId(0));
    }

    #[test]
    #[should_panic(expected = "children")]
    fn rejects_wrong_arity() {
        let bad = QueryNode {
            op: Op::Union,
            children: vec![NodeId(0)],
        };
        let _ = QueryTree::from_parts(vec![scan("a"), bad], NodeId(1));
    }
}

//! The uniprocessor oracle executor.
//!
//! Evaluates a query tree bottom-up, one node at a time, using the same
//! page-level kernels the simulated machines run. This is the ground truth:
//! every machine execution in `df-core` and `df-ring` is checked against it
//! by the integration tests (as multiset equality — the machines interleave
//! work and therefore produce tuples in a different order).

use df_relalg::{Catalog, Error, Relation, Result, Tuple};

use crate::ops;
use crate::tree::{Op, QueryTree};
use crate::validate::{validate, NodeSchemas};

/// Which join algorithm the oracle uses (\[5\] compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgorithm {
    /// O(n·m) nested loops — the paper's choice for multiprocessors, and the
    /// default so the oracle exercises exactly the machine kernels.
    #[default]
    NestedLoops,
    /// O(n log n) sort-merge — the faster uniprocessor algorithm; falls back
    /// to nested loops for non-equi joins.
    SortMerge,
}

/// Execution parameters for the oracle.
#[derive(Debug, Clone)]
pub struct ExecParams {
    /// Page size (bytes, header included) for intermediate and result
    /// relations.
    pub page_size: usize,
    /// Join algorithm.
    pub join_algorithm: JoinAlgorithm,
}

impl Default for ExecParams {
    fn default() -> Self {
        ExecParams {
            page_size: 1024,
            join_algorithm: JoinAlgorithm::NestedLoops,
        }
    }
}

/// Execute a read-only query, returning the result relation (named
/// `"result"`).
///
/// # Errors
/// Fails on validation errors or if the tree contains update operators.
pub fn execute_readonly(db: &Catalog, tree: &QueryTree, params: &ExecParams) -> Result<Relation> {
    if !tree.written_relations().is_empty() {
        return Err(Error::SchemaMismatch {
            detail: "execute_readonly called on an updating query".into(),
        });
    }
    // Updates never run, so the mutable path is unreachable; a clone keeps
    // the signature honest without copying (relations are only read).
    let mut scratch = db.clone();
    execute(&mut scratch, tree, params)
}

/// Execute a query, applying any root update operator to `db`.
///
/// Returns the root's result relation:
/// * read-only root → the query result,
/// * `Append` → the tuples that were appended,
/// * `Delete` → the tuples that were deleted.
///
/// Updating queries run as [`stage_write`] followed immediately by
/// [`apply_write`]; callers that interleave other work between the read
/// and write phases (df-serve's lanes) call the two halves directly.
pub fn execute(db: &mut Catalog, tree: &QueryTree, params: &ExecParams) -> Result<Relation> {
    if !tree.written_relations().is_empty() {
        let delta = stage_write(db, tree, params)?;
        return apply_write(db, delta);
    }
    let schemas = validate(db, tree)?;
    let mut results = eval_read_nodes(db, tree, &schemas, params)?;
    let mut out = results.pop().expect("validated tree has at least one node");
    // The loop pushes in topo order; the root is last.
    debug_assert_eq!(tree.root().0, results.len());
    out.set_name("result");
    Ok(out)
}

/// The staged effect of an updating query: the expensive read phase of a
/// write, computed against an immutable catalog, ready to be applied by
/// [`apply_write`] under exclusive access.
///
/// The split is only sound if the **target** relation cannot change
/// between the two calls — a `Delete` stages the kept/deleted partition
/// of the target it saw, an `Append` stages tuples computed from its
/// sources — so the caller must hold the target exclusively (or, like
/// the oracle, apply immediately). df-serve's per-relation writer marks
/// provide exactly that guarantee.
#[derive(Debug)]
pub struct WriteDelta {
    target: String,
    kind: WriteKind,
    result: Relation,
}

#[derive(Debug)]
enum WriteKind {
    /// Tuples to append to the target.
    Append(Vec<Tuple>),
    /// The rebuilt (post-delete) target relation.
    Replace(Relation),
}

impl WriteDelta {
    /// The relation the apply phase will mutate.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The staged change to the target as raw tuple images, in the
    /// target's encoding: `(inserted, deleted)`. An `Append` inserts its
    /// staged result tuples; a `Delete` deletes them. Standing views
    /// (df-host's IVM layer) extract this before [`apply_write`] consumes
    /// the delta and replay it through their delta dataflow.
    pub fn base_change(&self) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let images: Vec<Vec<u8>> = self
            .result
            .pages()
            .iter()
            .flat_map(|p| p.tuple_refs())
            .map(|t| t.raw().to_vec())
            .collect();
        match self.kind {
            WriteKind::Append(_) => (images, Vec::new()),
            WriteKind::Replace(_) => (Vec::new(), images),
        }
    }
}

/// Run the read phase of an updating query: validate, evaluate the
/// source subtree (`Append`) or partition the target (`Delete`), and
/// package the effect as a [`WriteDelta`]. `db` is not mutated.
///
/// # Errors
/// Fails on validation errors or if the tree is read-only.
pub fn stage_write(db: &Catalog, tree: &QueryTree, params: &ExecParams) -> Result<WriteDelta> {
    let schemas = validate(db, tree)?;
    let root = tree.node(tree.root());
    let name = format!("{}_{}", tree.root(), root.op.name());
    let schema = schemas.schema(tree.root()).clone();
    match &root.op {
        Op::Append { target } => {
            let results = eval_read_nodes(db, tree, &schemas, params)?;
            let to_add: Vec<Tuple> = results[root.children[0].0].tuples().collect();
            let result = ops::pack_tuples(&name, schema, params.page_size, to_add.iter().cloned())?;
            Ok(WriteDelta {
                target: target.clone(),
                kind: WriteKind::Append(to_add),
                result,
            })
        }
        Op::Delete { target, predicate } => {
            let target_rel = db.require(target)?;
            let (kept, deleted): (Vec<_>, Vec<_>) =
                target_rel.tuples().partition(|t| !predicate.eval(t));
            let rebuilt = Relation::from_tuples(
                target,
                target_rel.schema().clone(),
                target_rel.page_size(),
                kept,
            )?;
            let result = ops::pack_tuples(&name, schema, params.page_size, deleted)?;
            Ok(WriteDelta {
                target: target.clone(),
                kind: WriteKind::Replace(rebuilt),
                result,
            })
        }
        _ => Err(Error::SchemaMismatch {
            detail: "stage_write called on a read-only query".into(),
        }),
    }
}

/// Apply a staged write to `db`, returning the query's result relation
/// (the appended or deleted tuples, named `"result"`).
///
/// Every intermediate state is structurally valid: `Append` adds whole
/// tuples one at a time, `Delete` swaps in a fully rebuilt relation — so
/// even a caller that recovers from a panic mid-apply observes a
/// consistent (if partially applied) catalog.
pub fn apply_write(db: &mut Catalog, delta: WriteDelta) -> Result<Relation> {
    db.require(&delta.target)?;
    match delta.kind {
        WriteKind::Append(tuples) => {
            let target_rel = db.get_mut(&delta.target).expect("just required");
            for t in tuples {
                target_rel.append(t)?;
            }
        }
        WriteKind::Replace(rebuilt) => {
            db.insert_or_replace(rebuilt);
        }
    }
    let mut out = delta.result;
    out.set_name("result");
    Ok(out)
}

/// Evaluate every read-only node of `tree` in topo order, returning one
/// relation per node, indexed by `NodeId`. This is the install-time
/// materialization pass of a standing view: each stateful operator seeds
/// its retained operand state from its children's node results.
///
/// # Errors
/// Fails on validation errors or if the tree contains update operators.
pub fn execute_read_nodes(
    db: &Catalog,
    tree: &QueryTree,
    params: &ExecParams,
) -> Result<Vec<Relation>> {
    if !tree.written_relations().is_empty() {
        return Err(Error::SchemaMismatch {
            detail: "execute_read_nodes called on an updating query".into(),
        });
    }
    let schemas = validate(db, tree)?;
    eval_read_nodes(db, tree, &schemas, params)
}

/// Evaluate every read-only node of `tree` in topo order; the returned
/// vector is indexed by `NodeId`. Stops before the root when the root is
/// an update operator (validation guarantees updates appear nowhere
/// else, and topo order puts the root last).
fn eval_read_nodes(
    db: &Catalog,
    tree: &QueryTree,
    schemas: &NodeSchemas,
    params: &ExecParams,
) -> Result<Vec<Relation>> {
    let mut results: Vec<Relation> = Vec::with_capacity(tree.len());

    for id in tree.topo_order() {
        let node = tree.node(id);
        if node.op.is_update() {
            break;
        }
        let schema = schemas.schema(id).clone();
        let child = |i: usize| -> &Relation { &results[node.children[i].0] };
        let name = format!("{id}_{}", node.op.name());

        let rel = match &node.op {
            Op::Scan { relation } => db.require(relation)?.clone(),
            Op::Restrict { predicate } => {
                let input = child(0);
                let tuples = input
                    .pages()
                    .iter()
                    .flat_map(|p| ops::restrict_page(p, predicate));
                ops::pack_tuples(&name, schema, params.page_size, tuples)?
            }
            Op::Project { projection, dedup } => {
                let input = child(0);
                let projected: Vec<_> = input
                    .pages()
                    .iter()
                    .flat_map(|p| ops::project_page(p, projection))
                    .collect();
                let tuples = if *dedup {
                    ops::dedup_tuples(projected)
                } else {
                    projected
                };
                ops::pack_tuples(&name, schema, params.page_size, tuples)?
            }
            Op::Join { condition } => {
                let (outer, inner) = (child(0), child(1));
                let tuples = match params.join_algorithm {
                    JoinAlgorithm::NestedLoops => {
                        ops::nested_loops_join_relations(outer, inner, condition)
                    }
                    JoinAlgorithm::SortMerge => {
                        match ops::merge_join_relations(outer, inner, condition) {
                            Ok(ts) => ts,
                            // Non-equi θ: sort-merge does not apply.
                            Err(_) => ops::nested_loops_join_relations(outer, inner, condition),
                        }
                    }
                };
                ops::pack_tuples(&name, schema, params.page_size, tuples)?
            }
            Op::CrossProduct => {
                let (outer, inner) = (child(0), child(1));
                let mut tuples = Vec::new();
                for op_ in outer.pages() {
                    for ip in inner.pages() {
                        tuples.extend(ops::cross_pages(op_, ip));
                    }
                }
                ops::pack_tuples(&name, schema, params.page_size, tuples)?
            }
            Op::Union => {
                let tuples = ops::union_relations(child(0), child(1))?;
                ops::pack_tuples(&name, schema, params.page_size, tuples)?
            }
            Op::Difference => {
                let tuples = ops::difference_relations(child(0), child(1))?;
                ops::pack_tuples(&name, schema, params.page_size, tuples)?
            }
            Op::Append { .. } | Op::Delete { .. } => unreachable!("is_update checked above"),
        };
        results.push(rel);
    }

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use df_relalg::{CmpOp, DataType, Schema, Tuple, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let emp = Schema::build()
            .attr("id", DataType::Int)
            .attr("dept", DataType::Int)
            .attr("salary", DataType::Int)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "emp",
                emp,
                128,
                (0..20).map(|i| {
                    Tuple::new(vec![Value::Int(i), Value::Int(i % 4), Value::Int(i * 10)])
                }),
            )
            .unwrap(),
        )
        .unwrap();
        let dept = Schema::build()
            .attr("dno", DataType::Int)
            .attr("floor", DataType::Int)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "dept",
                dept,
                128,
                (0..4).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i + 1)])),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn restrict_counts() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .scan("emp")
            .unwrap()
            .restrict_where("salary", CmpOp::Ge, Value::Int(100))
            .unwrap()
            .finish();
        let out = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        assert_eq!(out.num_tuples(), 10); // ids 10..20
    }

    #[test]
    fn join_fanout() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("emp")
            .unwrap()
            .equi_join(b.scan("dept").unwrap(), "dept", "dno")
            .unwrap()
            .finish();
        let out = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        assert_eq!(out.num_tuples(), 20); // every emp matches exactly one dept
        assert_eq!(out.schema().arity(), 5);
    }

    #[test]
    fn both_join_algorithms_agree() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("emp")
            .unwrap()
            .equi_join(b.scan("dept").unwrap(), "dept", "dno")
            .unwrap()
            .finish();
        let nl = execute_readonly(
            &db,
            &q,
            &ExecParams {
                join_algorithm: JoinAlgorithm::NestedLoops,
                ..Default::default()
            },
        )
        .unwrap();
        let sm = execute_readonly(
            &db,
            &q,
            &ExecParams {
                join_algorithm: JoinAlgorithm::SortMerge,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(nl.same_contents(&sm));
    }

    #[test]
    fn sort_merge_falls_back_on_theta() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("dept")
            .unwrap()
            .join_on(b.scan("dept").unwrap(), "dno", CmpOp::Lt, "dno")
            .unwrap()
            .finish();
        let out = execute_readonly(
            &db,
            &q,
            &ExecParams {
                join_algorithm: JoinAlgorithm::SortMerge,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.num_tuples(), 6); // pairs (i, j) with i < j, 4 depts
    }

    #[test]
    fn project_distinct() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .scan("emp")
            .unwrap()
            .project(&["dept"], true)
            .unwrap()
            .finish();
        let out = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        assert_eq!(out.num_tuples(), 4);
    }

    #[test]
    fn union_and_difference() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let low = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Lt, Value::Int(10))
            .unwrap();
        let high = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Ge, Value::Int(5))
            .unwrap();
        let u = low.clone().union(high.clone()).unwrap().finish();
        let out = execute_readonly(&db, &u, &ExecParams::default()).unwrap();
        assert_eq!(out.num_tuples(), 20);
        let d = low.difference(high).unwrap().finish();
        let out = execute_readonly(&db, &d, &ExecParams::default()).unwrap();
        assert_eq!(out.num_tuples(), 5); // ids 0..5
    }

    #[test]
    fn append_mutates_database() {
        let mut db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Lt, Value::Int(3))
            .unwrap()
            .append_to("emp")
            .unwrap()
            .finish();
        let appended = execute(&mut db, &q, &ExecParams::default()).unwrap();
        assert_eq!(appended.num_tuples(), 3);
        assert_eq!(db.get("emp").unwrap().num_tuples(), 23);
    }

    #[test]
    fn delete_mutates_database() {
        let mut db = db();
        let q = TreeBuilder::new(&db)
            .delete_where("emp", "dept", CmpOp::Eq, Value::Int(0))
            .unwrap();
        let deleted = execute(&mut db, &q, &ExecParams::default()).unwrap();
        assert_eq!(deleted.num_tuples(), 5);
        assert_eq!(db.get("emp").unwrap().num_tuples(), 15);
    }

    #[test]
    fn staged_append_matches_direct_execute() {
        let mut direct = db();
        let mut staged = db();
        let b = TreeBuilder::new(&direct);
        let q = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Lt, Value::Int(3))
            .unwrap()
            .append_to("emp")
            .unwrap()
            .finish();
        let direct_out = execute(&mut direct, &q, &ExecParams::default()).unwrap();
        let delta = stage_write(&staged, &q, &ExecParams::default()).unwrap();
        assert_eq!(delta.target(), "emp");
        // Staging alone must not mutate.
        assert_eq!(staged.get("emp").unwrap().num_tuples(), 20);
        let staged_out = apply_write(&mut staged, delta).unwrap();
        assert!(direct_out.same_contents(&staged_out));
        assert!(direct
            .get("emp")
            .unwrap()
            .same_contents(staged.get("emp").unwrap()));
    }

    #[test]
    fn staged_delete_matches_direct_execute() {
        let mut direct = db();
        let mut staged = db();
        let q = TreeBuilder::new(&direct)
            .delete_where("emp", "dept", CmpOp::Eq, Value::Int(0))
            .unwrap();
        let direct_out = execute(&mut direct, &q, &ExecParams::default()).unwrap();
        let delta = stage_write(&staged, &q, &ExecParams::default()).unwrap();
        assert_eq!(staged.get("emp").unwrap().num_tuples(), 20);
        let staged_out = apply_write(&mut staged, delta).unwrap();
        assert!(direct_out.same_contents(&staged_out));
        assert!(direct
            .get("emp")
            .unwrap()
            .same_contents(staged.get("emp").unwrap()));
    }

    #[test]
    fn base_change_reports_staged_images() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let append = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Lt, Value::Int(2))
            .unwrap()
            .append_to("emp")
            .unwrap()
            .finish();
        let delta = stage_write(&db, &append, &ExecParams::default()).unwrap();
        let (ins, del) = delta.base_change();
        assert_eq!((ins.len(), del.len()), (2, 0));
        let width = db.get("emp").unwrap().schema().tuple_width();
        assert!(ins.iter().all(|img| img.len() == width));

        let delete = TreeBuilder::new(&db)
            .delete_where("emp", "dept", CmpOp::Eq, Value::Int(1))
            .unwrap();
        let delta = stage_write(&db, &delete, &ExecParams::default()).unwrap();
        let (ins, del) = delta.base_change();
        assert_eq!((ins.len(), del.len()), (0, 5));
    }

    #[test]
    fn read_nodes_expose_per_node_results() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("emp")
            .unwrap()
            .equi_join(b.scan("dept").unwrap(), "dept", "dno")
            .unwrap()
            .finish();
        let nodes = execute_read_nodes(&db, &q, &ExecParams::default()).unwrap();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].num_tuples(), 20);
        assert_eq!(nodes[1].num_tuples(), 4);
        assert_eq!(nodes[2].num_tuples(), 20);
        let update = TreeBuilder::new(&db)
            .delete_where("emp", "id", CmpOp::Eq, Value::Int(0))
            .unwrap();
        assert!(execute_read_nodes(&db, &update, &ExecParams::default()).is_err());
    }

    #[test]
    fn stage_write_rejects_read_only_trees() {
        let db = db();
        let q = TreeBuilder::new(&db).scan("emp").unwrap().finish();
        assert!(stage_write(&db, &q, &ExecParams::default()).is_err());
    }

    #[test]
    fn readonly_rejects_updates() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .delete_where("emp", "id", CmpOp::Eq, Value::Int(0))
            .unwrap();
        assert!(execute_readonly(&db, &q, &ExecParams::default()).is_err());
    }

    #[test]
    fn deep_tree_figure_2_1() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let r1 = b
            .scan("emp")
            .unwrap()
            .restrict_where("salary", CmpOp::Gt, Value::Int(0))
            .unwrap();
        let r2 = b
            .scan("dept")
            .unwrap()
            .restrict_where("floor", CmpOp::Ge, Value::Int(1))
            .unwrap();
        let q = r1
            .equi_join(r2, "dept", "dno")
            .unwrap()
            .project(&["id", "floor"], false)
            .unwrap()
            .finish();
        let out = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        assert_eq!(out.num_tuples(), 19); // id 0 has salary 0
        assert_eq!(out.schema().arity(), 2);
    }
}

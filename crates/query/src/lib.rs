//! # df-query — relational algebra query trees and operators
//!
//! Paper §2.1: *"Each relational algebra query is generally comprised of one
//! or more relational algebra operations (instructions) and is organized in
//! the form of a tree."* This crate provides:
//!
//! * [`QueryTree`] / [`Op`] — the query-tree IR. Leaves scan base relations;
//!   inner nodes are restrict / project / join / cross / union / difference;
//!   append and delete (the paper's update operators) are root-only.
//! * [`ops`] — **page-at-a-time operator kernels**. These are the exact same
//!   functions the simulated machines run inside instruction packets, so a
//!   simulated run's output is bit-comparable with the oracle's.
//! * [`execute`] / [`execute_readonly`] — the uniprocessor oracle executor
//!   (the ground truth every machine result is checked against), including
//!   both nested-loops and sort-merge join algorithms from Blasgen & Eswaran
//!   \[5\].
//! * [`TreeBuilder`] — fluent, name-based construction with schema
//!   derivation at each step.
//! * [`validate`] — whole-tree schema/type checking and output-schema
//!   derivation.
//! * [`parse_query`] — a small s-expression query language, convenient for
//!   examples and tests:
//!
//! ```
//! use df_relalg::{Catalog, DataType, Relation, Schema, Tuple, Value};
//! use df_query::{parse_query, execute_readonly, ExecParams};
//!
//! let schema = Schema::build()
//!     .attr("id", DataType::Int)
//!     .attr("dept", DataType::Int)
//!     .finish().unwrap();
//! let emp = Relation::from_tuples("emp", schema, 1024,
//!     (0..10).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 3)]))).unwrap();
//! let mut db = Catalog::new();
//! db.insert(emp).unwrap();
//!
//! let q = parse_query(&db, "(restrict (scan emp) (> id 6))").unwrap();
//! let out = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
//! assert_eq!(out.num_tuples(), 3);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod builder;
mod delta;
mod exec;
mod parser;
mod render;
mod tree;
mod validate;

pub mod ops;

pub use builder::{SubTree, TreeBuilder};
pub use delta::{DeltaKind, DeltaPlan};
pub use exec::{
    apply_write, execute, execute_read_nodes, execute_readonly, stage_write, ExecParams,
    JoinAlgorithm, WriteDelta,
};
pub use parser::parse_query;
pub use render::render_tree;
pub use tree::{NodeId, Op, QueryNode, QueryTree};
pub use validate::{validate, NodeSchemas};

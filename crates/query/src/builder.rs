//! Fluent, name-based query-tree construction.
//!
//! The builder derives each subtree's output schema as it goes, so
//! predicates, projections and join conditions can be specified by attribute
//! *name* and are resolved to indices immediately — exactly once.

use df_relalg::{
    Catalog, CmpOp, Error, JoinCondition, Predicate, Projection, Result, Schema, Value,
};

use crate::tree::{NodeId, Op, QueryNode, QueryTree};

/// Entry point: builds [`SubTree`]s against a database catalog.
#[derive(Debug, Clone, Copy)]
pub struct TreeBuilder<'a> {
    db: &'a Catalog,
}

impl<'a> TreeBuilder<'a> {
    /// A builder over `db`.
    pub fn new(db: &'a Catalog) -> TreeBuilder<'a> {
        TreeBuilder { db }
    }

    /// A leaf scanning base relation `name`.
    pub fn scan(&self, name: &str) -> Result<SubTree<'a>> {
        let rel = self.db.require(name)?;
        Ok(SubTree {
            db: self.db,
            nodes: vec![QueryNode {
                op: Op::Scan {
                    relation: name.to_owned(),
                },
                children: vec![],
            }],
            schema: rel.schema().clone(),
        })
    }

    /// A complete single-node delete query:
    /// `delete from target where attr op value`.
    pub fn delete_where(
        &self,
        target: &str,
        attr: &str,
        op: CmpOp,
        value: Value,
    ) -> Result<QueryTree> {
        let schema = self.db.require(target)?.schema().clone();
        let predicate = Predicate::cmp_const(&schema, attr, op, value)?;
        Ok(QueryTree::from_parts(
            vec![QueryNode {
                op: Op::Delete {
                    target: target.to_owned(),
                    predicate,
                },
                children: vec![],
            }],
            NodeId(0),
        ))
    }
}

/// A partially built query with a known output schema.
///
/// Nodes are stored bottom-up; combining two subtrees concatenates their
/// arenas (remapping the right side's ids), which keeps the final tree in
/// topological order without any shared mutable state.
#[derive(Debug, Clone)]
pub struct SubTree<'a> {
    db: &'a Catalog,
    nodes: Vec<QueryNode>,
    schema: Schema,
}

impl<'a> SubTree<'a> {
    /// The derived output schema so far.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn root(&self) -> NodeId {
        NodeId(self.nodes.len() - 1)
    }

    fn push_unary(mut self, op: Op, schema: Schema) -> SubTree<'a> {
        let child = self.root();
        self.nodes.push(QueryNode {
            op,
            children: vec![child],
        });
        self.schema = schema;
        self
    }

    /// Merge `right`'s arena into `self`'s, returning right's new root.
    fn absorb(&mut self, right: SubTree<'a>) -> NodeId {
        let offset = self.nodes.len();
        for mut n in right.nodes {
            for c in &mut n.children {
                *c = NodeId(c.0 + offset);
            }
            self.nodes.push(n);
        }
        self.root()
    }

    fn push_binary(mut self, right: SubTree<'a>, op: Op, schema: Schema) -> SubTree<'a> {
        let left_root = self.root();
        let right_root = self.absorb(right);
        self.nodes.push(QueryNode {
            op,
            children: vec![left_root, right_root],
        });
        self.schema = schema;
        self
    }

    /// σ with an arbitrary predicate (already resolved against
    /// [`SubTree::schema`] — use [`SubTree::restrict_where`] for the common
    /// case).
    pub fn restrict(self, predicate: Predicate) -> Result<SubTree<'a>> {
        predicate.validate_against(&self.schema)?;
        let schema = self.schema.clone();
        Ok(self.push_unary(Op::Restrict { predicate }, schema))
    }

    /// σ(attr op value).
    pub fn restrict_where(self, attr: &str, op: CmpOp, value: Value) -> Result<SubTree<'a>> {
        let predicate = Predicate::cmp_const(&self.schema, attr, op, value)?;
        self.restrict(predicate)
    }

    /// π onto the named attributes; `dedup` selects set semantics.
    pub fn project(self, names: &[&str], dedup: bool) -> Result<SubTree<'a>> {
        let projection = Projection::new(&self.schema, names)?;
        let schema = projection.output_schema(&self.schema)?;
        Ok(self.push_unary(Op::Project { projection, dedup }, schema))
    }

    /// θ-join with `right`: `self.left_attr op right.right_attr`.
    pub fn join_on(
        self,
        right: SubTree<'a>,
        left_attr: &str,
        op: CmpOp,
        right_attr: &str,
    ) -> Result<SubTree<'a>> {
        let condition = JoinCondition::new(&self.schema, left_attr, op, &right.schema, right_attr)?;
        let schema = self.schema.concat(&right.schema);
        Ok(self.push_binary(right, Op::Join { condition }, schema))
    }

    /// Equi-join shorthand.
    pub fn equi_join(
        self,
        right: SubTree<'a>,
        left_attr: &str,
        right_attr: &str,
    ) -> Result<SubTree<'a>> {
        self.join_on(right, left_attr, CmpOp::Eq, right_attr)
    }

    /// Cross product.
    pub fn cross(self, right: SubTree<'a>) -> SubTree<'a> {
        let schema = self.schema.concat(&right.schema);
        self.push_binary(right, Op::CrossProduct, schema)
    }

    /// Set union (inputs must be union-compatible).
    pub fn union(self, right: SubTree<'a>) -> Result<SubTree<'a>> {
        if self.schema != right.schema {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "union inputs are not compatible: {} vs {}",
                    self.schema, right.schema
                ),
            });
        }
        let schema = self.schema.clone();
        Ok(self.push_binary(right, Op::Union, schema))
    }

    /// Set difference `self − right`.
    pub fn difference(self, right: SubTree<'a>) -> Result<SubTree<'a>> {
        if self.schema != right.schema {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "difference inputs are not compatible: {} vs {}",
                    self.schema, right.schema
                ),
            });
        }
        let schema = self.schema.clone();
        Ok(self.push_binary(right, Op::Difference, schema))
    }

    /// Append the result to base relation `target` (root operator).
    pub fn append_to(self, target: &str) -> Result<SubTree<'a>> {
        let target_schema = self.db.require(target)?.schema().clone();
        if self.schema != target_schema {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "append source {} does not match `{target}` {target_schema}",
                    self.schema
                ),
            });
        }
        let schema = target_schema;
        Ok(self.push_unary(
            Op::Append {
                target: target.to_owned(),
            },
            schema,
        ))
    }

    /// Seal into a [`QueryTree`].
    pub fn finish(self) -> QueryTree {
        let root = self.root();
        QueryTree::from_parts(self.nodes, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_relalg::{DataType, Relation, Tuple};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let emp = Schema::build()
            .attr("id", DataType::Int)
            .attr("dept", DataType::Int)
            .attr("salary", DataType::Int)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "emp",
                emp,
                1024,
                (0..6).map(|i| {
                    Tuple::new(vec![Value::Int(i), Value::Int(i % 2), Value::Int(i * 100)])
                }),
            )
            .unwrap(),
        )
        .unwrap();
        let dept = Schema::build()
            .attr("dno", DataType::Int)
            .attr("floor", DataType::Int)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "dept",
                dept,
                1024,
                (0..2).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i + 1)])),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn builds_figure_2_1_shape() {
        // Figure 2.1: two joins over three restricted scans.
        let db = db();
        let b = TreeBuilder::new(&db);
        let r1 = b
            .scan("emp")
            .unwrap()
            .restrict_where("salary", CmpOp::Gt, Value::Int(100))
            .unwrap();
        let r2 = b
            .scan("dept")
            .unwrap()
            .restrict_where("floor", CmpOp::Ge, Value::Int(1))
            .unwrap();
        let r3 = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Lt, Value::Int(5))
            .unwrap();
        let j1 = r1.equi_join(r2, "dept", "dno").unwrap();
        let q = j1.equi_join(r3, "id", "id").unwrap().finish();
        assert_eq!(q.count_op("restrict"), 3);
        assert_eq!(q.count_op("join"), 2);
        assert_eq!(q.count_op("scan"), 3);
        // Topological order is enforced by from_parts (would panic otherwise).
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn schema_flows_through_operators() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let t = b
            .scan("emp")
            .unwrap()
            .project(&["id", "salary"], false)
            .unwrap();
        assert_eq!(t.schema().arity(), 2);
        let joined = t.equi_join(b.scan("dept").unwrap(), "id", "dno").unwrap();
        assert_eq!(joined.schema().arity(), 4);
    }

    #[test]
    fn name_errors_surface_early() {
        let db = db();
        let b = TreeBuilder::new(&db);
        assert!(b.scan("missing").is_err());
        assert!(b
            .scan("emp")
            .unwrap()
            .restrict_where("nope", CmpOp::Eq, Value::Int(0))
            .is_err());
        assert!(b.scan("emp").unwrap().project(&["nope"], false).is_err());
    }

    #[test]
    fn union_requires_compatibility() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let ok = b
            .scan("emp")
            .unwrap()
            .union(b.scan("emp").unwrap())
            .unwrap()
            .finish();
        assert_eq!(ok.count_op("union"), 1);
        assert!(b
            .scan("emp")
            .unwrap()
            .difference(b.scan("dept").unwrap())
            .is_err());
    }

    #[test]
    fn delete_builder() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .delete_where("emp", "id", CmpOp::Eq, Value::Int(3))
            .unwrap();
        assert_eq!(q.count_op("delete"), 1);
        assert_eq!(q.written_relations(), vec!["emp"]);
    }

    #[test]
    fn cross_concatenates_schemas() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let t = b.scan("emp").unwrap().cross(b.scan("dept").unwrap());
        assert_eq!(t.schema().arity(), 5);
        let q = t.finish();
        assert_eq!(q.count_op("cross"), 1);
    }
}

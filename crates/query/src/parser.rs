//! A small s-expression query language.
//!
//! Handy for examples, tests, and interactive exploration. Grammar:
//!
//! ```text
//! query := expr
//!        | (append expr TARGET)
//!        | (delete TARGET pred)
//! expr  := (scan NAME)
//!        | (restrict expr pred)
//!        | (project expr (ATTR ...))
//!        | (project-distinct expr (ATTR ...))
//!        | (join expr expr (CMP LATTR RATTR))
//!        | (cross expr expr)
//!        | (union expr expr)
//!        | (difference expr expr)
//! pred  := true
//!        | (CMP ATTR literal)        ; attribute vs constant
//!        | (CMP ATTR ATTR)           ; attribute vs attribute
//!        | (and pred pred) | (or pred pred) | (not pred)
//! CMP   := = | <> | != | < | <= | > | >=
//! literal := 123 | -7 | "text" | #t | #f
//! ```
//!
//! Attribute names are resolved against the derived schema at that point in
//! the tree, so `(restrict (join ...) (= r_id 3))` works on join outputs.

use df_relalg::{Catalog, CmpOp, Error, Predicate, Result, Schema, Value};

use crate::builder::{SubTree, TreeBuilder};
use crate::tree::QueryTree;

/// Parse and compile a query against `db`.
pub fn parse_query(db: &Catalog, input: &str) -> Result<QueryTree> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let sexpr = p.parse_sexpr()?;
    if p.pos != p.tokens.len() {
        return Err(syntax(format!(
            "trailing input after query: `{}`",
            p.tokens[p.pos..].join(" ")
        )));
    }
    compile_query(db, &sexpr)
}

fn syntax(detail: String) -> Error {
    Error::Corrupt {
        detail: format!("query syntax: {detail}"),
    }
}

// ---------------------------------------------------------------- tokenizer

fn tokenize(input: &str) -> Result<Vec<String>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' | ')' => {
                tokens.push(c.to_string());
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::from("\"");
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(syntax("unterminated string literal".into())),
                    }
                }
                tokens.push(s);
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut atom = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == '"' {
                        break;
                    }
                    atom.push(ch);
                    chars.next();
                }
                tokens.push(atom);
            }
        }
    }
    Ok(tokens)
}

// ------------------------------------------------------------------ s-exprs

#[derive(Debug, Clone, PartialEq)]
enum SExpr {
    Atom(String),
    List(Vec<SExpr>),
}

impl SExpr {
    fn atom(&self) -> Result<&str> {
        match self {
            SExpr::Atom(s) => Ok(s),
            SExpr::List(_) => Err(syntax("expected an atom, found a list".into())),
        }
    }

    fn list(&self) -> Result<&[SExpr]> {
        match self {
            SExpr::List(items) => Ok(items),
            SExpr::Atom(a) => Err(syntax(format!("expected a list, found atom `{a}`"))),
        }
    }
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn parse_sexpr(&mut self) -> Result<SExpr> {
        let tok = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| syntax("unexpected end of input".into()))?
            .clone();
        self.pos += 1;
        match tok.as_str() {
            "(" => {
                let mut items = Vec::new();
                loop {
                    match self.tokens.get(self.pos).map(String::as_str) {
                        Some(")") => {
                            self.pos += 1;
                            return Ok(SExpr::List(items));
                        }
                        Some(_) => items.push(self.parse_sexpr()?),
                        None => return Err(syntax("unbalanced `(`".into())),
                    }
                }
            }
            ")" => Err(syntax("unbalanced `)`".into())),
            _ => Ok(SExpr::Atom(tok)),
        }
    }
}

// ----------------------------------------------------------------- compiler

fn compile_query(db: &Catalog, sexpr: &SExpr) -> Result<QueryTree> {
    let b = TreeBuilder::new(db);
    let items = sexpr.list()?;
    let head = items
        .first()
        .ok_or_else(|| syntax("empty query form".into()))?
        .atom()?;
    match head {
        "append" => {
            expect_len(items, 3, "(append expr target)")?;
            let sub = compile_expr(&b, &items[1])?;
            let target = items[2].atom()?;
            Ok(sub.append_to(target)?.finish())
        }
        "delete" => {
            expect_len(items, 3, "(delete target pred)")?;
            let target = items[1].atom()?;
            let schema = db.require(target)?.schema().clone();
            let pred = compile_pred(&schema, &items[2])?;
            // delete_where only handles simple predicates; build directly.
            let tree = QueryTree::from_parts(
                vec![crate::tree::QueryNode {
                    op: crate::tree::Op::Delete {
                        target: target.to_owned(),
                        predicate: pred,
                    },
                    children: vec![],
                }],
                crate::tree::NodeId(0),
            );
            Ok(tree)
        }
        _ => Ok(compile_expr(&b, sexpr)?.finish()),
    }
}

fn expect_len(items: &[SExpr], n: usize, form: &str) -> Result<()> {
    if items.len() != n {
        return Err(syntax(format!("form takes {} arguments: {form}", n - 1)));
    }
    Ok(())
}

fn compile_expr<'a>(b: &TreeBuilder<'a>, sexpr: &SExpr) -> Result<SubTree<'a>> {
    let items = sexpr.list()?;
    let head = items
        .first()
        .ok_or_else(|| syntax("empty expression form".into()))?
        .atom()?;
    match head {
        "scan" => {
            expect_len(items, 2, "(scan name)")?;
            b.scan(items[1].atom()?)
        }
        "restrict" => {
            expect_len(items, 3, "(restrict expr pred)")?;
            let sub = compile_expr(b, &items[1])?;
            let pred = compile_pred(sub.schema(), &items[2])?;
            sub.restrict(pred)
        }
        "project" | "project-distinct" => {
            expect_len(items, 3, "(project expr (attrs...))")?;
            let sub = compile_expr(b, &items[1])?;
            let attrs: Vec<&str> = items[2]
                .list()?
                .iter()
                .map(|a| a.atom())
                .collect::<Result<_>>()?;
            sub.project(&attrs, head == "project-distinct")
        }
        "join" => {
            expect_len(items, 4, "(join outer inner (op lattr rattr))")?;
            let outer = compile_expr(b, &items[1])?;
            let inner = compile_expr(b, &items[2])?;
            let cond = items[3].list()?;
            expect_len(cond, 3, "(op lattr rattr)")?;
            let op = parse_cmp(cond[0].atom()?)?;
            outer.join_on(inner, cond[1].atom()?, op, cond[2].atom()?)
        }
        "cross" => {
            expect_len(items, 3, "(cross outer inner)")?;
            let outer = compile_expr(b, &items[1])?;
            let inner = compile_expr(b, &items[2])?;
            Ok(outer.cross(inner))
        }
        "union" => {
            expect_len(items, 3, "(union left right)")?;
            let l = compile_expr(b, &items[1])?;
            let r = compile_expr(b, &items[2])?;
            l.union(r)
        }
        "difference" => {
            expect_len(items, 3, "(difference left right)")?;
            let l = compile_expr(b, &items[1])?;
            let r = compile_expr(b, &items[2])?;
            l.difference(r)
        }
        other => Err(syntax(format!("unknown operator `{other}`"))),
    }
}

fn parse_cmp(tok: &str) -> Result<CmpOp> {
    CmpOp::parse(tok).ok_or_else(|| syntax(format!("unknown comparison `{tok}`")))
}

fn compile_pred(schema: &Schema, sexpr: &SExpr) -> Result<Predicate> {
    if let SExpr::Atom(a) = sexpr {
        if a == "true" {
            return Ok(Predicate::True);
        }
        return Err(syntax(format!("expected a predicate, found `{a}`")));
    }
    let items = sexpr.list()?;
    let head = items
        .first()
        .ok_or_else(|| syntax("empty predicate form".into()))?
        .atom()?;
    match head {
        "and" | "or" => {
            expect_len(items, 3, "(and p q) / (or p q)")?;
            let p = compile_pred(schema, &items[1])?;
            let q = compile_pred(schema, &items[2])?;
            Ok(if head == "and" { p.and(q) } else { p.or(q) })
        }
        "not" => {
            expect_len(items, 2, "(not p)")?;
            Ok(compile_pred(schema, &items[1])?.not())
        }
        cmp => {
            let op = parse_cmp(cmp)?;
            expect_len(items, 3, "(op attr literal) or (op attr attr)")?;
            let attr = items[1].atom()?;
            let rhs = items[2].atom()?;
            match parse_literal(rhs) {
                Some(value) => Predicate::cmp_const(schema, attr, op, value),
                None => Predicate::cmp_attrs(schema, attr, op, rhs),
            }
        }
    }
}

/// Literals: integers, `"strings"` (tokenizer keeps the leading quote),
/// `#t`/`#f` booleans. Anything else is an attribute name.
fn parse_literal(tok: &str) -> Option<Value> {
    if let Some(stripped) = tok.strip_prefix('"') {
        return Some(Value::Str(stripped.to_owned()));
    }
    match tok {
        "#t" => return Some(Value::Bool(true)),
        "#f" => return Some(Value::Bool(false)),
        _ => {}
    }
    tok.parse::<i64>().ok().map(Value::Int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, execute_readonly, ExecParams};
    use df_relalg::{DataType, Relation, Tuple};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let emp = Schema::build()
            .attr("id", DataType::Int)
            .attr("dept", DataType::Int)
            .attr("name", DataType::Str(8))
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "emp",
                emp,
                256,
                (0..10).map(|i| {
                    Tuple::new(vec![
                        Value::Int(i),
                        Value::Int(i % 3),
                        Value::Str(format!("e{i}")),
                    ])
                }),
            )
            .unwrap(),
        )
        .unwrap();
        let dept = Schema::build()
            .attr("dno", DataType::Int)
            .attr("open", DataType::Bool)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "dept",
                dept,
                256,
                (0..3).map(|i| Tuple::new(vec![Value::Int(i), Value::Bool(i != 2)])),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn run(db: &Catalog, q: &str) -> usize {
        let tree = parse_query(db, q).unwrap();
        execute_readonly(db, &tree, &ExecParams::default())
            .unwrap()
            .num_tuples()
    }

    #[test]
    fn scan_restrict() {
        let db = db();
        assert_eq!(run(&db, "(scan emp)"), 10);
        assert_eq!(run(&db, "(restrict (scan emp) (> id 6))"), 3);
        assert_eq!(run(&db, "(restrict (scan emp) true)"), 10);
        assert_eq!(
            run(&db, "(restrict (scan emp) (and (>= id 2) (< id 5)))"),
            3
        );
        assert_eq!(run(&db, "(restrict (scan emp) (not (= id 0)))"), 9);
    }

    #[test]
    fn string_and_bool_literals() {
        let db = db();
        assert_eq!(run(&db, "(restrict (scan emp) (= name \"e3\"))"), 1);
        assert_eq!(run(&db, "(restrict (scan dept) (= open #t))"), 2);
        assert_eq!(run(&db, "(restrict (scan dept) (= open #f))"), 1);
    }

    #[test]
    fn attr_vs_attr_predicate() {
        let db = db();
        assert_eq!(run(&db, "(restrict (scan emp) (= id dept))"), 3); // 0,1,2
    }

    #[test]
    fn join_project_setops() {
        let db = db();
        assert_eq!(run(&db, "(join (scan emp) (scan dept) (= dept dno))"), 10);
        assert_eq!(run(&db, "(project-distinct (scan emp) (dept))"), 3);
        assert_eq!(run(&db, "(project (scan emp) (dept))"), 10);
        assert_eq!(run(&db, "(cross (scan emp) (scan dept))"), 30);
        assert_eq!(
            run(
                &db,
                "(union (restrict (scan emp) (< id 5)) (restrict (scan emp) (>= id 3)))"
            ),
            10
        );
        assert_eq!(
            run(
                &db,
                "(difference (scan emp) (restrict (scan emp) (< id 4)))"
            ),
            6
        );
    }

    #[test]
    fn restrict_on_join_output_uses_renamed_attrs() {
        let db = db();
        assert_eq!(
            run(
                &db,
                "(restrict (join (scan emp) (scan emp) (= id id)) (> r_id 7))"
            ),
            2
        );
    }

    #[test]
    fn updates_parse_and_execute() {
        let mut db = db();
        let tree = parse_query(&db, "(delete emp (= dept 0))").unwrap();
        let deleted = execute(&mut db, &tree, &ExecParams::default()).unwrap();
        assert_eq!(deleted.num_tuples(), 4);
        assert_eq!(db.get("emp").unwrap().num_tuples(), 6);

        let tree = parse_query(&db, "(append (restrict (scan emp) (= id 1)) emp)").unwrap();
        execute(&mut db, &tree, &ExecParams::default()).unwrap();
        assert_eq!(db.get("emp").unwrap().num_tuples(), 7);
    }

    #[test]
    fn syntax_errors_are_reported() {
        let db = db();
        for bad in [
            "(scan emp",                        // unbalanced
            "(scan emp))",                      // trailing
            "(frobnicate (scan emp))",          // unknown op
            "(restrict (scan emp) (?? id 3))",  // bad cmp
            "(scan missing)",                   // unknown relation
            "(restrict (scan emp) (> nope 3))", // unknown attr
            "()",                               // empty form
            "(restrict (scan emp) (= name 3))", // type mismatch
        ] {
            assert!(parse_query(&db, bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn unterminated_string_rejected() {
        let db = db();
        assert!(parse_query(&db, "(restrict (scan emp) (= name \"oops))").is_err());
    }
}

//! Delta-plan compilation for incremental view maintenance.
//!
//! A standing view keeps a query tree resident after its first
//! execution and updates the materialized result from base-relation
//! *deltas* instead of re-running the tree. Compilation classifies every
//! node by how deltas flow through it:
//!
//! * **Source** — `scan` leaves. A write to the scanned relation enters
//!   the dataflow here as a signed multiset of raw tuple images.
//! * **Linear** — `restrict` and non-deduplicating `project`. These
//!   kernels are linear in the bag algebra (they commute with both
//!   union and sign), so delta pages flow through the *unchanged*
//!   page-at-a-time kernels with no retained state.
//! * **Retained** — `join` and `cross`. The bag-algebra product rule
//!   Δ(L ⋈ R) = ΔL ⋈ R + (L + ΔL) ⋈ ΔR needs both operand multisets
//!   retained: the transient pages-so-far operand tables df-host keeps
//!   during a normal execution, promoted to owned view state.
//! * **Counted** — `union`, `difference`, and deduplicating `project`.
//!   Set semantics are indicator functions over retained per-port
//!   counts; a delta is emitted only on a 0 ↔ positive transition.
//!
//! The classification (and the schema derivation it reuses) is the
//! whole "plan" — the actual retained state lives with the executor
//! (df-host's `StandingView`), which walks the compiled plan in topo
//! order on every base write.

use df_relalg::{Catalog, Error, Result, Schema};

use crate::tree::{NodeId, Op, QueryTree};
use crate::validate::{validate, NodeSchemas};

/// How deltas flow through one operator of a compiled standing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// `scan`: base-relation writes enter the dataflow here.
    Source,
    /// Stateless linear operator: delta pages run the normal kernel.
    Linear,
    /// Binary product operator: retains both operand multisets.
    Retained,
    /// Set-semantics operator: retains per-port counts, emits
    /// 0 ↔ positive transitions.
    Counted,
}

/// A query tree compiled for incremental maintenance: schemas derived,
/// updates rejected, and every node classified by its [`DeltaKind`].
#[derive(Debug)]
pub struct DeltaPlan {
    tree: QueryTree,
    schemas: NodeSchemas,
    kinds: Vec<DeltaKind>,
    base_relations: Vec<String>,
}

impl DeltaPlan {
    /// Compile `tree` against `db` for standing maintenance.
    ///
    /// # Errors
    /// Fails on validation errors or if the tree contains update
    /// operators (a view definition must be read-only).
    pub fn compile(db: &Catalog, tree: &QueryTree) -> Result<DeltaPlan> {
        if !tree.written_relations().is_empty() {
            return Err(Error::SchemaMismatch {
                detail: "a standing view must be defined by a read-only query".into(),
            });
        }
        let schemas = validate(db, tree)?;
        let kinds = tree
            .nodes()
            .iter()
            .map(|n| match &n.op {
                Op::Scan { .. } => DeltaKind::Source,
                Op::Restrict { .. } | Op::Project { dedup: false, .. } => DeltaKind::Linear,
                Op::Join { .. } | Op::CrossProduct => DeltaKind::Retained,
                Op::Union | Op::Difference | Op::Project { dedup: true, .. } => DeltaKind::Counted,
                Op::Append { .. } | Op::Delete { .. } => {
                    unreachable!("written_relations checked above")
                }
            })
            .collect();
        Ok(DeltaPlan {
            base_relations: tree.referenced_relations(),
            tree: tree.clone(),
            schemas,
            kinds,
        })
    }

    /// The compiled tree.
    pub fn tree(&self) -> &QueryTree {
        &self.tree
    }

    /// The derived schema of node `id`.
    pub fn schema(&self, id: NodeId) -> &Schema {
        self.schemas.schema(id)
    }

    /// The view's output schema (the root's).
    pub fn output_schema(&self) -> &Schema {
        self.schemas.output(&self.tree)
    }

    /// The delta classification of node `id`.
    pub fn kind(&self, id: NodeId) -> DeltaKind {
        self.kinds[id.0]
    }

    /// Sorted, deduplicated base relations the view reads. A write to
    /// any of these must be replayed through the standing dataflow.
    pub fn base_relations(&self) -> &[String] {
        &self.base_relations
    }

    /// Whether a write to `relation` affects this view.
    pub fn reads(&self, relation: &str) -> bool {
        self.base_relations
            .binary_search_by(|r| r.as_str().cmp(relation))
            .is_ok()
    }

    /// Number of nodes carrying retained state (`Retained` + `Counted`).
    pub fn stateful_nodes(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| matches!(k, DeltaKind::Retained | DeltaKind::Counted))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use df_relalg::{CmpOp, DataType, Relation, Schema, Tuple, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let kv = Schema::build()
            .attr("k", DataType::Int)
            .attr("v", DataType::Int)
            .finish()
            .unwrap();
        for name in ["a", "b"] {
            db.insert(
                Relation::from_tuples(
                    name,
                    kv.clone(),
                    128,
                    (0..4).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)])),
                )
                .unwrap(),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn classifies_every_operator() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("a")
            .unwrap()
            .restrict_where("k", CmpOp::Ge, Value::Int(0))
            .unwrap()
            .equi_join(b.scan("b").unwrap(), "k", "k")
            .unwrap()
            .project(&["k"], true)
            .unwrap()
            .finish();
        let plan = DeltaPlan::compile(&db, &q).unwrap();
        let kinds: Vec<DeltaKind> = q.topo_order().map(|id| plan.kind(id)).collect();
        assert_eq!(
            kinds,
            vec![
                DeltaKind::Source,
                DeltaKind::Linear,
                DeltaKind::Source,
                DeltaKind::Retained,
                DeltaKind::Counted,
            ]
        );
        assert_eq!(plan.base_relations(), ["a", "b"]);
        assert!(plan.reads("a") && plan.reads("b") && !plan.reads("c"));
        assert_eq!(plan.stateful_nodes(), 2);
        assert_eq!(plan.output_schema().arity(), 1);
    }

    #[test]
    fn counted_kinds_for_set_ops() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let u = b
            .scan("a")
            .unwrap()
            .union(b.scan("b").unwrap())
            .unwrap()
            .finish();
        let plan = DeltaPlan::compile(&db, &u).unwrap();
        assert_eq!(plan.kind(u.root()), DeltaKind::Counted);
        let d = b
            .scan("a")
            .unwrap()
            .difference(b.scan("b").unwrap())
            .unwrap()
            .finish();
        assert_eq!(
            DeltaPlan::compile(&db, &d).unwrap().kind(d.root()),
            DeltaKind::Counted
        );
    }

    #[test]
    fn rejects_updating_definitions() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .scan("a")
            .unwrap()
            .append_to("b")
            .unwrap()
            .finish();
        assert!(DeltaPlan::compile(&db, &q).is_err());
    }
}

//! Property tests of the storage hierarchy: capacity, conservation and
//! LRU invariants under arbitrary operation sequences.

use df_sim::SimTime;
use df_storage::{CacheParams, DiskCache, DiskParams, LocalMemory, MassStorage, PageId};
use proptest::prelude::*;

proptest! {
    /// The cache never exceeds its frame budget unless every resident page
    /// is pinned, and evicted pages are always previously inserted ones.
    #[test]
    fn cache_respects_frames(
        frames in 1usize..12,
        ops in prop::collection::vec((0u64..40, any::<bool>()), 1..120),
    ) {
        let mut cache = DiskCache::new(CacheParams {
            frames,
            bytes_per_sec: 1e6,
            ports: 2,
        });
        let mut inserted = std::collections::HashSet::new();
        let mut pinned: Vec<PageId> = Vec::new();
        for (raw, pin) in ops {
            let id = PageId(raw);
            if inserted.contains(&id) {
                if cache.contains(id) {
                    cache.read(SimTime::ZERO, id);
                }
                continue;
            }
            let (_, _, evicted) = cache.insert(SimTime::ZERO, 0, id, 100);
            inserted.insert(id);
            for e in &evicted {
                prop_assert!(inserted.contains(e), "evicted a never-inserted page");
                prop_assert!(!pinned.contains(e), "evicted a pinned page");
                inserted.remove(e);
            }
            if pin && cache.contains(id) && pinned.len() + 1 < frames {
                cache.pin(id);
                pinned.push(id);
            }
            prop_assert!(
                cache.frames_used() <= frames || cache.frames_used() <= pinned.len() + 1,
                "{} frames used of {frames} with {} pinned",
                cache.frames_used(),
                pinned.len()
            );
        }
        for id in pinned {
            cache.unpin(id);
        }
    }

    /// Local memory conserves pages: len == inserted − spilled − removed.
    #[test]
    fn local_memory_conserves_pages(
        capacity in 1usize..8,
        ids in prop::collection::vec(0u64..1_000, 1..80),
    ) {
        let mut mem = LocalMemory::new(capacity);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for (i, &raw) in ids.iter().enumerate() {
            let id = PageId(raw + i as u64 * 10_000); // unique ids
            let spilled = mem.insert(id, 100, |_| 100);
            resident.insert(id.0);
            for s in spilled {
                prop_assert!(resident.remove(&s.0), "spilled an unknown page");
            }
            prop_assert_eq!(mem.len(), resident.len());
            prop_assert!(mem.len() <= capacity);
        }
    }

    /// Disk timing is additive and FCFS: k same-size reads on d arms finish
    /// no earlier than ceil(k/d) service times.
    #[test]
    fn disk_fcfs_lower_bound(k in 1usize..30, drives in 1usize..4) {
        let params = DiskParams {
            drives,
            ..DiskParams::default()
        };
        let service = params.service_time(1000);
        let mut disk = MassStorage::new(params);
        let mut last = SimTime::ZERO;
        for i in 0..k {
            let id = PageId(i as u64);
            disk.preload(id);
            let (_, done) = disk.read(SimTime::ZERO, id, 1000);
            last = last.max(done);
        }
        let rounds = k.div_ceil(drives) as u64;
        let bound = SimTime::ZERO + service.saturating_mul(rounds);
        prop_assert_eq!(last, bound, "k={} drives={}", k, drives);
        prop_assert_eq!(disk.read_traffic.transfers, k as u64);
    }

    /// Re-inserting after discard works, and byte counters are monotone.
    #[test]
    fn discard_reinsert_cycle(rounds in 1usize..20) {
        let mut cache = DiskCache::new(CacheParams {
            frames: 2,
            bytes_per_sec: 1e6,
            ports: 1,
        });
        let id = PageId(7);
        let mut last_bytes = 0;
        for _ in 0..rounds {
            cache.insert(SimTime::ZERO, 0, id, 50);
            prop_assert!(cache.contains(id));
            prop_assert!(cache.in_traffic.bytes > last_bytes);
            last_bytes = cache.in_traffic.bytes;
            cache.discard(id);
            prop_assert!(!cache.contains(id));
        }
    }
}

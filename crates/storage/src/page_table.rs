//! Page tables: the scheduling metadata of paper §2.3.
//!
//! *"We assume that the instruction in each memory cell corresponds to a node
//! in the query tree and that the data is represented by page tables,
//! pointing to pages either in a cache or on mass storage."*
//!
//! A [`PageTable`] is a growing list of page ids for one operand of one
//! instruction, plus a `complete` flag set when the producing instruction
//! has terminated. The three granularities of §3 read it differently:
//!
//! * relation-level: operand ready ⇔ `complete`
//! * page-level / tuple-level: operand ready ⇔ at least one page present
//!   (or `complete` with zero pages — an empty operand still enables, the
//!   instruction just produces nothing)

use df_relalg::Schema;

use crate::store::PageId;

/// The page table for one operand.
#[derive(Debug, Clone)]
pub struct PageTable {
    /// Schema of the tuples in these pages.
    schema: Schema,
    pages: Vec<PageId>,
    /// How many pages have been handed out for consumption so far.
    consumed: usize,
    complete: bool,
}

impl PageTable {
    /// An empty, incomplete table (an intermediate operand not yet produced).
    pub fn new(schema: Schema) -> PageTable {
        PageTable {
            schema,
            pages: Vec::new(),
            consumed: 0,
            complete: false,
        }
    }

    /// A complete table over existing pages (a source relation).
    pub fn complete_with(schema: Schema, pages: Vec<PageId>) -> PageTable {
        PageTable {
            schema,
            pages,
            consumed: 0,
            complete: true,
        }
    }

    /// The operand's tuple schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All page ids registered so far.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of pages registered so far.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages registered.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether the producer has terminated.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Register a newly produced page.
    ///
    /// # Panics
    /// Panics if the table was already marked complete — a producer must not
    /// emit pages after announcing termination.
    pub fn push(&mut self, id: PageId) {
        assert!(
            !self.complete,
            "PageTable: page {id} pushed after completion"
        );
        self.pages.push(id);
    }

    /// Announce that no further pages will arrive.
    pub fn mark_complete(&mut self) {
        self.complete = true;
    }

    /// Relation-level readiness: the whole operand exists.
    pub fn ready_relation_level(&self) -> bool {
        self.complete
    }

    /// Page-level readiness: at least one unconsumed page exists, or the
    /// operand is complete (possibly empty).
    pub fn ready_page_level(&self) -> bool {
        self.consumed < self.pages.len() || self.complete
    }

    /// Number of pages available but not yet handed out.
    pub fn available(&self) -> usize {
        self.pages.len() - self.consumed
    }

    /// Hand out the next unconsumed page, advancing the cursor.
    pub fn take_next(&mut self) -> Option<PageId> {
        if self.consumed < self.pages.len() {
            let id = self.pages[self.consumed];
            self.consumed += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Peek at the next unconsumed page.
    pub fn peek_next(&self) -> Option<PageId> {
        self.pages.get(self.consumed).copied()
    }

    /// Whether every registered page has been consumed *and* the producer
    /// has terminated — i.e. this operand is exhausted.
    pub fn exhausted(&self) -> bool {
        self.complete && self.consumed == self.pages.len()
    }

    /// How many pages have been consumed.
    pub fn consumed(&self) -> usize {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_relalg::DataType;

    fn schema() -> Schema {
        Schema::build().attr("k", DataType::Int).finish().unwrap()
    }

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn granularity_readiness_rules() {
        let mut t = PageTable::new(schema());
        assert!(!t.ready_relation_level());
        assert!(!t.ready_page_level());
        t.push(pid(1));
        assert!(
            !t.ready_relation_level(),
            "relation-level waits for completion"
        );
        assert!(t.ready_page_level(), "page-level fires on first page");
        t.mark_complete();
        assert!(t.ready_relation_level());
    }

    #[test]
    fn empty_complete_operand_enables() {
        let mut t = PageTable::new(schema());
        t.mark_complete();
        assert!(t.ready_relation_level());
        assert!(t.ready_page_level());
        assert!(t.exhausted());
    }

    #[test]
    fn consumption_cursor() {
        let mut t = PageTable::complete_with(schema(), vec![pid(1), pid(2)]);
        assert_eq!(t.available(), 2);
        assert_eq!(t.peek_next(), Some(pid(1)));
        assert_eq!(t.take_next(), Some(pid(1)));
        assert_eq!(t.take_next(), Some(pid(2)));
        assert_eq!(t.take_next(), None);
        assert!(t.exhausted());
        assert_eq!(t.consumed(), 2);
    }

    #[test]
    fn incomplete_table_is_not_exhausted_when_drained() {
        let mut t = PageTable::new(schema());
        t.push(pid(1));
        assert_eq!(t.take_next(), Some(pid(1)));
        assert!(!t.exhausted(), "producer may still emit more pages");
        t.mark_complete();
        assert!(t.exhausted());
    }

    #[test]
    #[should_panic(expected = "after completion")]
    fn push_after_complete_panics() {
        let mut t = PageTable::new(schema());
        t.mark_complete();
        t.push(pid(1));
    }
}

//! The page store: ground-truth page contents keyed by [`PageId`].

use std::collections::HashMap;
use std::sync::Arc;

use df_relalg::{Page, Relation, Result, Schema};

/// A globally unique page identifier.
///
/// Identity, not location: the simulated devices record *where* a page
/// currently resides and what moving it costs; the content always lives in
/// the [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Ground-truth storage of page contents.
///
/// Pages are held behind [`Arc`]: loading a relation, staging an in-flight
/// operand, or materializing a result shares one buffer instead of deep-
/// copying page contents. Byte accounting is unaffected — costs are charged
/// per simulated page movement, not per host-memory copy.
#[derive(Debug, Clone, Default)]
pub struct PageStore {
    pages: HashMap<PageId, Arc<Page>>,
    next_id: u64,
}

impl PageStore {
    /// An empty store.
    pub fn new() -> PageStore {
        PageStore::default()
    }

    /// Store a page, returning its fresh id. Accepts either an owned
    /// [`Page`] or a shared `Arc<Page>` handle (no copy in either case).
    pub fn put(&mut self, page: impl Into<Arc<Page>>) -> PageId {
        let id = PageId(self.next_id);
        self.next_id += 1;
        self.pages.insert(id, page.into());
        id
    }

    /// Look up a page's contents.
    ///
    /// # Panics
    /// Panics on an unknown id: ids are only minted by [`PageStore::put`],
    /// so a miss is a simulator bug, not a runtime condition.
    pub fn get(&self, id: PageId) -> &Page {
        self.pages
            .get(&id)
            .unwrap_or_else(|| panic!("PageStore: unknown page id {id}"))
    }

    /// A shared handle to a page's contents (cheap clone of the `Arc`, not
    /// of the page) — the zero-copy route for handing a page to another
    /// relation, store slot, or compaction buffer.
    ///
    /// # Panics
    /// Panics on an unknown id, like [`PageStore::get`].
    pub fn get_arc(&self, id: PageId) -> Arc<Page> {
        Arc::clone(
            self.pages
                .get(&id)
                .unwrap_or_else(|| panic!("PageStore: unknown page id {id}")),
        )
    }

    /// Look up a page, returning `None` on unknown ids (for assertions).
    pub fn try_get(&self, id: PageId) -> Option<&Page> {
        self.pages.get(&id).map(|p| p.as_ref())
    }

    /// Remove a page (e.g. an intermediate page that has been fully consumed
    /// and will never be referenced again), returning its contents.
    pub fn remove(&mut self, id: PageId) -> Option<Arc<Page>> {
        self.pages.remove(&id)
    }

    /// Number of stored pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Wire bytes of a page (header + stored tuples).
    pub fn wire_bytes(&self, id: PageId) -> usize {
        self.get(id).wire_bytes()
    }

    /// Load every page of `relation` into the store, returning their ids in
    /// relation order. Shares the relation's page buffers (no deep copy).
    pub fn load_relation(&mut self, relation: &Relation) -> Vec<PageId> {
        relation
            .pages()
            .iter()
            .map(|p| self.put(Arc::clone(p)))
            .collect()
    }

    /// Materialize a relation back out of a list of page ids, sharing the
    /// stored page buffers.
    ///
    /// # Errors
    /// Fails if pages disagree with the given schema/page size.
    pub fn materialize(
        &self,
        name: &str,
        schema: Schema,
        page_size: usize,
        ids: &[PageId],
    ) -> Result<Relation> {
        let mut rel = Relation::new(name, schema, page_size)?;
        for &id in ids {
            rel.append_page(self.get_arc(id))?;
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_relalg::{DataType, Tuple, Value};

    fn schema() -> Schema {
        Schema::build().attr("k", DataType::Int).finish().unwrap()
    }

    fn page_with(k: i64) -> Page {
        let mut p = Page::new(schema(), 100).unwrap();
        p.push(&Tuple::new(vec![Value::Int(k)])).unwrap();
        p
    }

    #[test]
    fn put_get_remove() {
        let mut s = PageStore::new();
        let id = s.put(page_with(7));
        assert_eq!(s.get(id).len(), 1);
        assert_eq!(s.len(), 1);
        assert!(s.try_get(PageId(99)).is_none());
        assert!(s.remove(id).is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut s = PageStore::new();
        let a = s.put(page_with(1));
        let b = s.put(page_with(2));
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "unknown page id")]
    fn get_unknown_panics() {
        let s = PageStore::new();
        let _ = s.get(PageId(5));
    }

    #[test]
    fn relation_round_trip() {
        let mut s = PageStore::new();
        let rel = Relation::from_tuples(
            "t",
            schema(),
            40, // header 16 + 3 tuples of 8
            (0..7).map(|k| Tuple::new(vec![Value::Int(k)])),
        )
        .unwrap();
        let ids = s.load_relation(&rel);
        assert_eq!(ids.len(), rel.num_pages());
        let back = s.materialize("t2", schema(), 40, &ids).unwrap();
        assert!(rel.same_contents(&back));
        // Load and materialize share buffers with the source relation.
        for (i, (&id, src)) in ids.iter().zip(rel.pages()).enumerate() {
            assert!(
                Arc::ptr_eq(&s.get_arc(id), src),
                "page {i} was deep-copied on load"
            );
        }
        for (src, out) in rel.pages().iter().zip(back.pages()) {
            assert!(Arc::ptr_eq(src, out));
        }
    }

    #[test]
    fn get_arc_shares_and_remove_returns_handle() {
        let mut s = PageStore::new();
        let id = s.put(Arc::new(page_with(3)));
        let h1 = s.get_arc(id);
        let h2 = s.get_arc(id);
        assert!(Arc::ptr_eq(&h1, &h2));
        let removed = s.remove(id).unwrap();
        assert!(Arc::ptr_eq(&h1, &removed));
        assert!(s.is_empty());
        // The handle keeps the page alive after removal.
        assert_eq!(h1.len(), 1);
    }

    #[test]
    fn wire_bytes_delegates() {
        let mut s = PageStore::new();
        let id = s.put(page_with(1));
        assert_eq!(s.wire_bytes(id), 16 + 8);
    }
}

//! Mass storage: IBM-3330-like disk drives.
//!
//! Paper §4.1 assumes "two IBM 3330 disk drives for mass storage of
//! relations". The 3330's published characteristics — 30 ms average seek,
//! 16.7 ms full rotation (8.35 ms average latency), 806 KB/s transfer — are
//! the defaults here. Requests queue FCFS on the set of drive arms.

use std::collections::BTreeSet;

use df_sim::stats::ByteCounter;
use df_sim::{Duration, Resource, SimTime};

use crate::store::PageId;

/// Timing and configuration parameters for [`MassStorage`].
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Average seek time charged per request.
    pub avg_seek: Duration,
    /// Average rotational latency charged per request (half a rotation).
    pub avg_rotational_latency: Duration,
    /// Sustained transfer rate in bytes/second.
    pub bytes_per_sec: f64,
    /// Number of independent drives (arms).
    pub drives: usize,
}

impl Default for DiskParams {
    /// Two IBM 3330 drives, as in the paper.
    fn default() -> Self {
        DiskParams {
            avg_seek: Duration::from_millis(30),
            avg_rotational_latency: Duration::from_micros(8_350),
            bytes_per_sec: 806_000.0,
            drives: 2,
        }
    }
}

impl DiskParams {
    /// Service time for transferring `bytes` (seek + latency + transfer).
    pub fn service_time(&self, bytes: usize) -> Duration {
        self.avg_seek
            + self.avg_rotational_latency
            + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// The simulated mass-storage subsystem.
#[derive(Debug, Clone)]
pub struct MassStorage {
    params: DiskParams,
    arms: Resource,
    /// Pages currently resident on disk.
    resident: BTreeSet<PageId>,
    /// Bytes read from disk.
    pub read_traffic: ByteCounter,
    /// Bytes written to disk.
    pub write_traffic: ByteCounter,
}

impl MassStorage {
    /// A disk subsystem with the given parameters.
    pub fn new(params: DiskParams) -> MassStorage {
        let drives = params.drives;
        MassStorage {
            params,
            arms: Resource::new("disk-arms", drives),
            resident: BTreeSet::new(),
            read_traffic: ByteCounter::new(),
            write_traffic: ByteCounter::new(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Declare `id` resident on disk without charging time (initial database
    /// load — the paper's benchmark starts with all source relations on
    /// mass storage).
    pub fn preload(&mut self, id: PageId) {
        self.resident.insert(id);
    }

    /// Whether `id` is on disk.
    pub fn contains(&self, id: PageId) -> bool {
        self.resident.contains(&id)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Read `bytes` of page `id`, queueing on a drive arm.
    ///
    /// Returns `(start, completion)`.
    ///
    /// # Panics
    /// Panics if the page is not on disk — the caller's residency tracking
    /// has diverged from the device's.
    pub fn read(&mut self, now: SimTime, id: PageId, bytes: usize) -> (SimTime, SimTime) {
        assert!(
            self.resident.contains(&id),
            "MassStorage::read: page {id} is not on disk"
        );
        self.read_traffic.record(bytes as u64);
        let service = self.params.service_time(bytes);
        self.arms.submit(now, service)
    }

    /// Write `bytes` of page `id` to disk (page becomes resident).
    ///
    /// Returns `(start, completion)`.
    pub fn write(&mut self, now: SimTime, id: PageId, bytes: usize) -> (SimTime, SimTime) {
        self.resident.insert(id);
        self.write_traffic.record(bytes as u64);
        let service = self.params.service_time(bytes);
        self.arms.submit(now, service)
    }

    /// Drop a page from disk (space reclamation for dead intermediates).
    pub fn discard(&mut self, id: PageId) {
        self.resident.remove(&id);
    }

    /// Arm utilization statistics.
    pub fn arm_stats(&self) -> &df_sim::ResourceStats {
        self.arms.stats()
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_traffic.bytes + self.write_traffic.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn service_time_model() {
        let p = DiskParams::default();
        // 16 KB page: 30ms + 8.35ms + 16384/806000 s ≈ 58.68 ms.
        let t = p.service_time(16 * 1024);
        let expect_ms = 30.0 + 8.35 + 16384.0 / 806_000.0 * 1000.0;
        assert!((t.as_millis_f64() - expect_ms).abs() < 0.01, "{t}");
    }

    #[test]
    fn read_requires_residency() {
        let mut d = MassStorage::new(DiskParams::default());
        d.preload(pid(1));
        let (s, c) = d.read(SimTime::ZERO, pid(1), 1000);
        assert_eq!(s, SimTime::ZERO);
        assert!(c > s);
        assert_eq!(d.read_traffic.bytes, 1000);
    }

    #[test]
    #[should_panic(expected = "not on disk")]
    fn read_of_absent_page_panics() {
        let mut d = MassStorage::new(DiskParams::default());
        d.read(SimTime::ZERO, pid(1), 1000);
    }

    #[test]
    fn writes_make_pages_resident() {
        let mut d = MassStorage::new(DiskParams::default());
        d.write(SimTime::ZERO, pid(2), 500);
        assert!(d.contains(pid(2)));
        assert_eq!(d.write_traffic.bytes, 500);
        assert_eq!(d.total_bytes(), 500);
        d.discard(pid(2));
        assert!(!d.contains(pid(2)));
    }

    #[test]
    fn two_drives_overlap_but_three_requests_queue() {
        let params = DiskParams {
            avg_seek: Duration::from_millis(10),
            avg_rotational_latency: Duration::ZERO,
            bytes_per_sec: 1e9, // transfer negligible
            drives: 2,
        };
        let mut d = MassStorage::new(params);
        for n in 0..3 {
            d.preload(pid(n));
        }
        let (_, c1) = d.read(SimTime::ZERO, pid(0), 10);
        let (_, c2) = d.read(SimTime::ZERO, pid(1), 10);
        let (s3, _) = d.read(SimTime::ZERO, pid(2), 10);
        assert_eq!(c1, c2); // parallel arms
        assert_eq!(s3, c1); // third waits
    }
}

//! IC local memory: a small private page buffer with LRU spill.
//!
//! Paper §4.1: *"Each IC has a local memory for pages of source relations
//! which will be used as operands in the instruction packets it distributes
//! to the IPs. When the local memory of an IC fills, the IC will write the
//! least desirable pages to its segment of the multiport disk cache."*
//! "Least desirable" is modelled as least-recently-used.

use df_sim::stats::ByteCounter;

use crate::lru::LruIndex;
use crate::store::PageId;

/// A bounded local page buffer. Accesses are charged no simulated time of
/// their own (local memory is orders of magnitude faster than the cache and
/// disk); the interesting quantity is *what spills*, which the owner charges
/// against the disk cache.
#[derive(Debug, Clone)]
pub struct LocalMemory {
    capacity_pages: usize,
    lru: LruIndex,
    /// Bytes admitted.
    pub in_traffic: ByteCounter,
    /// Bytes spilled out.
    pub spill_traffic: ByteCounter,
}

impl LocalMemory {
    /// A local memory holding at most `capacity_pages` pages.
    ///
    /// # Panics
    /// Panics if the capacity is zero.
    pub fn new(capacity_pages: usize) -> LocalMemory {
        assert!(capacity_pages > 0, "local memory needs at least one page");
        LocalMemory {
            capacity_pages,
            lru: LruIndex::new(),
            in_traffic: ByteCounter::new(),
            spill_traffic: ByteCounter::new(),
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently held.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Whether there is room for one more page without spilling.
    pub fn has_room(&self) -> bool {
        self.lru.len() < self.capacity_pages
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: PageId) -> bool {
        self.lru.contains(id)
    }

    /// Admit a page, spilling LRU unpinned pages as needed.
    ///
    /// Returns the spilled page ids (with the byte size recorded via
    /// `spill_bytes`, supplied by the caller per page because page sizes may
    /// vary). The caller must route spills to the disk cache.
    pub fn insert(
        &mut self,
        id: PageId,
        bytes: usize,
        spill_bytes: impl Fn(PageId) -> usize,
    ) -> Vec<PageId> {
        let mut spilled = Vec::new();
        while self.lru.len() >= self.capacity_pages {
            match self.lru.evict() {
                Some(victim) => {
                    self.spill_traffic.record(spill_bytes(victim) as u64);
                    spilled.push(victim);
                }
                None => break, // all pinned: overcommit
            }
        }
        self.lru.insert(id);
        self.in_traffic.record(bytes as u64);
        spilled
    }

    /// Refresh a page's recency.
    pub fn touch(&mut self, id: PageId) {
        self.lru.touch(id);
    }

    /// Pin a resident page. Pins nest.
    pub fn pin(&mut self, id: PageId) {
        self.lru.pin(id);
    }

    /// Undo one pin.
    pub fn unpin(&mut self, id: PageId) {
        self.lru.unpin(id);
    }

    /// Drop a page (fully consumed).
    pub fn remove(&mut self, id: PageId) {
        self.lru.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn spills_lru_when_full() {
        let mut m = LocalMemory::new(2);
        assert!(m.insert(pid(1), 100, |_| 100).is_empty());
        assert!(m.insert(pid(2), 100, |_| 100).is_empty());
        m.touch(pid(1)); // 2 becomes LRU
        let spilled = m.insert(pid(3), 100, |_| 100);
        assert_eq!(spilled, vec![pid(2)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.spill_traffic.bytes, 100);
        assert!(m.contains(pid(1)) && m.contains(pid(3)));
    }

    #[test]
    fn pinned_pages_do_not_spill() {
        let mut m = LocalMemory::new(1);
        m.insert(pid(1), 50, |_| 50);
        m.pin(pid(1));
        let spilled = m.insert(pid(2), 50, |_| 50);
        assert!(spilled.is_empty()); // overcommit
        assert_eq!(m.len(), 2);
        m.unpin(pid(1));
        m.remove(pid(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn room_accounting() {
        let mut m = LocalMemory::new(2);
        assert!(m.has_room());
        m.insert(pid(1), 10, |_| 10);
        m.insert(pid(2), 10, |_| 10);
        assert!(!m.has_room());
        assert!(!m.is_empty());
        assert_eq!(m.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        let _ = LocalMemory::new(0);
    }
}

//! A deterministic LRU index over page ids, with pinning.
//!
//! Shared by the disk cache and IC local memories. O(log n) touch/evict via
//! a (last-use, id) ordered set; ties are impossible because the use counter
//! is globally monotone.

use std::collections::{BTreeSet, HashMap};

use crate::store::PageId;

/// LRU bookkeeping for a set of resident pages.
#[derive(Debug, Clone, Default)]
pub struct LruIndex {
    /// page -> (last_use stamp, pin count)
    entries: HashMap<PageId, (u64, u32)>,
    /// (last_use stamp, page) for all *unpinned* pages.
    order: BTreeSet<(u64, PageId)>,
    clock: u64,
}

impl LruIndex {
    /// An empty index.
    pub fn new() -> LruIndex {
        LruIndex::default()
    }

    /// Number of tracked pages (pinned and unpinned).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` is tracked.
    pub fn contains(&self, id: PageId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Insert a page as most-recently-used (unpinned).
    ///
    /// # Panics
    /// Panics if the page is already tracked (double-insert is a simulator
    /// bug: residency is decided by the owning device).
    pub fn insert(&mut self, id: PageId) {
        self.clock += 1;
        let stamp = self.clock;
        let prev = self.entries.insert(id, (stamp, 0));
        assert!(prev.is_none(), "LruIndex: double insert of {id}");
        self.order.insert((stamp, id));
    }

    /// Mark `id` as just-used.
    ///
    /// # Panics
    /// Panics if the page is not tracked.
    pub fn touch(&mut self, id: PageId) {
        self.clock += 1;
        let stamp = self.clock;
        let entry = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("LruIndex: touch of untracked {id}"));
        if entry.1 == 0 {
            let removed = self.order.remove(&(entry.0, id));
            debug_assert!(removed);
            self.order.insert((stamp, id));
        }
        entry.0 = stamp;
    }

    /// Pin `id` (exempt from eviction). Pins nest.
    pub fn pin(&mut self, id: PageId) {
        let entry = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("LruIndex: pin of untracked {id}"));
        if entry.1 == 0 {
            let removed = self.order.remove(&(entry.0, id));
            debug_assert!(removed);
        }
        entry.1 += 1;
    }

    /// Undo one pin.
    pub fn unpin(&mut self, id: PageId) {
        let entry = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("LruIndex: unpin of untracked {id}"));
        assert!(entry.1 > 0, "LruIndex: unpin of unpinned {id}");
        entry.1 -= 1;
        if entry.1 == 0 {
            self.order.insert((entry.0, id));
        }
    }

    /// Remove `id` entirely (e.g. page migrated to another level).
    pub fn remove(&mut self, id: PageId) {
        if let Some((stamp, pins)) = self.entries.remove(&id) {
            if pins == 0 {
                self.order.remove(&(stamp, id));
            }
        }
    }

    /// The least-recently-used *unpinned* page, if any.
    pub fn lru_candidate(&self) -> Option<PageId> {
        self.order.iter().next().map(|&(_, id)| id)
    }

    /// Evict and return the LRU unpinned page.
    pub fn evict(&mut self) -> Option<PageId> {
        let id = self.lru_candidate()?;
        self.remove(id);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn evicts_in_lru_order() {
        let mut l = LruIndex::new();
        for n in 0..3 {
            l.insert(pid(n));
        }
        l.touch(pid(0)); // order now: 1, 2, 0
        assert_eq!(l.evict(), Some(pid(1)));
        assert_eq!(l.evict(), Some(pid(2)));
        assert_eq!(l.evict(), Some(pid(0)));
        assert_eq!(l.evict(), None);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let mut l = LruIndex::new();
        l.insert(pid(0));
        l.insert(pid(1));
        l.pin(pid(0));
        assert_eq!(l.evict(), Some(pid(1)));
        assert_eq!(l.evict(), None); // only a pinned page remains
        l.unpin(pid(0));
        assert_eq!(l.evict(), Some(pid(0)));
    }

    #[test]
    fn nested_pins() {
        let mut l = LruIndex::new();
        l.insert(pid(0));
        l.pin(pid(0));
        l.pin(pid(0));
        l.unpin(pid(0));
        assert_eq!(l.evict(), None);
        l.unpin(pid(0));
        assert_eq!(l.evict(), Some(pid(0)));
    }

    #[test]
    fn touch_while_pinned_updates_stamp() {
        let mut l = LruIndex::new();
        l.insert(pid(0));
        l.insert(pid(1));
        l.pin(pid(0));
        l.touch(pid(0)); // must not corrupt order set
        l.unpin(pid(0));
        // 0 was touched after 1 was inserted -> 1 evicts first.
        assert_eq!(l.evict(), Some(pid(1)));
        assert_eq!(l.evict(), Some(pid(0)));
    }

    #[test]
    fn contains_and_len() {
        let mut l = LruIndex::new();
        assert!(l.is_empty());
        l.insert(pid(5));
        assert!(l.contains(pid(5)));
        assert_eq!(l.len(), 1);
        l.remove(pid(5));
        assert!(!l.contains(pid(5)));
    }

    #[test]
    #[should_panic(expected = "double insert")]
    fn double_insert_panics() {
        let mut l = LruIndex::new();
        l.insert(pid(0));
        l.insert(pid(0));
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned")]
    fn unbalanced_unpin_panics() {
        let mut l = LruIndex::new();
        l.insert(pid(0));
        l.unpin(pid(0));
    }
}

//! The multiport disk cache (Intel 2314 CCD in the paper).
//!
//! A fixed pool of page frames between mass storage and the processors.
//! Supports optional per-owner segmentation: paper §4.1 suggests dividing
//! the cache "among the ICs according to the number of IPs each is
//! controlling", with each IC swapping to disk when its own segment fills.
//! The DIRECT-style machine of `df-core` uses a single shared segment.

use std::collections::HashMap;

use df_sim::stats::ByteCounter;
use df_sim::{Duration, Resource, SimTime};

use crate::lru::LruIndex;
use crate::store::PageId;

/// The owner of a cache segment (an IC index, or 0 for a shared cache).
pub type OwnerId = usize;

/// Timing and sizing parameters for [`DiskCache`].
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Total frames in the cache.
    pub frames: usize,
    /// Transfer rate of one port in bytes/second.
    ///
    /// CCD serial memories of the era sustained on the order of megabytes
    /// per second per port; the default is 4 MB/s.
    pub bytes_per_sec: f64,
    /// Number of independent ports ("multiport disk cache").
    pub ports: usize,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            frames: 256,
            bytes_per_sec: 4_000_000.0,
            ports: 4,
        }
    }
}

impl CacheParams {
    /// Port service time for `bytes`.
    pub fn service_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// A page frame's metadata.
#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    owner: OwnerId,
    bytes: usize,
}

/// The simulated multiport disk cache.
#[derive(Debug, Clone)]
pub struct DiskCache {
    params: CacheParams,
    ports: Resource,
    resident: HashMap<PageId, FrameMeta>,
    /// Per-owner LRU (deterministic iteration is irrelevant: lookups are by key).
    lru: HashMap<OwnerId, LruIndex>,
    /// Per-owner frame quota; owners absent from the map share the slack.
    quotas: HashMap<OwnerId, usize>,
    /// Per-owner frame occupancy.
    occupancy: HashMap<OwnerId, usize>,
    /// Bytes moved into the cache.
    pub in_traffic: ByteCounter,
    /// Bytes read out of the cache.
    pub out_traffic: ByteCounter,
}

impl DiskCache {
    /// A cache with the given parameters and no per-owner quotas (all
    /// owners share the full frame pool).
    pub fn new(params: CacheParams) -> DiskCache {
        let ports = params.ports;
        DiskCache {
            params,
            ports: Resource::new("cache-ports", ports),
            resident: HashMap::new(),
            lru: HashMap::new(),
            quotas: HashMap::new(),
            occupancy: HashMap::new(),
            in_traffic: ByteCounter::new(),
            out_traffic: ByteCounter::new(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Set `owner`'s frame quota (paper: proportional to the IPs it
    /// controls). Owners without a quota are bounded only by the pool.
    pub fn set_quota(&mut self, owner: OwnerId, frames: usize) {
        self.quotas.insert(owner, frames);
    }

    /// Total frames in use.
    pub fn frames_used(&self) -> usize {
        self.resident.len()
    }

    /// Frames in use by `owner`.
    pub fn frames_used_by(&self, owner: OwnerId) -> usize {
        self.occupancy.get(&owner).copied().unwrap_or(0)
    }

    /// Whether `id` is cached.
    pub fn contains(&self, id: PageId) -> bool {
        self.resident.contains_key(&id)
    }

    /// Insert page `id` for `owner`, charging one port transfer.
    ///
    /// If the owner's quota (or the pool) is full, least-recently-used
    /// unpinned pages of the same owner are evicted first; the evicted ids
    /// are returned so the caller can write them to mass storage (and charge
    /// that time). If nothing evictable exists the insert still succeeds —
    /// the cache overcommits rather than deadlocks — mirroring the paper's
    /// MC granting emergency frames; callers can detect overcommit via
    /// [`DiskCache::frames_used`].
    ///
    /// Returns `(start, completion, evicted)`.
    pub fn insert(
        &mut self,
        now: SimTime,
        owner: OwnerId,
        id: PageId,
        bytes: usize,
    ) -> (SimTime, SimTime, Vec<PageId>) {
        assert!(
            !self.resident.contains_key(&id),
            "DiskCache::insert: page {id} already cached"
        );
        let mut evicted = Vec::new();
        // Enforce the owner quota first, then the global pool.
        while self.over_quota(owner, 1) {
            match self.lru.get_mut(&owner).and_then(LruIndex::evict) {
                Some(victim) => {
                    self.forget(victim);
                    evicted.push(victim);
                }
                None => break, // everything pinned: overcommit
            }
        }
        while self.resident.len() + 1 > self.params.frames {
            match self.evict_any() {
                Some(victim) => evicted.push(victim),
                None => break, // overcommit
            }
        }

        self.resident.insert(id, FrameMeta { owner, bytes });
        *self.occupancy.entry(owner).or_insert(0) += 1;
        self.lru.entry(owner).or_default().insert(id);
        self.in_traffic.record(bytes as u64);
        let service = self.params.service_time(bytes);
        let (s, c) = self.ports.submit(now, service);
        (s, c, evicted)
    }

    /// Read page `id` out of the cache, charging one port transfer and
    /// refreshing its LRU position. Returns `(start, completion)`.
    ///
    /// # Panics
    /// Panics if the page is not cached.
    pub fn read(&mut self, now: SimTime, id: PageId) -> (SimTime, SimTime) {
        let meta = *self
            .resident
            .get(&id)
            .unwrap_or_else(|| panic!("DiskCache::read: page {id} not cached"));
        self.lru
            .get_mut(&meta.owner)
            .expect("owner has an LRU index")
            .touch(id);
        self.out_traffic.record(meta.bytes as u64);
        let service = self.params.service_time(meta.bytes);
        self.ports.submit(now, service)
    }

    /// Pin a cached page against eviction. Pins nest.
    pub fn pin(&mut self, id: PageId) {
        let meta = *self
            .resident
            .get(&id)
            .unwrap_or_else(|| panic!("DiskCache::pin: page {id} not cached"));
        self.lru
            .get_mut(&meta.owner)
            .expect("owner has an LRU index")
            .pin(id);
    }

    /// Undo one pin.
    pub fn unpin(&mut self, id: PageId) {
        let meta = *self
            .resident
            .get(&id)
            .unwrap_or_else(|| panic!("DiskCache::unpin: page {id} not cached"));
        self.lru
            .get_mut(&meta.owner)
            .expect("owner has an LRU index")
            .unpin(id);
    }

    /// Drop a page without charging time (dead intermediate reclamation).
    pub fn discard(&mut self, id: PageId) {
        if let Some(meta) = self.resident.get(&id).copied() {
            self.lru
                .get_mut(&meta.owner)
                .expect("owner has an LRU index")
                .remove(id);
            self.forget(id);
        }
    }

    /// Port utilization statistics.
    pub fn port_stats(&self) -> &df_sim::ResourceStats {
        self.ports.stats()
    }

    fn over_quota(&self, owner: OwnerId, adding: usize) -> bool {
        match self.quotas.get(&owner) {
            Some(&q) => self.frames_used_by(owner) + adding > q,
            None => false,
        }
    }

    /// Evict the globally least-recently-used unpinned page.
    fn evict_any(&mut self) -> Option<PageId> {
        // Deterministic: scan owners in ascending order, pick the best
        // candidate by (stamp-free) comparison of per-owner LRU heads using
        // page id as the final tiebreak. Owner count is small (≤ #ICs).
        let mut owners: Vec<OwnerId> = self.lru.keys().copied().collect();
        owners.sort_unstable();
        let victim = owners
            .into_iter()
            .filter_map(|o| self.lru[&o].lru_candidate())
            .min()?;
        let meta = self.resident[&victim];
        self.lru
            .get_mut(&meta.owner)
            .expect("owner has an LRU index")
            .remove(victim);
        self.forget(victim);
        Some(victim)
    }

    fn forget(&mut self, id: PageId) {
        if let Some(meta) = self.resident.remove(&id) {
            let occ = self
                .occupancy
                .get_mut(&meta.owner)
                .expect("occupancy tracked per owner");
            *occ -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    fn cache(frames: usize) -> DiskCache {
        DiskCache::new(CacheParams {
            frames,
            bytes_per_sec: 1e6,
            ports: 1,
        })
    }

    #[test]
    fn insert_and_read_charge_port_time() {
        let mut c = cache(4);
        let (_, done, ev) = c.insert(SimTime::ZERO, 0, pid(1), 1_000);
        assert!(ev.is_empty());
        assert_eq!(done, SimTime::ZERO + Duration::from_millis(1));
        let (s, _) = c.read(done, pid(1));
        assert_eq!(s, done);
        assert_eq!(c.in_traffic.bytes, 1000);
        assert_eq!(c.out_traffic.bytes, 1000);
    }

    #[test]
    fn pool_eviction_is_lru() {
        let mut c = cache(2);
        c.insert(SimTime::ZERO, 0, pid(1), 10);
        c.insert(SimTime::ZERO, 0, pid(2), 10);
        c.read(SimTime::ZERO, pid(1)); // 2 is now LRU
        let (_, _, ev) = c.insert(SimTime::ZERO, 0, pid(3), 10);
        assert_eq!(ev, vec![pid(2)]);
        assert!(c.contains(pid(1)) && c.contains(pid(3)));
        assert_eq!(c.frames_used(), 2);
    }

    #[test]
    fn owner_quota_evicts_own_pages_first() {
        let mut c = cache(10);
        c.set_quota(1, 2);
        c.insert(SimTime::ZERO, 1, pid(1), 10);
        c.insert(SimTime::ZERO, 1, pid(2), 10);
        c.insert(SimTime::ZERO, 2, pid(3), 10);
        let (_, _, ev) = c.insert(SimTime::ZERO, 1, pid(4), 10);
        assert_eq!(ev, vec![pid(1)]);
        assert!(c.contains(pid(3)), "other owner untouched");
        assert_eq!(c.frames_used_by(1), 2);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut c = cache(2);
        c.insert(SimTime::ZERO, 0, pid(1), 10);
        c.pin(pid(1));
        c.insert(SimTime::ZERO, 0, pid(2), 10);
        let (_, _, ev) = c.insert(SimTime::ZERO, 0, pid(3), 10);
        assert_eq!(ev, vec![pid(2)]);
        assert!(c.contains(pid(1)));
        // Now both remaining evictables are gone -> overcommit.
        c.pin(pid(3));
        let (_, _, ev) = c.insert(SimTime::ZERO, 0, pid(4), 10);
        assert!(ev.is_empty());
        assert_eq!(c.frames_used(), 3); // overcommitted past 2 frames
        c.unpin(pid(1));
        c.unpin(pid(3));
    }

    #[test]
    fn discard_frees_frames() {
        let mut c = cache(2);
        c.insert(SimTime::ZERO, 0, pid(1), 10);
        c.discard(pid(1));
        assert!(!c.contains(pid(1)));
        assert_eq!(c.frames_used(), 0);
        // Discarding twice is a no-op.
        c.discard(pid(1));
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let mut c = cache(2);
        c.insert(SimTime::ZERO, 0, pid(1), 10);
        c.insert(SimTime::ZERO, 0, pid(1), 10);
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn read_of_absent_page_panics() {
        let mut c = cache(2);
        c.read(SimTime::ZERO, pid(9));
    }
}

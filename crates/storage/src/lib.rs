//! # df-storage — the simulated three-level storage hierarchy
//!
//! Paper §4.1: *"the IC local memory, the disk cache, and the mass storage
//! devices form a three-level storage hierarchy."* This crate models each
//! level plus the metadata that drives data-flow scheduling:
//!
//! * [`PageStore`] — the ground truth: actual page *contents* keyed by
//!   [`PageId`]. Simulated devices track page *location and timing*; the
//!   bytes themselves always live here, so no simulation bug can corrupt
//!   data (and results stay comparable to the oracle executor).
//! * [`MassStorage`] — IBM-3330-like disk drives: average-seek + half-
//!   rotation + transfer cost model, FCFS arm queueing, byte counters.
//! * [`DiskCache`] — the multiport CCD cache: fixed frame pool, optional
//!   per-owner segmentation (paper: *"divide it among the ICs according to
//!   the number of IPs each is controlling"*), LRU eviction of unpinned
//!   frames, port queueing, byte counters.
//! * [`LocalMemory`] — an IC's private page buffer with LRU spill.
//! * [`PageTable`] — paper §2.3: *"the data is represented by page tables"*;
//!   a growing list of page ids plus a `complete` flag. The `complete` flag
//!   is exactly the difference between relation-level granularity (fire when
//!   complete) and page-level granularity (fire when non-empty).
//!
//! Timing parameters default to the hardware named in the paper (§4.1) and
//! are fully overridable — see [`DiskParams`], [`CacheParams`].

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cache;
mod local;
mod lru;
mod mass;
mod page_table;
mod store;

pub use cache::{CacheParams, DiskCache};
pub use local::LocalMemory;
pub use mass::{DiskParams, MassStorage};
pub use page_table::PageTable;
pub use store::{PageId, PageStore};

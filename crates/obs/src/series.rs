//! Per-interval byte accounting — bandwidth demand as a *curve*.
//!
//! The paper's Figure 4.2 reports average demand (total bytes / makespan);
//! a single average hides bursts that would saturate a 40 Mbps ring long
//! before the mean suggests. An [`IntervalSeries`] accumulates traced
//! bytes into fixed-width time buckets and exposes the resulting Mbps
//! series, so the demand curves can be re-derived from *measured*
//! transfers rather than the closed-form §3.3 arithmetic.

/// Self-scaling per-interval byte accumulator.
///
/// Buckets have a fixed width; when a record lands beyond the last
/// representable bucket the series coalesces adjacent pairs and doubles
/// the width, so any horizon fits in at most `max_buckets` buckets and
/// recording stays O(1) amortized. Totals are conserved exactly through
/// coalescing — `total_bytes` always equals the sum of all records.
///
/// ```
/// use df_obs::IntervalSeries;
/// let mut s = IntervalSeries::new(1_000, 4); // 1 µs buckets, at most 4
/// s.record(0, 100);
/// s.record(3_500, 50);
/// assert_eq!(s.total_bytes(), 150);
/// assert_eq!(s.buckets(), &[100, 0, 0, 50]);
/// s.record(7_999, 50); // beyond bucket 3 → coalesce, width doubles
/// assert_eq!(s.interval_ns(), 2_000);
/// assert_eq!(s.buckets(), &[100, 50, 0, 50]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSeries {
    interval_ns: u64,
    max_buckets: usize,
    buckets: Vec<u64>,
}

impl Default for IntervalSeries {
    /// 1 ms initial buckets, at most 512 of them — suits both the host
    /// executor (runs of milliseconds to minutes) and the simulators
    /// (makespans of seconds).
    fn default() -> IntervalSeries {
        IntervalSeries::new(1_000_000, 512)
    }
}

impl IntervalSeries {
    /// A series with `initial_interval_ns`-wide buckets (≥ 1 ns), holding
    /// at most `max_buckets` (≥ 2) before coalescing.
    pub fn new(initial_interval_ns: u64, max_buckets: usize) -> IntervalSeries {
        IntervalSeries {
            interval_ns: initial_interval_ns.max(1),
            max_buckets: max_buckets.max(2),
            buckets: Vec::new(),
        }
    }

    /// Add `bytes` at time `t_ns`.
    pub fn record(&mut self, t_ns: u64, bytes: u64) {
        let mut idx = (t_ns / self.interval_ns) as usize;
        while idx >= self.max_buckets {
            self.coalesce();
            idx = (t_ns / self.interval_ns) as usize;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    /// Halve the resolution: sum adjacent bucket pairs, double the width.
    fn coalesce(&mut self) {
        let merged: Vec<u64> = self
            .buckets
            .chunks(2)
            .map(|pair| pair.iter().sum())
            .collect();
        self.buckets = merged;
        self.interval_ns *= 2;
    }

    /// Current bucket width in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Current bucket width in seconds.
    pub fn interval_secs(&self) -> f64 {
        self.interval_ns as f64 / 1e9
    }

    /// Bytes per bucket, from t = 0.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum of all recorded bytes (conserved through coalescing).
    pub fn total_bytes(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// The demand curve: average megabits/second within each interval
    /// (the paper quotes ring capacities in Mbps).
    pub fn mbps_series(&self) -> Vec<f64> {
        let secs = self.interval_secs();
        self.buckets
            .iter()
            .map(|&b| b as f64 * 8.0 / 1e6 / secs)
            .collect()
    }

    /// Peak per-interval demand in Mbps (0 when empty).
    pub fn peak_mbps(&self) -> f64 {
        self.mbps_series().into_iter().fold(0.0, f64::max)
    }

    /// Mean demand over the recorded horizon in Mbps — comparable to the
    /// `ByteCounter`-derived Figure 4.2 averages (0 when empty).
    pub fn mean_mbps(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        let horizon = self.interval_secs() * self.buckets.len() as f64;
        self.total_bytes() as f64 * 8.0 / 1e6 / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_into_the_right_buckets() {
        let mut s = IntervalSeries::new(1_000, 8);
        s.record(0, 1);
        s.record(999, 2);
        s.record(1_000, 4);
        assert_eq!(s.buckets(), &[3, 4]);
        assert_eq!(s.total_bytes(), 7);
    }

    #[test]
    fn coalescing_conserves_totals() {
        let mut s = IntervalSeries::new(1, 4);
        for t in 0..64u64 {
            s.record(t, 10);
        }
        assert_eq!(s.total_bytes(), 640);
        assert!(s.buckets().len() <= 4);
        // 64 ns of records in ≤ 4 buckets → width ≥ 16 ns.
        assert!(s.interval_ns() >= 16);
    }

    #[test]
    fn far_future_record_scales_in_one_call() {
        let mut s = IntervalSeries::new(1, 4);
        s.record(0, 5);
        s.record(1_000_000, 5); // forces many doublings at once
        assert_eq!(s.total_bytes(), 10);
        assert!(s.buckets().len() <= 4);
    }

    #[test]
    fn mbps_views() {
        // 1 s buckets: 1 MB in bucket 0, nothing in bucket 1.
        let mut s = IntervalSeries::new(1_000_000_000, 16);
        s.record(0, 1_000_000);
        s.record(1_500_000_000, 0);
        let curve = s.mbps_series();
        assert_eq!(curve.len(), 2);
        assert!((curve[0] - 8.0).abs() < 1e-9);
        assert_eq!(curve[1], 0.0);
        assert!((s.peak_mbps() - 8.0).abs() < 1e-9);
        assert!((s.mean_mbps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_safe() {
        let s = IntervalSeries::default();
        assert!(s.is_empty());
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.peak_mbps(), 0.0);
        assert_eq!(s.mean_mbps(), 0.0);
        assert!(s.mbps_series().is_empty());
    }
}

//! Machine-readable bench artifacts (`BENCH_<name>.json`).
//!
//! The bench binaries (`host_run --json`, `experiments --json`) serialize
//! their metrics into this schema-versioned format; `bench_check` reads a
//! pair of artifacts back and fails CI on throughput regressions or
//! metric-invariant violations. The full field list is documented in
//! `DESIGN.md` §7.

use crate::json::JsonValue;

/// Version stamped into every artifact. Bump on any incompatible change
/// to the field layout; `bench_check` refuses versions outside
/// [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`].
///
/// v2 added the serve-layer sweep fields (`reads`, `read_execs`,
/// `plan_cache_hits`/`plan_cache_misses`, `inflight_joins`, `lanes`) and
/// their conservation check; every v1 field kept its meaning, so v1
/// baselines remain readable and comparable.
///
/// v3 added the serve write-path fields (`parses`,
/// `cache_evictions_partial`, `concurrent_write_batches`, `mux_clients`)
/// and two checks: `parses == plan_cache_misses` (relation-scoped
/// invalidation never forces a redundant parse) and
/// `cache_evictions_partial == 0` when `writes_applied == 0` (only
/// writes evict). v1/v2 fields kept their meanings, so older baselines
/// remain readable and comparable.
///
/// v4 added the incremental-view fields (`views_installed`,
/// `delta_pages`, `view_reads_served`) and their quiescence check: with
/// no view installed, maintenance must move zero delta pages and serve
/// zero view reads — a nonzero count would mean the write path paid an
/// IVM tax without a standing query to maintain. v1–v3 fields kept
/// their meanings, so older baselines remain readable and comparable.
pub const SCHEMA_VERSION: u64 = 4;

/// Oldest schema version this build still reads, checks, and compares.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Counters that are deterministic at a fixed scale/page-size/seed and
/// therefore compared for *exact* equality against a committed baseline.
/// Everything else (timings, unit counts, page movement) varies with
/// thread interleaving or host speed and is only threshold-checked.
pub const EXACT_COUNTERS: &[&str] = &["queries", "result_tuples", "result_payload_bytes"];

/// Per-query metrics row (mirrors `df-host`'s `QueryStats`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryRow {
    /// Position of the query in the submitted batch.
    pub index: u64,
    /// Result tuples produced. Deterministic for a fixed workload.
    pub tuples: u64,
    /// Sum of result tuple image lengths in bytes. Deterministic and
    /// packing-independent, so it is also comparable against the
    /// sequential oracle's relation sizes.
    pub result_payload_bytes: u64,
    /// Units fired on behalf of the query (schedule-dependent).
    pub units: u64,
    /// Hash-join probe units among `units`.
    pub probe_units: u64,
    /// Join sweep units among `units`.
    pub sweep_units: u64,
    /// Pages that crossed the distribution path for the query.
    pub pages_moved: u64,
    /// Bytes those pages carried.
    pub bytes_moved: u64,
    /// Wall-clock from admission to completion, seconds.
    pub elapsed_secs: f64,
    /// True when the query was concluded with an error.
    pub failed: bool,
}

/// One named bandwidth-demand curve (an `IntervalSeries` rendered to Mbps).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Which path the curve measures (e.g. `distribution`, `outer_ring`).
    pub path: String,
    /// Bucket width in seconds.
    pub interval_secs: f64,
    /// Average demand within each bucket, megabits per second.
    pub mbps: Vec<f64>,
}

/// One row of a parameter sweep (e.g. one IP count of Figure 4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Row label, e.g. `ips=8`.
    pub label: String,
    /// Named measurements for the row.
    pub values: Vec<(String, f64)>,
}

/// A complete bench artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this build).
    pub schema_version: u64,
    /// Artifact name; the conventional file name is `BENCH_<name>.json`.
    pub name: String,
    /// Producer kind: `host`, `ring`, `core`, or `sweep`.
    pub kind: String,
    /// Run configuration as ordered key/value strings (scale, workers, …).
    pub params: Vec<(String, String)>,
    /// Batch wall-clock (host) or simulated makespan (sims), seconds.
    pub elapsed_secs: f64,
    /// Flat named counters (bytes, units, tuples, …).
    pub counters: Vec<(String, f64)>,
    /// Per-query rows; empty for sweep artifacts.
    pub per_query: Vec<QueryRow>,
    /// Bandwidth-demand curves; may be empty.
    pub series: Vec<SeriesRow>,
    /// Sweep rows; empty for single-run artifacts.
    pub sweep: Vec<SweepRow>,
    /// True when fault injection was active. Cross-stat conservation
    /// invariants are skipped in that case: a dying worker takes its
    /// in-progress counts with it.
    pub faults_active: bool,
}

impl BenchArtifact {
    /// An empty artifact of the current schema version.
    pub fn new(name: &str, kind: &str) -> BenchArtifact {
        BenchArtifact {
            schema_version: SCHEMA_VERSION,
            name: name.to_string(),
            kind: kind.to_string(),
            params: Vec::new(),
            elapsed_secs: 0.0,
            counters: Vec::new(),
            per_query: Vec::new(),
            series: Vec::new(),
            sweep: Vec::new(),
            faults_active: false,
        }
    }

    /// Record a configuration parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut BenchArtifact {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Record a named counter.
    pub fn counter(&mut self, key: &str, value: f64) -> &mut BenchArtifact {
        self.counters.push((key.to_string(), value));
        self
    }

    /// Look up a counter by name.
    pub fn counter_value(&self, key: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Serialize to the pretty-printed on-disk form.
    pub fn to_json(&self) -> String {
        let mut doc = JsonValue::obj();
        doc.set("schema_version", self.schema_version)
            .set("name", self.name.as_str())
            .set("kind", self.kind.as_str())
            .set("elapsed_secs", self.elapsed_secs)
            .set("faults_active", self.faults_active);
        let mut params = JsonValue::obj();
        for (k, v) in &self.params {
            params.set(k, v.as_str());
        }
        doc.set("params", params);
        let mut counters = JsonValue::obj();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        doc.set("counters", counters);
        doc.set(
            "per_query",
            JsonValue::Arr(self.per_query.iter().map(query_row_to_json).collect()),
        );
        doc.set(
            "series",
            JsonValue::Arr(
                self.series
                    .iter()
                    .map(|s| {
                        let mut row = JsonValue::obj();
                        row.set("path", s.path.as_str())
                            .set("interval_secs", s.interval_secs)
                            .set(
                                "mbps",
                                JsonValue::Arr(s.mbps.iter().map(|&m| m.into()).collect()),
                            );
                        row
                    })
                    .collect(),
            ),
        );
        doc.set(
            "sweep",
            JsonValue::Arr(
                self.sweep
                    .iter()
                    .map(|s| {
                        let mut row = JsonValue::obj();
                        let mut values = JsonValue::obj();
                        for (k, v) in &s.values {
                            values.set(k, *v);
                        }
                        row.set("label", s.label.as_str()).set("values", values);
                        row
                    })
                    .collect(),
            ),
        );
        doc.to_pretty()
    }

    /// Parse an artifact back from JSON text.
    ///
    /// # Errors
    /// Returns a message naming the malformed or missing field.
    pub fn from_json(text: &str) -> Result<BenchArtifact, String> {
        let doc = JsonValue::parse(text)?;
        let need_u64 = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing/invalid `{key}`"))
        };
        let need_str = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing/invalid `{key}`"))
        };
        let mut artifact = BenchArtifact::new(&need_str("name")?, &need_str("kind")?);
        artifact.schema_version = need_u64("schema_version")?;
        artifact.elapsed_secs = doc
            .get("elapsed_secs")
            .and_then(JsonValue::as_f64)
            .ok_or("missing/invalid `elapsed_secs`")?;
        artifact.faults_active = doc
            .get("faults_active")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        if let Some(JsonValue::Obj(map)) = doc.get("params") {
            for (k, v) in map {
                let v = v
                    .as_str()
                    .ok_or_else(|| format!("param `{k}` not a string"))?;
                artifact.params.push((k.clone(), v.to_string()));
            }
        }
        if let Some(JsonValue::Obj(map)) = doc.get("counters") {
            for (k, v) in map {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("counter `{k}` not a number"))?;
                artifact.counters.push((k.clone(), v));
            }
        }
        for row in doc
            .get("per_query")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
        {
            artifact.per_query.push(query_row_from_json(row)?);
        }
        for row in doc.get("series").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let mbps = row
                .get("mbps")
                .and_then(JsonValue::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|v| v.as_f64().ok_or("series mbps entry not a number"))
                .collect::<Result<Vec<f64>, _>>()?;
            artifact.series.push(SeriesRow {
                path: row
                    .get("path")
                    .and_then(JsonValue::as_str)
                    .ok_or("series row missing `path`")?
                    .to_string(),
                interval_secs: row
                    .get("interval_secs")
                    .and_then(JsonValue::as_f64)
                    .ok_or("series row missing `interval_secs`")?,
                mbps,
            });
        }
        for row in doc.get("sweep").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let mut values = Vec::new();
            if let Some(JsonValue::Obj(map)) = row.get("values") {
                for (k, v) in map {
                    let v = v
                        .as_f64()
                        .ok_or_else(|| format!("sweep value `{k}` not a number"))?;
                    values.push((k.clone(), v));
                }
            }
            artifact.sweep.push(SweepRow {
                label: row
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or("sweep row missing `label`")?
                    .to_string(),
                values,
            });
        }
        Ok(artifact)
    }

    /// Validate the artifact's internal metric invariants. Returns every
    /// violation found (empty = sound).
    pub fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&self.schema_version) {
            problems.push(format!(
                "schema_version {} outside supported {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if !self.elapsed_secs.is_finite() || self.elapsed_secs < 0.0 {
            problems.push(format!("elapsed_secs {} not a duration", self.elapsed_secs));
        }
        for q in &self.per_query {
            // Probe and sweep kernels are disjoint classes of join units,
            // and every one of them fired as a unit of this query.
            if q.probe_units + q.sweep_units > q.units {
                problems.push(format!(
                    "query {}: probe_units {} + sweep_units {} > units {}",
                    q.index, q.probe_units, q.sweep_units, q.units
                ));
            }
            if q.tuples > 0 && q.result_payload_bytes == 0 {
                problems.push(format!(
                    "query {}: {} tuples but zero payload bytes",
                    q.index, q.tuples
                ));
            }
            if !q.failed && q.elapsed_secs > self.elapsed_secs + 1e-6 {
                problems.push(format!(
                    "query {}: elapsed {}s exceeds batch elapsed {}s",
                    q.index, q.elapsed_secs, self.elapsed_secs
                ));
            }
        }
        // Batch-level counters must agree with the per-query sums. Skipped
        // under fault injection: a killed worker loses in-progress stats.
        if !self.faults_active && !self.per_query.is_empty() {
            let sums: [(&str, u64); 2] = [
                (
                    "result_tuples",
                    self.per_query.iter().map(|q| q.tuples).sum(),
                ),
                (
                    "result_payload_bytes",
                    self.per_query.iter().map(|q| q.result_payload_bytes).sum(),
                ),
            ];
            for (key, expect) in sums {
                if let Some(got) = self.counter_value(key) {
                    if got != expect as f64 {
                        problems.push(format!("counter {key} {got} != per-query sum {expect}"));
                    }
                }
            }
        }
        for s in &self.series {
            if s.interval_secs <= 0.0 {
                problems.push(format!("series {}: non-positive interval", s.path));
            }
            if s.mbps.iter().any(|m| !m.is_finite() || *m < 0.0) {
                problems.push(format!("series {}: negative/non-finite demand", s.path));
            }
        }
        // Serve-layer read conservation (schema v2): every read request is
        // executed, batch-fused, or joined onto an in-flight execution,
        // exactly once. Rows without the v2 fields (v1 baselines) are
        // skipped, keeping old artifacts valid.
        for row in &self.sweep {
            let get = |key: &str| row.values.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
            if let (Some(reads), Some(execs), Some(fused), Some(joins)) = (
                get("reads"),
                get("read_execs"),
                get("fused"),
                get("inflight_joins"),
            ) {
                if execs + fused + joins != reads {
                    problems.push(format!(
                        "sweep {}: read_execs {execs} + fused {fused} + inflight_joins \
                         {joins} != reads {reads}",
                        row.label
                    ));
                }
            }
            // Serve write-path identities (schema v3). Relation-scoped
            // plan-cache invalidation must never force a parse the cache
            // didn't miss, and only an applied write may evict.
            if let (Some(parses), Some(misses)) = (get("parses"), get("plan_cache_misses")) {
                if parses != misses {
                    problems.push(format!(
                        "sweep {}: parses {parses} != plan_cache_misses {misses}",
                        row.label
                    ));
                }
            }
            if let (Some(evictions), Some(writes)) =
                (get("cache_evictions_partial"), get("writes_applied"))
            {
                if writes == 0.0 && evictions != 0.0 {
                    problems.push(format!(
                        "sweep {}: {evictions} partial cache evictions with zero \
                         writes applied",
                        row.label
                    ));
                }
            }
            // Incremental-view quiescence (schema v4): the write path pays
            // the IVM tax only for standing queries that exist, and a view
            // read never re-executes — so with zero views installed, both
            // view counters must be zero.
            if let (Some(views), Some(delta_pages), Some(view_reads)) = (
                get("views_installed"),
                get("delta_pages"),
                get("view_reads_served"),
            ) {
                if views == 0.0 && delta_pages != 0.0 {
                    problems.push(format!(
                        "sweep {}: {delta_pages} delta pages moved with zero views \
                         installed",
                        row.label
                    ));
                }
                if views == 0.0 && view_reads != 0.0 {
                    problems.push(format!(
                        "sweep {}: {view_reads} view reads served with zero views \
                         installed",
                        row.label
                    ));
                }
            }
        }
        problems
    }

    /// Compare a candidate artifact against a baseline. Returns every
    /// failure found (empty = pass).
    ///
    /// Deterministic counters ([`EXACT_COUNTERS`] and per-query tuple and
    /// payload counts) must match exactly; wall-clock may regress by at
    /// most [`CompareOptions::max_regression`] (skipped entirely under
    /// [`CompareOptions::counters_only`], for baselines recorded on a
    /// different machine).
    pub fn compare(
        base: &BenchArtifact,
        cand: &BenchArtifact,
        opts: &CompareOptions,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        // Any supported-version pair compares: every v1 field kept its
        // meaning in v2, so a committed v1 baseline still gates a v2
        // candidate. Unsupported versions are terminal.
        for (role, version) in [
            ("baseline", base.schema_version),
            ("candidate", cand.schema_version),
        ] {
            if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
                failures.push(format!(
                    "{role} schema_version {version} outside supported \
                     {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
                ));
            }
        }
        if !failures.is_empty() {
            return failures;
        }
        if base.kind != cand.kind {
            failures.push(format!(
                "kind mismatch: baseline `{}` vs candidate `{}`",
                base.kind, cand.kind
            ));
        }
        for key in EXACT_COUNTERS {
            if let (Some(b), Some(c)) = (base.counter_value(key), cand.counter_value(key)) {
                if b != c {
                    failures.push(format!("counter {key}: baseline {b} vs candidate {c}"));
                }
            }
        }
        if base.per_query.len() != cand.per_query.len() {
            failures.push(format!(
                "query count: baseline {} vs candidate {}",
                base.per_query.len(),
                cand.per_query.len()
            ));
        }
        for (b, c) in base.per_query.iter().zip(&cand.per_query) {
            if b.tuples != c.tuples {
                failures.push(format!(
                    "query {}: tuples baseline {} vs candidate {}",
                    b.index, b.tuples, c.tuples
                ));
            }
            if b.result_payload_bytes != c.result_payload_bytes {
                failures.push(format!(
                    "query {}: payload bytes baseline {} vs candidate {}",
                    b.index, b.result_payload_bytes, c.result_payload_bytes
                ));
            }
            if b.failed != c.failed {
                failures.push(format!(
                    "query {}: failed baseline {} vs candidate {}",
                    b.index, b.failed, c.failed
                ));
            }
        }
        if !opts.counters_only && base.elapsed_secs > 0.0 {
            let limit = base.elapsed_secs * (1.0 + opts.max_regression);
            if cand.elapsed_secs > limit {
                failures.push(format!(
                    "throughput regression: elapsed {:.4}s vs baseline {:.4}s (limit {:.4}s at +{:.0}%)",
                    cand.elapsed_secs,
                    base.elapsed_secs,
                    limit,
                    opts.max_regression * 100.0
                ));
            }
        }
        failures
    }
}

/// Knobs for [`BenchArtifact::compare`].
#[derive(Debug, Clone)]
pub struct CompareOptions {
    /// Maximum tolerated fractional wall-clock regression (0.25 = +25%).
    pub max_regression: f64,
    /// Skip timing checks entirely; compare deterministic counters only.
    /// The right mode against a committed baseline, whose timings came
    /// from a different machine.
    pub counters_only: bool,
}

impl Default for CompareOptions {
    fn default() -> CompareOptions {
        CompareOptions {
            max_regression: 0.25,
            counters_only: false,
        }
    }
}

fn query_row_to_json(q: &QueryRow) -> JsonValue {
    let mut row = JsonValue::obj();
    row.set("index", q.index)
        .set("tuples", q.tuples)
        .set("result_payload_bytes", q.result_payload_bytes)
        .set("units", q.units)
        .set("probe_units", q.probe_units)
        .set("sweep_units", q.sweep_units)
        .set("pages_moved", q.pages_moved)
        .set("bytes_moved", q.bytes_moved)
        .set("elapsed_secs", q.elapsed_secs)
        .set("failed", q.failed);
    row
}

fn query_row_from_json(row: &JsonValue) -> Result<QueryRow, String> {
    let u = |key: &str| {
        row.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("query row missing `{key}`"))
    };
    Ok(QueryRow {
        index: u("index")?,
        tuples: u("tuples")?,
        result_payload_bytes: u("result_payload_bytes")?,
        units: u("units")?,
        probe_units: u("probe_units")?,
        sweep_units: u("sweep_units")?,
        pages_moved: u("pages_moved")?,
        bytes_moved: u("bytes_moved")?,
        elapsed_secs: row
            .get("elapsed_secs")
            .and_then(JsonValue::as_f64)
            .ok_or("query row missing `elapsed_secs`")?,
        failed: row
            .get("failed")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchArtifact {
        let mut a = BenchArtifact::new("host_smoke", "host");
        a.param("scale", "0.05").param("workers", 2u32);
        a.elapsed_secs = 1.0;
        a.counter("queries", 2.0)
            .counter("result_tuples", 30.0)
            .counter("result_payload_bytes", 900.0);
        a.per_query = vec![
            QueryRow {
                index: 0,
                tuples: 10,
                result_payload_bytes: 300,
                units: 8,
                probe_units: 3,
                sweep_units: 2,
                pages_moved: 6,
                bytes_moved: 6096,
                elapsed_secs: 0.4,
                failed: false,
            },
            QueryRow {
                index: 1,
                tuples: 20,
                result_payload_bytes: 600,
                units: 5,
                probe_units: 0,
                sweep_units: 0,
                pages_moved: 4,
                bytes_moved: 4064,
                elapsed_secs: 0.9,
                failed: false,
            },
        ];
        a.series = vec![SeriesRow {
            path: "distribution".to_string(),
            interval_secs: 0.001,
            mbps: vec![4.0, 0.0, 8.0],
        }];
        a.sweep = vec![SweepRow {
            label: "ips=8".to_string(),
            values: vec![("mbps".to_string(), 12.5)],
        }];
        a
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let a = sample();
        let back = BenchArtifact::from_json(&a.to_json()).expect("parses");
        // params/counters come back BTreeMap-sorted; compare as sets.
        let sorted = |mut art: BenchArtifact| {
            art.params.sort();
            art.counters.sort_by(|x, y| x.0.cmp(&y.0));
            art
        };
        assert_eq!(sorted(back), sorted(a));
    }

    #[test]
    fn sound_artifact_passes_check() {
        assert_eq!(sample().check(), Vec::<String>::new());
    }

    #[test]
    fn check_catches_invariant_violations() {
        let mut a = sample();
        a.per_query[0].probe_units = 100; // probe + sweep > units
        a.counters[1].1 = 31.0; // result_tuples != per-query sum
        let problems = a.check();
        assert!(
            problems.iter().any(|p| p.contains("probe_units")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("result_tuples")),
            "{problems:?}"
        );
    }

    #[test]
    fn faults_skip_conservation_checks() {
        let mut a = sample();
        a.counters[1].1 = 31.0;
        a.faults_active = true;
        assert_eq!(a.check(), Vec::<String>::new());
    }

    #[test]
    fn self_comparison_passes() {
        let a = sample();
        assert_eq!(
            BenchArtifact::compare(&a, &a, &CompareOptions::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn synthetic_fifty_percent_regression_fails() {
        let base = sample();
        let mut cand = sample();
        cand.elapsed_secs = base.elapsed_secs * 1.5;
        let failures = BenchArtifact::compare(&base, &cand, &CompareOptions::default());
        assert!(
            failures.iter().any(|f| f.contains("throughput regression")),
            "{failures:?}"
        );
        // ...but counters-only mode tolerates any timing.
        let opts = CompareOptions {
            counters_only: true,
            ..CompareOptions::default()
        };
        assert_eq!(
            BenchArtifact::compare(&base, &cand, &opts),
            Vec::<String>::new()
        );
    }

    #[test]
    fn counter_drift_fails_comparison() {
        let base = sample();
        let mut cand = sample();
        cand.per_query[1].tuples = 21;
        cand.counters[1].1 = 31.0;
        let failures = BenchArtifact::compare(&base, &cand, &CompareOptions::default());
        assert!(
            failures.iter().any(|f| f.contains("query 1: tuples")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("result_tuples")),
            "{failures:?}"
        );
    }

    #[test]
    fn schema_mismatch_is_terminal() {
        let base = sample();
        let mut cand = sample();
        cand.schema_version = 99;
        let failures = BenchArtifact::compare(&base, &cand, &CompareOptions::default());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("schema_version"));
        assert!(!cand.check().is_empty());
    }

    #[test]
    fn v1_baseline_still_checks_and_gates_a_v2_candidate() {
        let mut base = sample();
        base.schema_version = MIN_SCHEMA_VERSION;
        assert_eq!(base.check(), Vec::<String>::new(), "v1 stays valid");
        let cand = sample();
        assert_eq!(cand.schema_version, SCHEMA_VERSION);
        assert_eq!(
            BenchArtifact::compare(&base, &cand, &CompareOptions::default()),
            Vec::<String>::new()
        );
        // Deterministic-counter drift is still caught across versions.
        let mut drifted = cand;
        drifted.counters[1].1 = 31.0;
        assert!(!BenchArtifact::compare(&base, &drifted, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn serve_sweep_conservation_identity_is_enforced() {
        let mut a = BenchArtifact::new("serve_x", "serve");
        a.elapsed_secs = 1.0;
        a.sweep = vec![SweepRow {
            label: "clients=8".to_string(),
            values: vec![
                ("reads".to_string(), 100.0),
                ("read_execs".to_string(), 40.0),
                ("fused".to_string(), 50.0),
                ("inflight_joins".to_string(), 10.0),
            ],
        }];
        assert_eq!(a.check(), Vec::<String>::new());
        a.sweep[0].values[3].1 = 9.0; // 40 + 50 + 9 != 100
        let problems = a.check();
        assert!(
            problems.iter().any(|p| p.contains("inflight_joins")),
            "{problems:?}"
        );
        // A v1-shaped row (fields absent) is exempt from the identity.
        let mut v1 = BenchArtifact::new("serve_old", "serve");
        v1.schema_version = MIN_SCHEMA_VERSION;
        v1.elapsed_secs = 1.0;
        v1.sweep = vec![SweepRow {
            label: "clients=8".to_string(),
            values: vec![("qps".to_string(), 185.0)],
        }];
        assert_eq!(v1.check(), Vec::<String>::new());
    }

    #[test]
    fn serve_write_path_identities_are_enforced() {
        let mut a = BenchArtifact::new("serve_w", "serve");
        a.elapsed_secs = 1.0;
        a.sweep = vec![SweepRow {
            label: "mode=closed".to_string(),
            values: vec![
                ("parses".to_string(), 12.0),
                ("plan_cache_misses".to_string(), 12.0),
                ("cache_evictions_partial".to_string(), 4.0),
                ("writes_applied".to_string(), 3.0),
            ],
        }];
        assert_eq!(a.check(), Vec::<String>::new());

        // Relation-scoped invalidation must never force a redundant
        // parse: parses != plan_cache_misses is a bug.
        a.sweep[0].values[0].1 = 13.0;
        let problems = a.check();
        assert!(
            problems.iter().any(|p| p.contains("plan_cache_misses")),
            "{problems:?}"
        );
        a.sweep[0].values[0].1 = 12.0;

        // Only writes evict: evictions without writes is a bug.
        a.sweep[0].values[3].1 = 0.0;
        let problems = a.check();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("partial cache evictions")),
            "{problems:?}"
        );
        a.sweep[0].values[2].1 = 0.0;
        assert_eq!(a.check(), Vec::<String>::new());

        // Rows without the v3 fields (older baselines) stay exempt.
        let mut v2 = BenchArtifact::new("serve_v2", "serve");
        v2.schema_version = 2;
        v2.elapsed_secs = 1.0;
        v2.sweep = vec![SweepRow {
            label: "mode=closed".to_string(),
            values: vec![
                ("reads".to_string(), 10.0),
                ("read_execs".to_string(), 10.0),
                ("fused".to_string(), 0.0),
                ("inflight_joins".to_string(), 0.0),
            ],
        }];
        assert_eq!(v2.check(), Vec::<String>::new());
    }

    #[test]
    fn view_quiescence_identities_are_enforced() {
        let mut a = BenchArtifact::new("serve_ivm", "serve");
        a.elapsed_secs = 1.0;
        a.sweep = vec![SweepRow {
            label: "mix=view-read".to_string(),
            values: vec![
                ("views_installed".to_string(), 2.0),
                ("delta_pages".to_string(), 40.0),
                ("view_reads_served".to_string(), 16.0),
            ],
        }];
        assert_eq!(a.check(), Vec::<String>::new());

        // With zero views installed, neither maintenance nor view reads
        // may have happened.
        a.sweep[0].values[0].1 = 0.0;
        let problems = a.check();
        assert!(
            problems.iter().any(|p| p.contains("delta pages")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("view reads served")),
            "{problems:?}"
        );
        a.sweep[0].values[1].1 = 0.0;
        a.sweep[0].values[2].1 = 0.0;
        assert_eq!(a.check(), Vec::<String>::new());

        // Rows without the v4 fields (older baselines) stay exempt.
        let mut v3 = BenchArtifact::new("serve_v3", "serve");
        v3.schema_version = 3;
        v3.elapsed_secs = 1.0;
        v3.sweep = vec![SweepRow {
            label: "mode=closed".to_string(),
            values: vec![
                ("parses".to_string(), 12.0),
                ("plan_cache_misses".to_string(), 12.0),
            ],
        }];
        assert_eq!(v3.check(), Vec::<String>::new());
    }
}

//! Ring-buffered structured event tracing.
//!
//! Every event is a fixed-size record — no allocation on the hot path —
//! and the buffer is a ring: when full, the oldest events are overwritten
//! and counted in [`TraceSnapshot::dropped`], so a tracer never grows
//! without bound under a pathological workload.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::JsonValue;

/// What happened. The numeric discriminants are stable — they appear in
/// `--trace-out` JSON and must not be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A firing rule created work units at an instruction cell
    /// (`a` = units now pending at the cell, `b` = units this arrival
    /// created).
    CellFire = 0,
    /// A unit crossed the distribution network to a processor
    /// (`a` = dispatch sequence number, `b` = worker/IP id).
    UnitDispatch = 1,
    /// A kernel started executing (`a` = dispatch sequence number).
    KernelStart = 2,
    /// A kernel finished (`a` = unit class: 0 other, 1 probe, 2 sweep;
    /// `b` = busy nanoseconds — the span's duration).
    KernelEnd = 3,
    /// Bytes crossed a named path (`a` = [`Path`] discriminant,
    /// `b` = bytes).
    PageTransfer = 4,
    /// Scheduler queue depth sampled at a dispatch decision
    /// (`a` = pending units across all cells, `b` = idle processors).
    QueueDepth = 5,
    /// A fault was observed (`a` = 0 contained kernel panic,
    /// 1 worker death, 2 unit requeued).
    Fault = 6,
    /// A query was admitted under the lock manager.
    QueryAdmit = 7,
    /// A query concluded (`a` = 0 ok, 1 failed).
    QueryDone = 8,
}

impl EventKind {
    /// Stable lower-case name (the `--trace-out` JSON `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CellFire => "cell_fire",
            EventKind::UnitDispatch => "unit_dispatch",
            EventKind::KernelStart => "kernel_start",
            EventKind::KernelEnd => "kernel_end",
            EventKind::PageTransfer => "page_transfer",
            EventKind::QueueDepth => "queue_depth",
            EventKind::Fault => "fault",
            EventKind::QueryAdmit => "query_admit",
            EventKind::QueryDone => "query_done",
        }
    }
}

/// A byte-carrying path through one of the machines. Each path has its own
/// atomic byte/transfer counters on the tracer, cheap enough to keep exact
/// totals even when the event ring has wrapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Path {
    /// Scheduler → processor operand bytes (the distribution network).
    Distribution = 0,
    /// Processor → scheduler result bytes (the arbitration network).
    Arbitration = 1,
    /// Tuple payload bytes delivered to a query's result set.
    QueryResult = 2,
    /// Inner (control) ring traffic.
    InnerRing = 3,
    /// Outer (data) ring traffic.
    OuterRing = 4,
    /// Bytes into the disk cache.
    CacheIn = 5,
    /// Bytes out of the disk cache.
    CacheOut = 6,
    /// Bytes read from mass storage.
    DiskRead = 7,
    /// Bytes written to mass storage.
    DiskWrite = 8,
    /// Request bytes arriving from serve clients (the df-serve
    /// front-end; the `query` field of the transfer event carries the
    /// client id, so per-client traffic is recoverable from the trace).
    ClientIn = 9,
    /// Response bytes sent back to serve clients.
    ClientOut = 10,
}

/// Number of distinct [`Path`]s.
pub(crate) const PATHS: usize = 11;

impl Path {
    /// Every path, in discriminant order.
    pub const ALL: [Path; PATHS] = [
        Path::Distribution,
        Path::Arbitration,
        Path::QueryResult,
        Path::InnerRing,
        Path::OuterRing,
        Path::CacheIn,
        Path::CacheOut,
        Path::DiskRead,
        Path::DiskWrite,
        Path::ClientIn,
        Path::ClientOut,
    ];

    /// Stable snake-case name (the artifact/JSON `path` field).
    pub fn name(self) -> &'static str {
        match self {
            Path::Distribution => "distribution",
            Path::Arbitration => "arbitration",
            Path::QueryResult => "query_result",
            Path::InnerRing => "inner_ring",
            Path::OuterRing => "outer_ring",
            Path::CacheIn => "cache_in",
            Path::CacheOut => "cache_out",
            Path::DiskRead => "disk_read",
            Path::DiskWrite => "disk_write",
            Path::ClientIn => "client_in",
            Path::ClientOut => "client_out",
        }
    }
}

/// One fixed-size trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's epoch (wall time on the host
    /// executor, simulated time on the simulators).
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Owning query index (`u32::MAX` when not query-scoped).
    pub query: u32,
    /// Instruction-cell index within the query (`u32::MAX` when not
    /// cell-scoped).
    pub cell: u32,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u64,
}

/// Query/cell value for events that are not scoped to one.
pub(crate) const NO_ID: u32 = u32::MAX;

/// Immutable copy of a tracer's state at one instant.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Buffered events, oldest first. At most the tracer's capacity; the
    /// overwritten remainder is counted in `dropped`.
    pub events: Vec<TraceEvent>,
    /// Events overwritten by ring wrap-around since creation.
    pub dropped: u64,
    /// Per-path `(bytes, transfers)` totals, indexed by [`Path`]
    /// discriminant. Exact even when the event ring has wrapped.
    pub paths: [(u64, u64); PATHS],
}

impl TraceSnapshot {
    /// Total bytes recorded on `path`.
    pub fn bytes(&self, path: Path) -> u64 {
        self.paths[path as usize].0
    }

    /// Total transfers recorded on `path`.
    pub fn transfers(&self, path: Path) -> u64 {
        self.paths[path as usize].1
    }

    /// Events of one kind, in arrival order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Serialize to the `--trace-out` JSON document: exact per-path totals
    /// plus every buffered event, oldest first. `query`/`cell` values of
    /// `u32::MAX` mean "not scoped" and are rendered as `null`.
    pub fn to_json(&self) -> String {
        let id = |v: u32| {
            if v == NO_ID {
                JsonValue::Null
            } else {
                JsonValue::from(u64::from(v))
            }
        };
        let mut doc = JsonValue::obj();
        doc.set("dropped", self.dropped);
        let mut paths = JsonValue::obj();
        for p in Path::ALL {
            let mut row = JsonValue::obj();
            row.set("bytes", self.bytes(p))
                .set("transfers", self.transfers(p));
            paths.set(p.name(), row);
        }
        doc.set("paths", paths);
        doc.set(
            "events",
            JsonValue::Arr(
                self.events
                    .iter()
                    .map(|e| {
                        let mut row = JsonValue::obj();
                        row.set("t_ns", e.t_ns)
                            .set("kind", e.kind.name())
                            .set("query", id(e.query))
                            .set("cell", id(e.cell))
                            .set("a", e.a)
                            .set("b", e.b);
                        row
                    })
                    .collect(),
            ),
        );
        doc.to_pretty()
    }
}

/// The bounded event ring.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position.
    head: usize,
    /// Events overwritten.
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.capacity {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        (out, self.dropped)
    }
}

/// A shareable, thread-safe event tracer.
///
/// Executors take an `Option<Arc<Tracer>>`; `None` (the default) costs one
/// branch per would-be record. An installed tracer can additionally be
/// switched off at runtime with [`Tracer::set_enabled`], which reduces
/// every record to a single relaxed atomic load — the "near-zero-cost when
/// disabled" contract, measured in `EXPERIMENTS.md` (PERF-OBS).
///
/// Timestamps: [`Tracer::record`] stamps wall time since construction (the
/// host executor's clock); the simulators stamp their own virtual time via
/// [`Tracer::record_at`].
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    ring: Mutex<Ring>,
    path_bytes: [AtomicU64; PATHS],
    path_transfers: [AtomicU64; PATHS],
}

impl Tracer {
    /// A tracer buffering at most `capacity` events (≥ 1), enabled.
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                capacity,
                head: 0,
                dropped: 0,
            }),
            path_bytes: Default::default(),
            path_transfers: Default::default(),
        }
    }

    /// The default ring capacity of the bench binaries (64 Ki events).
    pub const DEFAULT_CAPACITY: usize = 64 * 1024;

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. Off, every record path is one relaxed
    /// atomic load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this tracer's construction (the wall-clock
    /// timestamp base used by [`Tracer::record`]).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record an event stamped with wall time since construction.
    #[inline]
    pub fn record(&self, kind: EventKind, query: u32, cell: u32, a: u64, b: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(self.now_ns(), kind, query, cell, a, b);
    }

    /// Record an event with an explicit timestamp (simulated time).
    #[inline]
    pub fn record_at(&self, t_ns: u64, kind: EventKind, query: u32, cell: u32, a: u64, b: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(t_ns, kind, query, cell, a, b);
    }

    /// Record an event not scoped to a query or cell.
    #[inline]
    pub fn record_global(&self, kind: EventKind, a: u64, b: u64) {
        self.record(kind, NO_ID, NO_ID, a, b);
    }

    /// Count `bytes` on `path` and log a [`EventKind::PageTransfer`] event,
    /// stamped with wall time.
    #[inline]
    pub fn transfer(&self, path: Path, query: u32, bytes: u64) {
        if !self.is_enabled() {
            return;
        }
        self.transfer_at(self.now_ns(), path, query, bytes);
    }

    /// [`Tracer::transfer`] with an explicit (simulated) timestamp.
    #[inline]
    pub fn transfer_at(&self, t_ns: u64, path: Path, query: u32, bytes: u64) {
        if !self.is_enabled() {
            return;
        }
        self.path_bytes[path as usize].fetch_add(bytes, Ordering::Relaxed);
        self.path_transfers[path as usize].fetch_add(1, Ordering::Relaxed);
        self.push(
            t_ns,
            EventKind::PageTransfer,
            query,
            NO_ID,
            path as u64,
            bytes,
        );
    }

    /// Open a kernel-execution span: records [`EventKind::KernelStart`]
    /// now; [`Span::end`] records the matching [`EventKind::KernelEnd`]
    /// with the span's duration. Wall-clock only (the host executor).
    pub fn span(&self, query: u32, cell: u32, seq: u64) -> Span {
        self.record(EventKind::KernelStart, query, cell, seq, 0);
        Span {
            query,
            cell,
            started_ns: self.now_ns(),
        }
    }

    /// Copy out the buffered events and exact path totals.
    pub fn snapshot(&self) -> TraceSnapshot {
        let (events, dropped) = self.ring.lock().expect("tracer lock").snapshot();
        let mut paths = [(0u64, 0u64); PATHS];
        for (i, slot) in paths.iter_mut().enumerate() {
            *slot = (
                self.path_bytes[i].load(Ordering::Relaxed),
                self.path_transfers[i].load(Ordering::Relaxed),
            );
        }
        TraceSnapshot {
            events,
            dropped,
            paths,
        }
    }

    fn push(&self, t_ns: u64, kind: EventKind, query: u32, cell: u32, a: u64, b: u64) {
        self.ring.lock().expect("tracer lock").push(TraceEvent {
            t_ns,
            kind,
            query,
            cell,
            a,
            b,
        });
    }
}

/// An open kernel-execution span (see [`Tracer::span`]).
#[derive(Debug)]
#[must_use = "call end() to record the KernelEnd event"]
pub struct Span {
    query: u32,
    cell: u32,
    started_ns: u64,
}

impl Span {
    /// Close the span: records [`EventKind::KernelEnd`] with `class` (0
    /// other, 1 probe, 2 sweep) and the elapsed nanoseconds.
    pub fn end(self, tracer: &Tracer, class: u64) {
        let dur = tracer.now_ns().saturating_sub(self.started_ns);
        self.end_with(tracer, class, dur);
    }

    /// Close the span with an explicit duration (when the caller timed the
    /// kernel itself, e.g. with the worker's existing busy clock).
    pub fn end_with(self, tracer: &Tracer, class: u64, duration_ns: u64) {
        tracer.record(
            EventKind::KernelEnd,
            self.query,
            self.cell,
            class,
            duration_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let t = Tracer::new(16);
        t.record(EventKind::CellFire, 1, 2, 3, 4);
        t.record(EventKind::UnitDispatch, 1, 2, 5, 0);
        let s = t.snapshot();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].kind, EventKind::CellFire);
        assert_eq!(s.events[1].a, 5);
        assert_eq!(s.dropped, 0);
        assert!(s.events[0].t_ns <= s.events[1].t_ns);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = Tracer::new(4);
        for i in 0..10u64 {
            t.record_at(i, EventKind::CellFire, 0, 0, i, 0);
        }
        let s = t.snapshot();
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.dropped, 6);
        // Oldest-first: the surviving events are 6, 7, 8, 9.
        let kept: Vec<u64> = s.events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::new(16);
        t.set_enabled(false);
        t.record(EventKind::CellFire, 0, 0, 0, 0);
        t.transfer(Path::Arbitration, 0, 1000);
        let s = t.snapshot();
        assert!(s.events.is_empty());
        assert_eq!(s.bytes(Path::Arbitration), 0);
        t.set_enabled(true);
        t.record(EventKind::CellFire, 0, 0, 0, 0);
        assert_eq!(t.snapshot().events.len(), 1);
    }

    #[test]
    fn path_counters_survive_ring_wrap() {
        let t = Tracer::new(2);
        for _ in 0..100 {
            t.transfer(Path::Distribution, 0, 10);
        }
        let s = t.snapshot();
        assert_eq!(s.bytes(Path::Distribution), 1000);
        assert_eq!(s.transfers(Path::Distribution), 100);
        assert_eq!(s.events.len(), 2, "ring stays bounded");
    }

    #[test]
    fn span_records_start_and_end() {
        let t = Tracer::new(16);
        let span = t.span(3, 1, 42);
        span.end_with(&t, 1, 777);
        let s = t.snapshot();
        assert_eq!(s.of_kind(EventKind::KernelStart).count(), 1);
        let end = s.of_kind(EventKind::KernelEnd).next().expect("end event");
        assert_eq!(end.a, 1);
        assert_eq!(end.b, 777);
        assert_eq!(end.query, 3);
    }

    #[test]
    fn shared_across_threads() {
        let t = std::sync::Arc::new(Tracer::new(1024));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        t.record(EventKind::UnitDispatch, 0, 0, i, w);
                        t.transfer(Path::Arbitration, 0, 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        let s = t.snapshot();
        assert_eq!(s.of_kind(EventKind::UnitDispatch).count(), 200);
        assert_eq!(s.bytes(Path::Arbitration), 1600);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let t = Tracer::new(16);
        t.record(EventKind::CellFire, 1, 2, 3, 4);
        t.record_global(EventKind::QueueDepth, 5, 6);
        t.transfer(Path::OuterRing, 0, 128);
        let text = t.snapshot().to_json();
        let doc = JsonValue::parse(&text).expect("valid JSON");
        let events = doc
            .get("events")
            .and_then(JsonValue::as_arr)
            .expect("events");
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("kind").and_then(JsonValue::as_str),
            Some("cell_fire")
        );
        // Global events render query/cell as null.
        assert_eq!(events[1].get("query"), Some(&JsonValue::Null));
        let outer = doc
            .get("paths")
            .and_then(|p| p.get("outer_ring"))
            .and_then(|p| p.get("bytes"))
            .and_then(JsonValue::as_u64);
        assert_eq!(outer, Some(128));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::PageTransfer.name(), "page_transfer");
        assert_eq!(Path::OuterRing.name(), "outer_ring");
        assert_eq!(Path::ALL.len(), PATHS);
        for (i, p) in Path::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "discriminants are dense and ordered");
        }
    }
}

//! # df-obs — the observability layer
//!
//! The paper's quantitative claims are *observational*: Figure 3.1's
//! page-vs-relation 2× comes from measured execution times, Figure 4.2's
//! bandwidth-demand curves from counted bytes. This crate is the shared
//! instrumentation those measurements flow through, for the simulated
//! machines (`df-core`, `df-ring`) and the real-threads executor
//! (`df-host`) alike:
//!
//! * [`Tracer`] — a ring-buffered structured event log with spans and
//!   per-path byte counters, covering the packet-level lifecycle of
//!   Figures 4.3–4.5 (cell fire, unit dispatch, kernel execution, page
//!   transfers, queue depths, faults). Near-zero-cost when disabled: the
//!   executors hold an `Option<Arc<Tracer>>` that is `None` by default,
//!   and even an installed tracer guards every record behind one relaxed
//!   atomic load.
//! * [`IntervalSeries`] — per-interval byte accounting that turns traced
//!   transfer bytes into bandwidth-demand *curves* (Figure 4.2's shape,
//!   not just its average). Self-scaling: buckets coalesce as the horizon
//!   grows, so no run length needs to be known up front.
//! * [`BenchArtifact`] — the schema-versioned `BENCH_<name>.json` format
//!   the bench binaries emit and `bench_check` consumes, with built-in
//!   metric invariants (e.g. `probe_units + sweep_units == pair_units`)
//!   and baseline comparison (throughput-regression thresholds on timing,
//!   exact equality on deterministic counters).
//! * [`JsonValue`] — the minimal JSON writer/parser behind the artifacts.
//!   The build environment is offline (see `shims/README.md`), so the
//!   crate serializes by hand instead of depending on `serde`.
//!
//! ```
//! use df_obs::{EventKind, Path, Tracer};
//!
//! let tracer = Tracer::new(1024);
//! tracer.record(EventKind::UnitDispatch, 0, 3, 7, 0);
//! tracer.transfer(Path::Distribution, 0, 4096);
//! let snap = tracer.snapshot();
//! assert_eq!(snap.events.len(), 2);
//! assert_eq!(snap.bytes(Path::Distribution), 4096);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod artifact;
mod event;
mod json;
mod series;

pub use artifact::{
    BenchArtifact, CompareOptions, QueryRow, SeriesRow, SweepRow, EXACT_COUNTERS,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use event::{EventKind, Path, Span, TraceEvent, TraceSnapshot, Tracer};
pub use json::JsonValue;
pub use series::IntervalSeries;

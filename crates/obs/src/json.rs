//! A minimal JSON tree: enough to write and read the `BENCH_*.json`
//! artifacts and `--trace-out` dumps. The build environment is offline
//! (no crates registry — see `shims/README.md`), so this is hand-rolled
//! rather than a `serde` dependency.
//!
//! Numbers are `f64` throughout; every counter the artifacts carry is far
//! below 2^53, where `f64` is exact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Sorted keys (a `BTreeMap`) make serialization
    /// deterministic, so identical runs produce byte-identical artifacts.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// An empty object.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(BTreeMap::new())
    }

    /// Insert `key` into an object (panics on non-objects — construction
    /// bugs, not data errors).
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut JsonValue {
        match self {
            JsonValue::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a u64 (rejects negatives and non-integers beyond
    /// rounding noise).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation — the artifact format (diffs
    /// of committed baselines stay readable).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    /// Returns a position-annotated message on malformed input (including
    /// trailing garbage after the document).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}
impl From<f64> for JsonValue {
    fn from(n: f64) -> JsonValue {
        JsonValue::Num(n)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> JsonValue {
        JsonValue::Arr(v)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed by our own output;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let mut doc = JsonValue::obj();
        doc.set("name", "host_smoke")
            .set("version", 1u64)
            .set("ok", true)
            .set("ratio", 2.5)
            .set("none", JsonValue::Null)
            .set(
                "rows",
                JsonValue::Arr(vec![1u64.into(), 2u64.into(), 3u64.into()]),
            );
        for text in [doc.to_compact(), doc.to_pretty()] {
            let back = JsonValue::parse(&text).expect("parses");
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn deterministic_serialization() {
        let mut a = JsonValue::obj();
        a.set("b", 1u64).set("a", 2u64);
        let mut b = JsonValue::obj();
        b.set("a", 2u64).set("b", 1u64);
        assert_eq!(a.to_pretty(), b.to_pretty(), "key order is canonical");
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_compact();
        assert!(text.contains("\\\"") && text.contains("\\n") && text.contains("\\u0001"));
        assert_eq!(JsonValue::parse(&text).expect("parses"), v);
    }

    #[test]
    fn numbers_render_and_parse() {
        assert_eq!(JsonValue::Num(42.0).to_compact(), "42");
        assert_eq!(JsonValue::Num(-1.5).to_compact(), "-1.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_compact(), "null");
        let v = JsonValue::parse("1e3").expect("parses");
        assert_eq!(v.as_f64(), Some(1000.0));
        assert_eq!(v.as_u64(), Some(1000));
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1.5).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let doc = JsonValue::parse(r#"{"s":"x","n":3,"b":false,"a":[1]}"#).expect("parses");
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }
}

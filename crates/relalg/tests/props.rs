//! Property-based tests for the relational model's core invariants.

use df_relalg::{DataType, Page, Relation, Schema, Tuple, Value, PAGE_HEADER_BYTES};
use proptest::prelude::*;

/// Strategy: an arbitrary schema of 1..=6 attributes.
fn arb_schema() -> impl Strategy<Value = Schema> {
    prop::collection::vec(
        prop_oneof![
            Just(DataType::Int),
            Just(DataType::Bool),
            (1u16..24).prop_map(DataType::Str),
        ],
        1..=6,
    )
    .prop_map(|types| {
        let mut b = Schema::build();
        for (i, t) in types.into_iter().enumerate() {
            b = b.attr(&format!("a{i}"), t);
        }
        b.finish().expect("generated names are unique")
    })
}

/// Strategy: a value inhabiting `dtype`.
fn arb_value(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int => any::<i64>().prop_map(Value::Int).boxed(),
        DataType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        DataType::Str(n) => prop::collection::vec(prop::char::range('a', 'z'), 0..=n as usize)
            .prop_map(|cs| Value::Str(cs.into_iter().collect()))
            .boxed(),
    }
}

/// Strategy: a (schema, tuples) pair where every tuple conforms.
fn arb_schema_and_tuples(max_tuples: usize) -> impl Strategy<Value = (Schema, Vec<Tuple>)> {
    arb_schema().prop_flat_map(move |schema| {
        let tuple_strat = schema
            .attrs()
            .iter()
            .map(|a| arb_value(a.dtype))
            .collect::<Vec<_>>()
            .prop_map(Tuple::new);
        (
            Just(schema),
            prop::collection::vec(tuple_strat, 0..=max_tuples),
        )
    })
}

proptest! {
    /// encode ∘ decode = identity for conforming tuples.
    #[test]
    fn tuple_encode_decode_round_trip((schema, tuples) in arb_schema_and_tuples(16)) {
        for t in &tuples {
            let mut buf = Vec::new();
            t.encode(&schema, &mut buf).unwrap();
            prop_assert_eq!(buf.len(), schema.tuple_width());
            let back = Tuple::decode(&schema, &buf).unwrap();
            prop_assert_eq!(&back, t);
        }
    }

    /// A page never exceeds its configured byte size and never loses tuples.
    #[test]
    fn page_respects_size_and_preserves_tuples((schema, tuples) in arb_schema_and_tuples(32)) {
        let page_size = PAGE_HEADER_BYTES + schema.tuple_width() * 4;
        let mut pages = vec![Page::new(schema.clone(), page_size).unwrap()];
        for t in &tuples {
            if pages.last().unwrap().is_full() {
                pages.push(Page::new(schema.clone(), page_size).unwrap());
            }
            pages.last_mut().unwrap().push(t).unwrap();
        }
        let mut seen = Vec::new();
        for p in &pages {
            prop_assert!(p.wire_bytes() <= page_size);
            prop_assert!(p.len() <= p.capacity());
            seen.extend(p.tuples());
        }
        prop_assert_eq!(seen, tuples);
    }

    /// Relation::append distributes tuples over pages without loss or
    /// reordering, for any page size that can hold at least one tuple.
    #[test]
    fn relation_append_preserves_order(
        (schema, tuples) in arb_schema_and_tuples(64),
        extra_slots in 0usize..8,
    ) {
        let page_size = PAGE_HEADER_BYTES + schema.tuple_width() * (1 + extra_slots);
        let r = Relation::from_tuples("t", schema.clone(), page_size, tuples.clone()).unwrap();
        prop_assert_eq!(r.num_tuples(), tuples.len());
        let back: Vec<Tuple> = r.tuples().collect();
        prop_assert_eq!(back, tuples);
        // All pages except possibly the last are full.
        if let Some((last, rest)) = r.pages().split_last() {
            for p in rest {
                prop_assert!(p.is_full());
            }
            prop_assert!(!last.is_empty());
        }
    }

    /// Compaction preserves multiset contents and leaves at most one
    /// non-full page.
    #[test]
    fn compaction_invariants((schema, tuples) in arb_schema_and_tuples(48)) {
        let page_size = PAGE_HEADER_BYTES + schema.tuple_width() * 5;
        // Build a deliberately fragmented relation: one tuple per page.
        let mut r = Relation::new("frag", schema.clone(), page_size).unwrap();
        for t in &tuples {
            let mut p = Page::new(schema.clone(), page_size).unwrap();
            p.push(t).unwrap();
            r.append_page(p).unwrap();
        }
        let reference = r.clone();
        r.compact();
        prop_assert!(r.same_contents(&reference));
        let non_full = r.pages().iter().filter(|p| !p.is_full()).count();
        prop_assert!(non_full <= 1);
        prop_assert!(r.pages().iter().all(|p| !p.is_empty()));
    }

    /// same_contents is insensitive to tuple order (it is multiset equality).
    #[test]
    fn same_contents_is_order_insensitive((schema, mut tuples) in arb_schema_and_tuples(24)) {
        let a = Relation::from_tuples("a", schema.clone(), PAGE_HEADER_BYTES + schema.tuple_width() * 3, tuples.clone()).unwrap();
        tuples.reverse();
        let b = Relation::from_tuples("b", schema.clone(), PAGE_HEADER_BYTES + schema.tuple_width() * 7, tuples).unwrap();
        prop_assert!(a.same_contents(&b));
    }

    /// Schema::concat always yields unique names and the summed width.
    #[test]
    fn concat_width_and_uniqueness(left in arb_schema(), right in arb_schema()) {
        let joined = left.concat(&right);
        prop_assert_eq!(joined.arity(), left.arity() + right.arity());
        prop_assert_eq!(joined.tuple_width(), left.tuple_width() + right.tuple_width());
        let mut names: Vec<_> = joined.attrs().iter().map(|a| a.name.clone()).collect();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), joined.arity());
    }
}

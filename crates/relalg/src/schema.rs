//! Schemas: ordered lists of named, typed attributes with fixed tuple width.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::DataType;

/// A single named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name (unique within its schema).
    pub name: String,
    /// Attribute type (fixed width).
    pub dtype: DataType,
}

/// An ordered attribute list. Cheap to clone (`Arc` inside): schemas are
/// shared by relations, pages in flight, and every instruction packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Arc<[Attribute]>,
    /// Cached fixed tuple width (sum of attribute widths).
    width: usize,
    /// Cached byte offset of each attribute within a tuple image.
    offsets: Arc<[usize]>,
}

impl Schema {
    /// Construct from an attribute list.
    ///
    /// # Errors
    /// Fails on empty attribute lists or duplicate names.
    pub fn new(attrs: Vec<Attribute>) -> Result<Schema> {
        if attrs.is_empty() {
            return Err(Error::EmptySchema);
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::DuplicateAttribute {
                    name: a.name.clone(),
                });
            }
        }
        let mut offsets = Vec::with_capacity(attrs.len());
        let mut width = 0usize;
        for a in &attrs {
            offsets.push(width);
            width += a.dtype.width();
        }
        Ok(Schema {
            attrs: attrs.into(),
            width,
            offsets: offsets.into(),
        })
    }

    /// Start a fluent builder.
    pub fn build() -> SchemaBuilder {
        SchemaBuilder { attrs: Vec::new() }
    }

    /// The attributes, in order.
    #[inline]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The fixed encoded tuple width in bytes.
    #[inline]
    pub fn tuple_width(&self) -> usize {
        self.width
    }

    /// Byte offset of each attribute within a tuple image, in order.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Byte range attribute `index` occupies within a tuple image.
    ///
    /// # Panics
    /// Panics on an out-of-bounds index: this is the hot-path accessor used
    /// by kernels whose predicates/projections were already validated against
    /// the schema.
    #[inline]
    pub fn attr_range(&self, index: usize) -> std::ops::Range<usize> {
        let start = self.offsets[index];
        start..start + self.attrs[index].dtype.width()
    }

    /// Whether two schemas produce byte-identical tuple images (same ordered
    /// attribute types; names may differ). The common case — both handles
    /// cloned from one schema — is a pointer comparison.
    #[inline]
    pub fn layout_eq(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.attrs, &other.attrs)
            || (self.width == other.width
                && self.attrs.len() == other.attrs.len()
                && self
                    .attrs
                    .iter()
                    .zip(other.attrs.iter())
                    .all(|(a, b)| a.dtype == b.dtype))
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| Error::UnknownAttribute { name: name.into() })
    }

    /// The attribute at `index`.
    pub fn attr(&self, index: usize) -> Result<&Attribute> {
        self.attrs.get(index).ok_or(Error::AttrIndexOutOfBounds {
            index,
            arity: self.attrs.len(),
        })
    }

    /// Concatenate two schemas (the output schema of a join / cross product).
    ///
    /// Name collisions are resolved by prefixing the colliding right-side
    /// attribute with `r_` (repeatedly if needed) — join outputs must have
    /// unique attribute names so they can feed further operators.
    pub fn concat(&self, right: &Schema) -> Schema {
        let mut attrs: Vec<Attribute> = self.attrs.to_vec();
        for a in right.attrs.iter() {
            let mut name = a.name.clone();
            while attrs.iter().any(|b| b.name == name) {
                name = format!("r_{name}");
            }
            attrs.push(Attribute {
                name,
                dtype: a.dtype,
            });
        }
        Schema::new(attrs).expect("concat of two valid schemas is valid")
    }

    /// The sub-schema selecting `indices`, in order (output of a projection).
    ///
    /// # Errors
    /// Fails if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Result<Schema> {
        let attrs = indices
            .iter()
            .map(|&i| self.attr(i).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.dtype)?;
        }
        write!(f, ")")
    }
}

/// Fluent schema construction: `Schema::build().attr(...).finish()`.
#[derive(Debug)]
pub struct SchemaBuilder {
    attrs: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Append an attribute.
    pub fn attr(mut self, name: &str, dtype: DataType) -> SchemaBuilder {
        self.attrs.push(Attribute {
            name: name.to_owned(),
            dtype,
        });
        self
    }

    /// Validate and build the schema.
    pub fn finish(self) -> Result<Schema> {
        Schema::new(self.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col() -> Schema {
        Schema::build()
            .attr("id", DataType::Int)
            .attr("name", DataType::Str(10))
            .finish()
            .unwrap()
    }

    #[test]
    fn width_and_arity() {
        let s = two_col();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.tuple_width(), 18);
    }

    #[test]
    fn index_lookup() {
        let s = two_col();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(matches!(
            s.index_of("nope"),
            Err(Error::UnknownAttribute { .. })
        ));
        assert_eq!(s.attr(0).unwrap().name, "id");
        assert!(s.attr(9).is_err());
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(matches!(Schema::new(vec![]), Err(Error::EmptySchema)));
        let r = Schema::build()
            .attr("x", DataType::Int)
            .attr("x", DataType::Bool)
            .finish();
        assert!(matches!(r, Err(Error::DuplicateAttribute { .. })));
    }

    #[test]
    fn concat_renames_collisions() {
        let s = two_col();
        let joined = s.concat(&s);
        let names: Vec<_> = joined.attrs().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["id", "name", "r_id", "r_name"]);
        assert_eq!(joined.tuple_width(), 36);
        // Triple collision keeps prefixing.
        let triple = joined.concat(&s);
        assert!(triple.attrs().iter().any(|a| a.name == "r_r_id"));
    }

    #[test]
    fn select_projects_schema() {
        let s = two_col();
        let p = s.select(&[1]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.attrs()[0].name, "name");
        assert!(s.select(&[5]).is_err());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", two_col()), "(id: int, name: str(10))");
    }

    #[test]
    fn offsets_are_cumulative_widths() {
        let s = Schema::build()
            .attr("i", DataType::Int)
            .attr("b", DataType::Bool)
            .attr("s", DataType::Str(5))
            .finish()
            .unwrap();
        assert_eq!(s.offsets(), &[0, 8, 9]);
        assert_eq!(s.attr_range(0), 0..8);
        assert_eq!(s.attr_range(1), 8..9);
        assert_eq!(s.attr_range(2), 9..14);
        assert_eq!(s.tuple_width(), 14);
    }

    #[test]
    fn layout_eq_ignores_names() {
        let a = two_col();
        let b = a.clone(); // shared Arc -> pointer fast path
        assert!(a.layout_eq(&b));
        let renamed = Schema::build()
            .attr("x", DataType::Int)
            .attr("y", DataType::Str(10))
            .finish()
            .unwrap();
        assert!(a.layout_eq(&renamed));
        let other = Schema::build()
            .attr("x", DataType::Int)
            .attr("y", DataType::Str(11))
            .finish()
            .unwrap();
        assert!(!a.layout_eq(&other));
    }
}

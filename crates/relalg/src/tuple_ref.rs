//! Borrowed, zero-copy views over encoded tuple images.
//!
//! A [`TupleRef`] is the hot-path counterpart of [`Tuple`]: it points at one
//! fixed-width tuple image inside a page (or buffer) and decodes individual
//! attributes on demand. Operator kernels evaluate predicates, compare join
//! keys, and copy projected byte ranges directly over these views, so a
//! tuple that merely *passes through* an operator is never decoded and
//! re-encoded — its image is memcpy'd.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{trim_str_padding, DataType, Value};

/// A borrowed view over one encoded tuple image.
///
/// Construction checks the image length once; attribute access is offset
/// arithmetic via [`Schema::attr_range`].
#[derive(Debug, Clone, Copy)]
pub struct TupleRef<'a> {
    schema: &'a Schema,
    bytes: &'a [u8],
}

impl<'a> TupleRef<'a> {
    /// View `bytes` as one tuple of `schema`.
    ///
    /// # Errors
    /// Fails if `bytes` is not exactly [`Schema::tuple_width`] long.
    pub fn new(schema: &'a Schema, bytes: &'a [u8]) -> Result<TupleRef<'a>> {
        if bytes.len() != schema.tuple_width() {
            return Err(Error::Corrupt {
                detail: format!(
                    "tuple image of {} bytes for schema of width {}",
                    bytes.len(),
                    schema.tuple_width()
                ),
            });
        }
        Ok(TupleRef { schema, bytes })
    }

    /// View `bytes` as one tuple of `schema` without the length check —
    /// for iteration over page data already sliced into exact widths.
    #[inline]
    pub(crate) fn new_unchecked(schema: &'a Schema, bytes: &'a [u8]) -> TupleRef<'a> {
        debug_assert_eq!(bytes.len(), schema.tuple_width());
        TupleRef { schema, bytes }
    }

    /// The schema this image is encoded under.
    #[inline]
    pub fn schema(&self) -> &'a Schema {
        self.schema
    }

    /// The raw fixed-width image.
    #[inline]
    pub fn raw(&self) -> &'a [u8] {
        self.bytes
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The encoded bytes of attribute `index` (padding included for strings).
    ///
    /// # Panics
    /// Panics on an out-of-bounds index — kernels resolve and validate
    /// attribute indices against the schema before the hot loop.
    #[inline]
    pub fn attr_bytes(&self, index: usize) -> &'a [u8] {
        &self.bytes[self.schema.attr_range(index)]
    }

    /// The declared type of attribute `index` (panics on out-of-bounds).
    #[inline]
    pub fn attr_dtype(&self, index: usize) -> DataType {
        self.schema.attrs()[index].dtype
    }

    /// Decode the single value at attribute `index`.
    ///
    /// # Errors
    /// Fails on out-of-bounds indices or corrupt images.
    pub fn value(&self, index: usize) -> Result<Value> {
        let attr = self.schema.attr(index)?;
        let (v, _) = Value::decode(attr.dtype, &self.bytes[self.schema.attr_range(index)])?;
        Ok(v)
    }

    /// The NUL-trimmed content bytes of a string attribute (panics on
    /// out-of-bounds; full padded bytes for non-string attributes).
    #[inline]
    pub fn str_bytes(&self, index: usize) -> &'a [u8] {
        trim_str_padding(self.attr_bytes(index))
    }

    /// Fully decode into an owned [`Tuple`].
    ///
    /// # Panics
    /// Panics on corrupt images: pages only ever hold validly encoded
    /// tuples, so corruption here is a bug, not a runtime condition.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::decode(self.schema, self.bytes).expect("page data holds valid tuple images")
    }
}

/// An owned batch of encoded tuple images sharing one schema: what an
/// operator kernel emits and an IP's output buffer drains into pages.
///
/// Appends are memcpy's; draining into a [`crate::Page`] is a memcpy of as
/// many whole images as fit. A cursor (`start`) makes repeated front-drains
/// O(moved bytes) instead of O(remaining bytes).
#[derive(Debug, Clone)]
pub struct TupleBuf {
    schema: Schema,
    bytes: Vec<u8>,
    /// Byte offset of the first live image; everything before is drained.
    start: usize,
}

impl TupleBuf {
    /// An empty batch for tuples of `schema`.
    pub fn new(schema: Schema) -> TupleBuf {
        TupleBuf {
            schema,
            bytes: Vec::new(),
            start: 0,
        }
    }

    /// Wrap an already-built byte vector of whole images (length must be a
    /// multiple of the tuple width — debug-asserted). The bulk path for
    /// kernels that assemble their output bytes directly.
    pub fn from_images(schema: Schema, bytes: Vec<u8>) -> TupleBuf {
        debug_assert_eq!(bytes.len() % schema.tuple_width(), 0);
        TupleBuf {
            schema,
            bytes,
            start: 0,
        }
    }

    /// Append `bytes` holding zero or more whole images (length must be a
    /// multiple of the tuple width — debug-asserted). One memcpy: the bulk
    /// path for run-coalesced kernel copies.
    #[inline]
    pub fn push_images(&mut self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len() % self.schema.tuple_width(), 0);
        self.bytes.extend_from_slice(bytes);
    }

    /// The batch's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuple images.
    #[inline]
    pub fn len(&self) -> usize {
        (self.bytes.len() - self.start) / self.schema.tuple_width()
    }

    /// True if no live images remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.len() == self.start
    }

    /// Append one raw image (must be exactly one tuple width — debug
    /// asserted; callers copy images out of validated pages).
    #[inline]
    pub fn push_raw(&mut self, image: &[u8]) {
        debug_assert_eq!(image.len(), self.schema.tuple_width());
        self.bytes.extend_from_slice(image);
    }

    /// Append a borrowed tuple view (layout compatibility debug-asserted).
    #[inline]
    pub fn push_ref(&mut self, t: &TupleRef<'_>) {
        debug_assert!(self.schema.layout_eq(t.schema()));
        self.bytes.extend_from_slice(t.raw());
    }

    /// Append the concatenation of two images — the output row of a join or
    /// cross product, built without decoding either side.
    #[inline]
    pub fn push_concat(&mut self, left: &[u8], right: &[u8]) {
        debug_assert_eq!(left.len() + right.len(), self.schema.tuple_width());
        self.bytes.extend_from_slice(left);
        self.bytes.extend_from_slice(right);
    }

    /// Append the projection of a borrowed tuple: copies each selected
    /// attribute's byte range, in order, building the projected image
    /// without decoding any value. `indices` must select exactly this
    /// batch's schema (debug-asserted by total width).
    #[inline]
    pub fn push_projected(&mut self, t: &TupleRef<'_>, indices: &[usize]) {
        let before = self.bytes.len();
        for &i in indices {
            self.bytes.extend_from_slice(t.attr_bytes(i));
        }
        debug_assert_eq!(self.bytes.len() - before, self.schema.tuple_width());
    }

    /// Append every live image of another batch — one memcpy of its live
    /// region (layout compatibility debug-asserted).
    #[inline]
    pub fn append(&mut self, other: &TupleBuf) {
        debug_assert!(self.schema.layout_eq(&other.schema));
        self.bytes.extend_from_slice(&other.bytes[other.start..]);
    }

    /// Encode and append an owned tuple (the decoded-path compatibility
    /// route; validates via [`Tuple::encode_unchecked`]).
    ///
    /// # Errors
    /// Fails if the tuple does not conform to the batch schema.
    pub fn push_tuple(&mut self, t: &Tuple) -> Result<()> {
        t.encode_unchecked(&self.schema, &mut self.bytes)
    }

    /// Iterate over the live images as borrowed views.
    pub fn refs(&self) -> impl Iterator<Item = TupleRef<'_>> {
        let w = self.schema.tuple_width();
        self.bytes[self.start..]
            .chunks_exact(w)
            .map(move |c| TupleRef::new_unchecked(&self.schema, c))
    }

    /// Decode all live images (test/oracle comparison path).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.refs().map(|r| r.to_tuple()).collect()
    }

    /// Move as many leading images as fit into `page`, returning how many
    /// moved. A pure byte copy; the page's schema must be layout-compatible
    /// (debug-asserted — both sides come from one validated instruction).
    pub fn drain_into(&mut self, page: &mut crate::page::Page) -> usize {
        debug_assert!(self.schema.layout_eq(page.schema()));
        let w = self.schema.tuple_width();
        let room = page.capacity() - page.len();
        let take = room.min(self.len());
        if take > 0 {
            page.extend_raw(&self.bytes[self.start..self.start + take * w], take);
            self.start += take * w;
            if self.start == self.bytes.len() {
                self.bytes.clear();
                self.start = 0;
            }
        }
        take
    }

    /// Drop all live images.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::build()
            .attr("id", DataType::Int)
            .attr("flag", DataType::Bool)
            .attr("tag", DataType::Str(4))
            .finish()
            .unwrap()
    }

    fn tup(id: i64, flag: bool, tag: &str) -> Tuple {
        Tuple::new(vec![Value::Int(id), Value::Bool(flag), Value::str(tag)])
    }

    fn image(t: &Tuple) -> Vec<u8> {
        let mut buf = Vec::new();
        t.encode(&schema(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn ref_decodes_single_values_and_whole_tuples() {
        let s = schema();
        let t = tup(-7, true, "ab");
        let img = image(&t);
        let r = TupleRef::new(&s, &img).unwrap();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.value(0).unwrap(), Value::Int(-7));
        assert_eq!(r.value(1).unwrap(), Value::Bool(true));
        assert_eq!(r.value(2).unwrap(), Value::str("ab"));
        assert!(r.value(3).is_err());
        assert_eq!(r.to_tuple(), t);
        assert_eq!(r.raw(), &img[..]);
        assert_eq!(r.attr_bytes(1), &[1]);
        assert_eq!(r.str_bytes(2), b"ab");
        assert_eq!(r.attr_dtype(2), DataType::Str(4));
    }

    #[test]
    fn ref_rejects_wrong_length() {
        let s = schema();
        assert!(TupleRef::new(&s, &[0u8; 3]).is_err());
    }

    #[test]
    fn buf_round_trips_raw_and_decoded_pushes() {
        let s = schema();
        let mut buf = TupleBuf::new(s.clone());
        assert!(buf.is_empty());
        buf.push_tuple(&tup(1, false, "x")).unwrap();
        buf.push_raw(&image(&tup(2, true, "y")));
        let img = image(&tup(3, false, "z"));
        buf.push_ref(&TupleRef::new(&s, &img).unwrap());
        assert_eq!(buf.len(), 3);
        assert_eq!(
            buf.to_tuples(),
            vec![tup(1, false, "x"), tup(2, true, "y"), tup(3, false, "z")]
        );
        assert!(buf.push_tuple(&Tuple::new(vec![Value::Int(1)])).is_err());
        assert_eq!(buf.len(), 3, "failed push must not corrupt the batch");
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn buf_projected_copies_attr_ranges() {
        let s = schema();
        let out_schema = s.select(&[2, 0]).unwrap();
        let mut buf = TupleBuf::new(out_schema);
        let img = image(&tup(9, true, "hi"));
        buf.push_projected(&TupleRef::new(&s, &img).unwrap(), &[2, 0]);
        assert_eq!(
            buf.to_tuples(),
            vec![Tuple::new(vec![Value::str("hi"), Value::Int(9)])]
        );
    }

    #[test]
    fn buf_concat_builds_join_rows() {
        let s = schema();
        let joined = s.concat(&s);
        let mut buf = TupleBuf::new(joined);
        let (a, b) = (image(&tup(1, true, "l")), image(&tup(2, false, "r")));
        buf.push_concat(&a, &b);
        assert_eq!(buf.len(), 1);
        assert_eq!(
            buf.to_tuples()[0],
            tup(1, true, "l").concat(&tup(2, false, "r"))
        );
    }

    #[test]
    fn buf_append_concatenates_live_regions() {
        let s = schema();
        let mut a = TupleBuf::new(s.clone());
        a.push_tuple(&tup(1, false, "a")).unwrap();
        a.push_tuple(&tup(2, false, "b")).unwrap();
        let mut drained = Page::new(s.clone(), 16 + 13).unwrap(); // 1 tuple
        a.drain_into(&mut drained);
        let mut b = TupleBuf::new(s);
        b.push_tuple(&tup(9, true, "z")).unwrap();
        b.append(&a); // only a's live (undrained) image must come over
        assert_eq!(b.to_tuples(), vec![tup(9, true, "z"), tup(2, false, "b")]);
    }

    #[test]
    fn buf_drains_into_pages_with_cursor() {
        let s = schema();
        let mut buf = TupleBuf::new(s.clone());
        for i in 0..5 {
            buf.push_tuple(&tup(i, false, "t")).unwrap();
        }
        // Page holds 2 tuples (width 13, header 16).
        let mut p1 = Page::new(s.clone(), 16 + 26).unwrap();
        assert_eq!(buf.drain_into(&mut p1), 2);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.drain_into(&mut p1), 0, "page already full");
        let mut p2 = Page::new(s.clone(), 16 + 26).unwrap();
        assert_eq!(buf.drain_into(&mut p2), 2);
        let mut p3 = Page::new(s, 16 + 26).unwrap();
        assert_eq!(buf.drain_into(&mut p3), 1);
        assert!(buf.is_empty());
        let ids: Vec<Tuple> = p1.tuples().chain(p2.tuples()).chain(p3.tuples()).collect();
        assert_eq!(ids, (0..5).map(|i| tup(i, false, "t")).collect::<Vec<_>>());
    }
}

//! The catalog: a named collection of relations (the "database").

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::relation::Relation;

/// A database: named relations with deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Insert a relation under its own name.
    ///
    /// # Errors
    /// Fails if the name is already taken.
    pub fn insert(&mut self, relation: Relation) -> Result<()> {
        let name = relation.name().to_owned();
        if self.relations.contains_key(&name) {
            return Err(Error::DuplicateRelation { name });
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Insert, replacing any existing relation of the same name.
    pub fn insert_or_replace(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_owned(), relation);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up a relation, erroring when absent.
    pub fn require(&self, name: &str) -> Result<&Relation> {
        self.get(name).ok_or_else(|| Error::UnknownRelation {
            name: name.to_owned(),
        })
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Remove a relation, returning it.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when no relations are stored.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Relation names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total bytes across all relations (the paper's database is "15
    /// relations with a combined size of 5.5 megabytes").
    pub fn total_bytes(&self) -> usize {
        self.relations.values().map(Relation::total_bytes).sum()
    }

    /// Total tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::num_tuples).sum()
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "catalog: {} relations, {} tuples, {} bytes",
            self.len(),
            self.total_tuples(),
            self.total_bytes()
        )?;
        for r in self.iter() {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::{DataType, Value};

    fn rel(name: &str, n: i64) -> Relation {
        let s = Schema::build().attr("k", DataType::Int).finish().unwrap();
        Relation::from_tuples(
            name,
            s,
            1016,
            (0..n).map(|k| Tuple::new(vec![Value::Int(k)])),
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut c = Catalog::new();
        c.insert(rel("a", 3)).unwrap();
        assert!(c.get("a").is_some());
        assert!(c.require("a").is_ok());
        assert!(matches!(
            c.require("zz"),
            Err(Error::UnknownRelation { .. })
        ));
        assert_eq!(c.remove("a").unwrap().num_tuples(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut c = Catalog::new();
        c.insert(rel("a", 1)).unwrap();
        assert!(matches!(
            c.insert(rel("a", 2)),
            Err(Error::DuplicateRelation { .. })
        ));
        // insert_or_replace overwrites.
        c.insert_or_replace(rel("a", 2));
        assert_eq!(c.get("a").unwrap().num_tuples(), 2);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut c = Catalog::new();
        for name in ["zeta", "alpha", "mid"] {
            c.insert(rel(name, 1)).unwrap();
        }
        let names: Vec<_> = c.names().collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn aggregate_sizes() {
        let mut c = Catalog::new();
        c.insert(rel("a", 10)).unwrap();
        c.insert(rel("b", 5)).unwrap();
        assert_eq!(c.total_tuples(), 15);
        assert!(c.total_bytes() > 0);
        assert_eq!(c.len(), 2);
    }
}

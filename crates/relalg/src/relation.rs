//! Relations: a named schema plus a sequence of pages.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::page::Page;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::tuple_ref::TupleRef;

/// A materialized relation. Tuples live in fixed-size [`Page`]s; the last
/// page may be partially full.
///
/// Pages are held behind [`Arc`] so that loading a relation into a
/// simulated machine's page store (or materializing a result back out)
/// shares the underlying buffers instead of deep-copying them; mutation
/// goes through copy-on-write ([`Arc::make_mut`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    schema: Schema,
    page_size: usize,
    pages: Vec<Arc<Page>>,
}

impl Relation {
    /// An empty relation with the given page size.
    ///
    /// # Errors
    /// Fails if one tuple of `schema` cannot fit in `page_size` bytes.
    pub fn new(name: &str, schema: Schema, page_size: usize) -> Result<Relation> {
        // Validate the page size once, up front.
        Page::new(schema.clone(), page_size)?;
        Ok(Relation {
            name: name.to_owned(),
            schema,
            page_size,
            pages: Vec::new(),
        })
    }

    /// Build a relation from an iterator of tuples.
    pub fn from_tuples<I>(
        name: &str,
        schema: Schema,
        page_size: usize,
        tuples: I,
    ) -> Result<Relation>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut r = Relation::new(name, schema, page_size)?;
        for t in tuples {
            r.append(t)?;
        }
        Ok(r)
    }

    /// The relation's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename (used for intermediate results).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_owned();
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Configured page size.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The pages, in order (shared handles — cheap to clone into a page
    /// store or another relation).
    #[inline]
    pub fn pages(&self) -> &[Arc<Page>] {
        &self.pages
    }

    /// Number of pages.
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total number of tuples.
    pub fn num_tuples(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.num_tuples() == 0
    }

    /// Total wire/disk bytes across all pages (headers included).
    pub fn total_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.wire_bytes()).sum()
    }

    /// Append one tuple, opening a new page when the last one is full.
    pub fn append(&mut self, tuple: Tuple) -> Result<()> {
        tuple.conforms_to(&self.schema)?;
        if self.pages.last().is_none_or_full() {
            self.pages
                .push(Arc::new(Page::new(self.schema.clone(), self.page_size)?));
        }
        Arc::make_mut(
            self.pages
                .last_mut()
                .expect("just ensured a non-full page exists"),
        )
        .push(&tuple)
    }

    /// Append a whole page, taking shared ownership (an `Arc<Page>` handed
    /// in is not copied; a bare `Page` is wrapped).
    ///
    /// # Errors
    /// Fails if the page's schema differs or its size differs from the
    /// relation's configured page size.
    pub fn append_page(&mut self, page: impl Into<Arc<Page>>) -> Result<()> {
        let page: Arc<Page> = page.into();
        if page.schema() != &self.schema {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "appending page of schema {} to relation of schema {}",
                    page.schema(),
                    self.schema
                ),
            });
        }
        if page.page_size() != self.page_size {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "appending page of size {} to relation with page size {}",
                    page.page_size(),
                    self.page_size
                ),
            });
        }
        self.pages.push(page);
        Ok(())
    }

    /// Iterate over all tuples across all pages.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.pages.iter().flat_map(|p| p.tuples())
    }

    /// Iterate over all tuples as borrowed zero-copy views.
    pub fn tuple_refs(&self) -> impl Iterator<Item = TupleRef<'_>> {
        self.pages.iter().flat_map(|p| p.tuple_refs())
    }

    /// Compact all pages so that every page except possibly the last is full
    /// (the IC-side "compression" of §4.2, applied relation-wide).
    pub fn compact(&mut self) {
        let mut compacted: Vec<Arc<Page>> = Vec::with_capacity(self.pages.len());
        for mut page in std::mem::take(&mut self.pages) {
            if page.is_empty() {
                continue;
            }
            if let Some(open) = compacted.last_mut() {
                let _ = Arc::make_mut(open)
                    .compact_from(Arc::make_mut(&mut page))
                    .expect("pages of one relation share a schema");
            }
            if !page.is_empty() {
                compacted.push(page);
            }
        }
        self.pages = compacted;
    }

    /// Multiset equality with another relation: same schema and the same
    /// tuples with the same multiplicities, regardless of page layout or
    /// tuple order. This is the equivalence the oracle-vs-machine tests use
    /// (the data-flow machines produce tuples in a different order than the
    /// sequential executor).
    pub fn same_contents(&self, other: &Relation) -> bool {
        if self.schema != other.schema {
            return false;
        }
        let mut a: Vec<Vec<u8>> = self
            .tuples()
            .map(|t| {
                let mut buf = Vec::new();
                t.encode(&self.schema, &mut buf)
                    .expect("stored tuple conforms");
                buf
            })
            .collect();
        let mut b: Vec<Vec<u8>> = other
            .tuples()
            .map(|t| {
                let mut buf = Vec::new();
                t.encode(&other.schema, &mut buf)
                    .expect("stored tuple conforms");
                buf
            })
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

/// Small extension so `append` reads naturally.
trait LastPage {
    fn is_none_or_full(&self) -> bool;
}

impl LastPage for Option<&Arc<Page>> {
    fn is_none_or_full(&self) -> bool {
        match self {
            None => true,
            Some(p) => p.is_full(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{} tuples, {} pages, {} bytes]",
            self.name,
            self.schema,
            self.num_tuples(),
            self.num_pages(),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::build()
            .attr("k", DataType::Int)
            .attr("pad", DataType::Str(92))
            .finish()
            .unwrap()
    }

    fn tup(k: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::str("p")])
    }

    fn rel(n: usize) -> Relation {
        Relation::from_tuples("t", schema(), 516, (0..n as i64).map(tup)).unwrap()
    }

    #[test]
    fn paging_on_append() {
        let r = rel(12); // 5 tuples per page
        assert_eq!(r.num_pages(), 3);
        assert_eq!(r.num_tuples(), 12);
        assert_eq!(r.pages()[0].len(), 5);
        assert_eq!(r.pages()[2].len(), 2);
    }

    #[test]
    fn tuple_iteration_order() {
        let r = rel(7);
        let keys: Vec<i64> = r
            .tuples()
            .map(|t| match t.get(0).unwrap() {
                Value::Int(k) => *k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn append_page_validation() {
        let mut r = rel(0);
        let good = Page::new(schema(), 516).unwrap();
        r.append_page(good).unwrap();
        let wrong_size = Page::new(schema(), 1016).unwrap();
        assert!(r.append_page(wrong_size).is_err());
        let other = Schema::build().attr("z", DataType::Int).finish().unwrap();
        let wrong_schema = Page::new(other, 516).unwrap();
        assert!(r.append_page(wrong_schema).is_err());
    }

    #[test]
    fn compaction_packs_partial_pages() {
        let mut r = rel(0);
        // Three pages with 2 tuples each (simulating partial result pages).
        for base in [0i64, 10, 20] {
            let mut p = Page::new(schema(), 516).unwrap();
            p.push(&tup(base)).unwrap();
            p.push(&tup(base + 1)).unwrap();
            r.append_page(p).unwrap();
        }
        assert_eq!(r.num_pages(), 3);
        let before = r.num_tuples();
        r.compact();
        assert_eq!(r.num_tuples(), before);
        assert_eq!(r.num_pages(), 2); // 5 + 1
        assert_eq!(r.pages()[0].len(), 5);
        assert_eq!(r.pages()[1].len(), 1);
    }

    #[test]
    fn same_contents_ignores_layout_and_order() {
        let a = rel(11);
        let mut b = Relation::new("t2", schema(), 1016).unwrap();
        for k in (0..11).rev() {
            b.append(tup(k)).unwrap();
        }
        assert!(a.same_contents(&b));
        // Different multiplicity breaks equality.
        b.append(tup(5)).unwrap();
        assert!(!a.same_contents(&b));
    }

    #[test]
    fn total_bytes_counts_headers() {
        let r = rel(5); // exactly one full page
        assert_eq!(r.total_bytes(), 16 + 5 * 100);
    }

    #[test]
    fn append_page_shares_arcs() {
        let r = rel(7);
        let mut copy = Relation::new("copy", schema(), 516).unwrap();
        for p in r.pages() {
            copy.append_page(std::sync::Arc::clone(p)).unwrap();
        }
        assert!(r
            .pages()
            .iter()
            .zip(copy.pages())
            .all(|(a, b)| std::sync::Arc::ptr_eq(a, b)));
        assert!(r.same_contents(&copy));
        // CoW: appending to the copy must not disturb the original.
        let mut copy2 = copy.clone();
        copy2.append(tup(99)).unwrap();
        assert_eq!(r.num_tuples(), 7);
        assert_eq!(copy2.num_tuples(), 8);
        let refs: Vec<i64> = r
            .tuple_refs()
            .map(|t| match t.value(0).unwrap() {
                Value::Int(k) => k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(refs, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn append_rejects_nonconforming() {
        let mut r = rel(0);
        assert!(r.append(Tuple::new(vec![Value::Int(1)])).is_err());
        assert!(r.is_empty());
    }
}

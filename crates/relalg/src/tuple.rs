//! Tuples: typed rows with an exact fixed-width wire encoding.

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A typed row. Values are stored decoded; [`Tuple::encode`] produces the
/// fixed-width on-page / on-wire image defined by a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Construct from a value list. Validation against a schema happens at
    /// append/encode time (tuples are often built before their destination
    /// schema exists, e.g. inside a join kernel).
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// The values, in attribute order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at attribute index `i`.
    pub fn get(&self, i: usize) -> Result<&Value> {
        self.values.get(i).ok_or(Error::AttrIndexOutOfBounds {
            index: i,
            arity: self.values.len(),
        })
    }

    /// Check this tuple against `schema` (arity and per-attribute types).
    pub fn conforms_to(&self, schema: &Schema) -> Result<()> {
        if self.values.len() != schema.arity() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "tuple arity {} vs schema arity {}",
                    self.values.len(),
                    schema.arity()
                ),
            });
        }
        for (v, a) in self.values.iter().zip(schema.attrs()) {
            if !a.dtype.admits(v) {
                return Err(Error::SchemaMismatch {
                    detail: format!("value {v} does not fit attribute {}: {}", a.name, a.dtype),
                });
            }
        }
        Ok(())
    }

    /// Append this tuple's fixed-width image (exactly
    /// [`Schema::tuple_width`] bytes) to `out`.
    ///
    /// # Errors
    /// Fails if the tuple does not conform to `schema`.
    pub fn encode(&self, schema: &Schema, out: &mut Vec<u8>) -> Result<()> {
        self.conforms_to(schema)?;
        let start = out.len();
        for (v, a) in self.values.iter().zip(schema.attrs()) {
            v.encode(a.dtype, out)?;
        }
        debug_assert_eq!(out.len() - start, schema.tuple_width());
        Ok(())
    }

    /// Append this tuple's fixed-width image to `out` without the separate
    /// up-front [`Tuple::conforms_to`] pass — the hot-path variant used by
    /// [`crate::Page::push`]. Per-value encoding still rejects values that do
    /// not inhabit their attribute type, and arity mismatches are caught by a
    /// single length comparison, so nonconforming tuples are still errors;
    /// the work saved is the second full `admits` sweep over every value.
    ///
    /// On error, `out` is restored to its original length.
    pub fn encode_unchecked(&self, schema: &Schema, out: &mut Vec<u8>) -> Result<()> {
        if self.values.len() != schema.arity() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "tuple arity {} vs schema arity {}",
                    self.values.len(),
                    schema.arity()
                ),
            });
        }
        let start = out.len();
        for (v, a) in self.values.iter().zip(schema.attrs()) {
            if let Err(e) = v.encode(a.dtype, out) {
                out.truncate(start);
                return Err(e);
            }
        }
        debug_assert_eq!(out.len() - start, schema.tuple_width());
        Ok(())
    }

    /// Decode one tuple image from the front of `bytes`.
    pub fn decode(schema: &Schema, bytes: &[u8]) -> Result<Tuple> {
        if bytes.len() < schema.tuple_width() {
            return Err(Error::Corrupt {
                detail: format!(
                    "tuple image needs {} bytes, have {}",
                    schema.tuple_width(),
                    bytes.len()
                ),
            });
        }
        let mut values = Vec::with_capacity(schema.arity());
        let mut off = 0;
        for a in schema.attrs() {
            let (v, n) = Value::decode(a.dtype, &bytes[off..])?;
            values.push(v);
            off += n;
        }
        Ok(Tuple { values })
    }

    /// Concatenate two tuples (the output row of a join / cross product).
    pub fn concat(&self, right: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + right.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Tuple { values }
    }

    /// Project this tuple onto the attribute `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Result<Tuple> {
        let values = indices
            .iter()
            .map(|&i| self.get(i).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Tuple { values })
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::build()
            .attr("id", DataType::Int)
            .attr("flag", DataType::Bool)
            .attr("tag", DataType::Str(4))
            .finish()
            .unwrap()
    }

    fn tup() -> Tuple {
        Tuple::new(vec![Value::Int(-7), Value::Bool(true), Value::str("ab")])
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = schema();
        let t = tup();
        let mut buf = Vec::new();
        t.encode(&s, &mut buf).unwrap();
        assert_eq!(buf.len(), s.tuple_width());
        let back = Tuple::decode(&s, &buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn conforms_catches_arity_and_type_errors() {
        let s = schema();
        assert!(Tuple::new(vec![Value::Int(1)]).conforms_to(&s).is_err());
        let wrong_type = Tuple::new(vec![Value::Bool(true), Value::Bool(true), Value::str("x")]);
        assert!(wrong_type.conforms_to(&s).is_err());
        assert!(tup().conforms_to(&s).is_ok());
    }

    #[test]
    fn encode_unchecked_matches_encode_and_rejects_misfits() {
        let s = schema();
        let t = tup();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        t.encode(&s, &mut a).unwrap();
        t.encode_unchecked(&s, &mut b).unwrap();
        assert_eq!(a, b);
        // Wrong arity and wrong types still error, and leave `out` untouched.
        let mut buf = vec![0xAA];
        assert!(Tuple::new(vec![Value::Int(1)])
            .encode_unchecked(&s, &mut buf)
            .is_err());
        let wrong = Tuple::new(vec![Value::Bool(true), Value::Bool(true), Value::str("x")]);
        assert!(wrong.encode_unchecked(&s, &mut buf).is_err());
        assert_eq!(buf, vec![0xAA]);
    }

    #[test]
    fn decode_rejects_truncation() {
        let s = schema();
        let mut buf = Vec::new();
        tup().encode(&s, &mut buf).unwrap();
        buf.pop();
        assert!(matches!(
            Tuple::decode(&s, &buf),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn concat_and_project() {
        let t = tup();
        let u = t.concat(&t);
        assert_eq!(u.arity(), 6);
        let p = u.project(&[0, 3]).unwrap();
        assert_eq!(p.values(), &[Value::Int(-7), Value::Int(-7)]);
        assert!(u.project(&[99]).is_err());
    }

    #[test]
    fn get_bounds() {
        let t = tup();
        assert_eq!(t.get(0).unwrap(), &Value::Int(-7));
        assert!(t.get(3).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", tup()), "[-7, true, \"ab\"]");
    }
}

//! Error types for the relational model.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong constructing or manipulating relational data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// The offending name.
        name: String,
    },
    /// Two attributes in one schema share a name.
    DuplicateAttribute {
        /// The duplicated name.
        name: String,
    },
    /// A schema with no attributes was requested.
    EmptySchema,
    /// A tuple's arity or types do not match the schema it is used with.
    SchemaMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// A value does not fit its declared type (e.g. over-long string).
    ValueOutOfRange {
        /// Human-readable detail.
        detail: String,
    },
    /// A page cannot hold even a single tuple of the given schema.
    PageTooSmall {
        /// Configured page size in bytes.
        page_size: usize,
        /// Bytes needed for one tuple plus the page header.
        needed: usize,
    },
    /// An append to a full fixed-capacity page.
    PageFull,
    /// Decoding bytes that are not a valid page/tuple image.
    Corrupt {
        /// Human-readable detail.
        detail: String,
    },
    /// A relation name was not found in the catalog.
    UnknownRelation {
        /// The offending name.
        name: String,
    },
    /// Inserting a relation whose name is already taken.
    DuplicateRelation {
        /// The duplicated name.
        name: String,
    },
    /// An attribute index is out of bounds for a schema.
    AttrIndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The schema arity.
        arity: usize,
    },
    /// Comparing values of incompatible types.
    TypeMismatch {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            Error::DuplicateAttribute { name } => write!(f, "duplicate attribute `{name}`"),
            Error::EmptySchema => write!(f, "schema must have at least one attribute"),
            Error::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            Error::ValueOutOfRange { detail } => write!(f, "value out of range: {detail}"),
            Error::PageTooSmall { page_size, needed } => write!(
                f,
                "page size {page_size} too small: one tuple plus header needs {needed} bytes"
            ),
            Error::PageFull => write!(f, "page is full"),
            Error::Corrupt { detail } => write!(f, "corrupt page or tuple image: {detail}"),
            Error::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            Error::DuplicateRelation { name } => {
                write!(f, "relation `{name}` already exists in catalog")
            }
            Error::AttrIndexOutOfBounds { index, arity } => {
                write!(f, "attribute index {index} out of bounds for arity {arity}")
            }
            Error::TypeMismatch { detail } => write!(f, "type mismatch: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::UnknownAttribute {
            name: "salary".into(),
        };
        assert!(e.to_string().contains("salary"));
        let e = Error::PageTooSmall {
            page_size: 64,
            needed: 128,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("128"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptySchema);
    }
}

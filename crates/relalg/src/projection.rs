//! Projections: attribute selection with output-schema derivation.
//!
//! The paper singles out the project operator (§5) as the hard one for
//! multiprocessor execution because of duplicate elimination; the relational
//! semantics live here, the parallel algorithm lives in `df-query`.

use crate::error::{Error, Result};
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;

/// An ordered list of attribute indices to keep, with optional output
/// renaming (π with renaming — used e.g. by optimizers inserting
/// compensating projections that must preserve an existing schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    indices: Vec<usize>,
    renames: Option<Vec<String>>,
}

impl Projection {
    /// Build from attribute names against an input schema.
    pub fn new(schema: &Schema, names: &[&str]) -> Result<Projection> {
        let indices = names
            .iter()
            .map(|n| schema.index_of(n))
            .collect::<Result<Vec<_>>>()?;
        Ok(Projection {
            indices,
            renames: None,
        })
    }

    /// Build directly from indices (validated against `schema`).
    pub fn from_indices(schema: &Schema, indices: Vec<usize>) -> Result<Projection> {
        for &i in &indices {
            schema.attr(i)?;
        }
        Ok(Projection {
            indices,
            renames: None,
        })
    }

    /// Build from indices with explicit output attribute names.
    ///
    /// # Errors
    /// Fails if an index is out of bounds or the name count mismatches.
    pub fn with_renames(
        schema: &Schema,
        indices: Vec<usize>,
        names: Vec<String>,
    ) -> Result<Projection> {
        if names.len() != indices.len() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "{} renames for {} projected attributes",
                    names.len(),
                    indices.len()
                ),
            });
        }
        for &i in &indices {
            schema.attr(i)?;
        }
        Ok(Projection {
            indices,
            renames: Some(names),
        })
    }

    /// The attribute indices kept, in output order.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Derive the output schema (renames applied if present).
    pub fn output_schema(&self, input: &Schema) -> Result<Schema> {
        match &self.renames {
            None => input.select(&self.indices),
            Some(names) => {
                let attrs = self
                    .indices
                    .iter()
                    .zip(names)
                    .map(|(&i, name)| {
                        Ok(Attribute {
                            name: name.clone(),
                            dtype: input.attr(i)?.dtype,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Schema::new(attrs)
            }
        }
    }

    /// Apply to one tuple.
    pub fn apply(&self, tuple: &Tuple) -> Result<Tuple> {
        tuple.project(&self.indices)
    }

    /// Validate the indices against a (possibly different) input schema.
    pub fn validate_against(&self, schema: &Schema) -> Result<()> {
        for &i in &self.indices {
            schema.attr(i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::build()
            .attr("a", DataType::Int)
            .attr("b", DataType::Int)
            .attr("c", DataType::Str(4))
            .finish()
            .unwrap()
    }

    #[test]
    fn by_names() {
        let s = schema();
        let p = Projection::new(&s, &["c", "a"]).unwrap();
        assert_eq!(p.indices(), &[2, 0]);
        let out = p.output_schema(&s).unwrap();
        assert_eq!(out.attrs()[0].name, "c");
        assert_eq!(out.attrs()[1].name, "a");
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::str("hi")]);
        assert_eq!(
            p.apply(&t).unwrap().values(),
            &[Value::str("hi"), Value::Int(1)]
        );
    }

    #[test]
    fn unknown_name_fails() {
        assert!(Projection::new(&schema(), &["nope"]).is_err());
    }

    #[test]
    fn from_indices_validates() {
        let s = schema();
        assert!(Projection::from_indices(&s, vec![0, 2]).is_ok());
        assert!(Projection::from_indices(&s, vec![3]).is_err());
    }

    #[test]
    fn validate_against_narrower_schema() {
        let s = schema();
        let p = Projection::new(&s, &["c"]).unwrap();
        let narrow = Schema::build().attr("x", DataType::Int).finish().unwrap();
        assert!(p.validate_against(&narrow).is_err());
        assert!(p.validate_against(&s).is_ok());
    }

    #[test]
    fn renames_override_output_names() {
        let s = schema();
        let p =
            Projection::with_renames(&s, vec![2, 0], vec!["third".into(), "first".into()]).unwrap();
        let out = p.output_schema(&s).unwrap();
        assert_eq!(out.attrs()[0].name, "third");
        assert_eq!(out.attrs()[1].name, "first");
        assert_eq!(out.attrs()[1].dtype, DataType::Int);
        // Mismatched counts rejected.
        assert!(Projection::with_renames(&s, vec![0], vec![]).is_err());
        assert!(Projection::with_renames(&s, vec![9], vec!["x".into()]).is_err());
    }

    #[test]
    fn duplicate_indices_allowed() {
        // π(a, a) is legal relational algebra over bags; the schema derivation
        // renames the collision.
        let s = schema();
        let p = Projection::from_indices(&s, vec![0, 0]);
        // Schema::select will produce duplicate names -> must error.
        assert!(p.unwrap().output_schema(&s).is_err());
    }
}

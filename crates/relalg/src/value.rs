//! Data types and values.
//!
//! A deliberately small, 1979-plausible type system. Every type has a fixed
//! encoded width, so a tuple's wire size is a function of its schema alone —
//! the property the paper's packet formats ("tuple length & format", Fig 4.3)
//! and its byte-level bandwidth analysis (§3.3) rely on.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// The type of an attribute. Every type has a fixed encoded width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer, encoded big-endian in 8 bytes.
    Int,
    /// Boolean, encoded in 1 byte (0 or 1).
    Bool,
    /// Fixed-length string of `n` bytes, NUL-padded. `n` must be ≥ 1.
    Str(u16),
}

impl DataType {
    /// The encoded width in bytes.
    #[inline]
    pub fn width(self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Bool => 1,
            DataType::Str(n) => n as usize,
        }
    }

    /// Whether `value` inhabits this type (strings must fit, NULs forbidden
    /// because NUL is the pad byte).
    pub fn admits(self, value: &Value) -> bool {
        match (self, value) {
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Str(n), Value::Str(s)) => {
                s.len() <= n as usize && !s.as_bytes().contains(&0)
            }
            _ => false,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Bool => write!(f, "bool"),
            DataType::Str(n) => write!(f, "str({n})"),
        }
    }
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (validated against its `Str(n)` type at append time).
    Str(String),
}

impl Value {
    /// Shorthand for building string values in tests and examples.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_owned())
    }

    /// The [`DataType`] *kind* this value belongs to. For strings the declared
    /// width comes from the schema, so this reports the value's own length.
    pub fn data_type_of(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Bool(_) => DataType::Bool,
            Value::Str(s) => DataType::Str(s.len().min(u16::MAX as usize) as u16),
        }
    }

    /// Total ordering *within* a type; `None` across types.
    ///
    /// The relational operators only ever compare same-typed attributes (the
    /// validator guarantees it), so `None` signals a planning bug upstream.
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Compare, returning an error on cross-type comparison.
    pub fn try_cmp(&self, other: &Value) -> Result<Ordering> {
        self.partial_cmp_typed(other).ok_or_else(|| Error::TypeMismatch {
            detail: format!("cannot compare {self} with {other}"),
        })
    }

    /// Encode into `out` using exactly `dtype.width()` bytes.
    ///
    /// # Errors
    /// Fails if the value does not inhabit `dtype`.
    pub fn encode(&self, dtype: DataType, out: &mut Vec<u8>) -> Result<()> {
        if !dtype.admits(self) {
            return Err(Error::ValueOutOfRange {
                detail: format!("value {self} does not fit type {dtype}"),
            });
        }
        match (self, dtype) {
            (Value::Int(x), DataType::Int) => out.extend_from_slice(&x.to_be_bytes()),
            (Value::Bool(b), DataType::Bool) => out.push(u8::from(*b)),
            (Value::Str(s), DataType::Str(n)) => {
                out.extend_from_slice(s.as_bytes());
                out.resize(out.len() + (n as usize - s.len()), 0);
            }
            _ => unreachable!("admits() checked the pairing"),
        }
        Ok(())
    }

    /// Decode a value of type `dtype` from the front of `bytes`.
    ///
    /// Returns the value and the number of bytes consumed.
    pub fn decode(dtype: DataType, bytes: &[u8]) -> Result<(Value, usize)> {
        let w = dtype.width();
        if bytes.len() < w {
            return Err(Error::Corrupt {
                detail: format!("need {w} bytes for {dtype}, have {}", bytes.len()),
            });
        }
        let v = match dtype {
            DataType::Int => {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&bytes[..8]);
                Value::Int(i64::from_be_bytes(buf))
            }
            DataType::Bool => match bytes[0] {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                b => {
                    return Err(Error::Corrupt {
                        detail: format!("invalid bool byte {b}"),
                    })
                }
            },
            DataType::Str(n) => {
                let raw = &bytes[..n as usize];
                let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
                let s = std::str::from_utf8(&raw[..end]).map_err(|_| Error::Corrupt {
                    detail: "string field is not UTF-8".into(),
                })?;
                Value::Str(s.to_owned())
            }
        };
        Ok((v, w))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(DataType::Int.width(), 8);
        assert_eq!(DataType::Bool.width(), 1);
        assert_eq!(DataType::Str(100).width(), 100);
    }

    #[test]
    fn admits_checks_type_and_fit() {
        assert!(DataType::Int.admits(&Value::Int(5)));
        assert!(!DataType::Int.admits(&Value::Bool(true)));
        assert!(DataType::Str(5).admits(&Value::str("abcde")));
        assert!(!DataType::Str(4).admits(&Value::str("abcde")));
        assert!(!DataType::Str(4).admits(&Value::Str("a\0b".into())));
    }

    #[test]
    fn int_round_trip() {
        for x in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789] {
            let mut buf = Vec::new();
            Value::Int(x).encode(DataType::Int, &mut buf).unwrap();
            assert_eq!(buf.len(), 8);
            let (v, n) = Value::decode(DataType::Int, &buf).unwrap();
            assert_eq!((v, n), (Value::Int(x), 8));
        }
    }

    #[test]
    fn str_round_trip_with_padding() {
        let mut buf = Vec::new();
        Value::str("hi").encode(DataType::Str(6), &mut buf).unwrap();
        assert_eq!(buf, b"hi\0\0\0\0");
        let (v, n) = Value::decode(DataType::Str(6), &buf).unwrap();
        assert_eq!((v, n), (Value::str("hi"), 6));
    }

    #[test]
    fn bool_round_trip_and_corruption() {
        let mut buf = Vec::new();
        Value::Bool(true).encode(DataType::Bool, &mut buf).unwrap();
        let (v, _) = Value::decode(DataType::Bool, &buf).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert!(matches!(
            Value::decode(DataType::Bool, &[7]),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn decode_rejects_short_input() {
        assert!(matches!(
            Value::decode(DataType::Int, &[1, 2, 3]),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn encode_rejects_misfit() {
        let mut buf = Vec::new();
        assert!(Value::str("toolong").encode(DataType::Str(3), &mut buf).is_err());
        assert!(Value::Int(1).encode(DataType::Bool, &mut buf).is_err());
    }

    #[test]
    fn ordering_within_and_across_types() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).partial_cmp_typed(&Value::Int(2)), Some(Less));
        assert_eq!(
            Value::str("b").partial_cmp_typed(&Value::str("a")),
            Some(Greater)
        );
        assert_eq!(Value::Int(1).partial_cmp_typed(&Value::str("a")), None);
        assert!(Value::Int(1).try_cmp(&Value::Bool(true)).is_err());
    }
}

//! Data types and values.
//!
//! A deliberately small, 1979-plausible type system. Every type has a fixed
//! encoded width, so a tuple's wire size is a function of its schema alone —
//! the property the paper's packet formats ("tuple length & format", Fig 4.3)
//! and its byte-level bandwidth analysis (§3.3) rely on.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// The type of an attribute. Every type has a fixed encoded width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer, encoded big-endian in 8 bytes.
    Int,
    /// Boolean, encoded in 1 byte (0 or 1).
    Bool,
    /// Fixed-length string of `n` bytes, NUL-padded. `n` must be ≥ 1.
    Str(u16),
}

impl DataType {
    /// The encoded width in bytes.
    #[inline]
    pub fn width(self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Bool => 1,
            DataType::Str(n) => n as usize,
        }
    }

    /// Whether `value` inhabits this type (strings must fit, NULs forbidden
    /// because NUL is the pad byte).
    pub fn admits(self, value: &Value) -> bool {
        match (self, value) {
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Str(n), Value::Str(s)) => {
                s.len() <= n as usize && !s.as_bytes().contains(&0)
            }
            _ => false,
        }
    }
}

/// Strip the NUL padding from an encoded string field. Content NULs are
/// forbidden by [`DataType::admits`], so the first NUL marks the end.
#[inline]
pub(crate) fn trim_str_padding(raw: &[u8]) -> &[u8] {
    let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
    &raw[..end]
}

/// Compare two *encoded* attribute images without decoding (no allocation).
///
/// Returns `None` on cross-type comparison, mirroring
/// [`Value::partial_cmp_typed`]. The encoding is canonical, so:
/// ints decode to 8 bytes (big-endian two's complement does not memcmp for
/// ordering, hence the decode), bools compare as their bytes, and strings
/// compare as their NUL-trimmed bytes (UTF-8 byte order equals `str` order).
#[inline]
pub fn cmp_encoded(lt: DataType, a: &[u8], rt: DataType, b: &[u8]) -> Option<Ordering> {
    match (lt, rt) {
        (DataType::Int, DataType::Int) => {
            let x = i64::from_be_bytes(a[..8].try_into().expect("int image is 8 bytes"));
            let y = i64::from_be_bytes(b[..8].try_into().expect("int image is 8 bytes"));
            Some(x.cmp(&y))
        }
        (DataType::Bool, DataType::Bool) => Some(a[0].cmp(&b[0])),
        (DataType::Str(_), DataType::Str(_)) => Some(trim_str_padding(a).cmp(trim_str_padding(b))),
        _ => None,
    }
}

/// Compare an *encoded* attribute image against a decoded constant without
/// decoding or allocating. Returns `None` on cross-type comparison.
#[inline]
pub fn cmp_encoded_value(dtype: DataType, image: &[u8], value: &Value) -> Option<Ordering> {
    match (dtype, value) {
        (DataType::Int, Value::Int(y)) => {
            let x = i64::from_be_bytes(image[..8].try_into().expect("int image is 8 bytes"));
            Some(x.cmp(y))
        }
        (DataType::Bool, Value::Bool(y)) => Some((image[0] != 0).cmp(y)),
        (DataType::Str(_), Value::Str(s)) => Some(trim_str_padding(image).cmp(s.as_bytes())),
        _ => None,
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Bool => write!(f, "bool"),
            DataType::Str(n) => write!(f, "str({n})"),
        }
    }
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (validated against its `Str(n)` type at append time).
    Str(String),
}

impl Value {
    /// Shorthand for building string values in tests and examples.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_owned())
    }

    /// The [`DataType`] *kind* this value belongs to. For strings the declared
    /// width comes from the schema, so this reports the value's own length.
    pub fn data_type_of(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Bool(_) => DataType::Bool,
            Value::Str(s) => DataType::Str(s.len().min(u16::MAX as usize) as u16),
        }
    }

    /// Total ordering *within* a type; `None` across types.
    ///
    /// The relational operators only ever compare same-typed attributes (the
    /// validator guarantees it), so `None` signals a planning bug upstream.
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Compare, returning an error on cross-type comparison.
    pub fn try_cmp(&self, other: &Value) -> Result<Ordering> {
        self.partial_cmp_typed(other)
            .ok_or_else(|| Error::TypeMismatch {
                detail: format!("cannot compare {self} with {other}"),
            })
    }

    /// Encode into `out` using exactly `dtype.width()` bytes.
    ///
    /// # Errors
    /// Fails if the value does not inhabit `dtype`.
    pub fn encode(&self, dtype: DataType, out: &mut Vec<u8>) -> Result<()> {
        if !dtype.admits(self) {
            return Err(Error::ValueOutOfRange {
                detail: format!("value {self} does not fit type {dtype}"),
            });
        }
        match (self, dtype) {
            (Value::Int(x), DataType::Int) => out.extend_from_slice(&x.to_be_bytes()),
            (Value::Bool(b), DataType::Bool) => out.push(u8::from(*b)),
            (Value::Str(s), DataType::Str(n)) => {
                out.extend_from_slice(s.as_bytes());
                out.resize(out.len() + (n as usize - s.len()), 0);
            }
            _ => unreachable!("admits() checked the pairing"),
        }
        Ok(())
    }

    /// Decode a value of type `dtype` from the front of `bytes`.
    ///
    /// Returns the value and the number of bytes consumed.
    pub fn decode(dtype: DataType, bytes: &[u8]) -> Result<(Value, usize)> {
        let w = dtype.width();
        if bytes.len() < w {
            return Err(Error::Corrupt {
                detail: format!("need {w} bytes for {dtype}, have {}", bytes.len()),
            });
        }
        let v = match dtype {
            DataType::Int => {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&bytes[..8]);
                Value::Int(i64::from_be_bytes(buf))
            }
            DataType::Bool => match bytes[0] {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                b => {
                    return Err(Error::Corrupt {
                        detail: format!("invalid bool byte {b}"),
                    })
                }
            },
            DataType::Str(n) => {
                let raw = &bytes[..n as usize];
                let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
                let s = std::str::from_utf8(&raw[..end]).map_err(|_| Error::Corrupt {
                    detail: "string field is not UTF-8".into(),
                })?;
                Value::Str(s.to_owned())
            }
        };
        Ok((v, w))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(DataType::Int.width(), 8);
        assert_eq!(DataType::Bool.width(), 1);
        assert_eq!(DataType::Str(100).width(), 100);
    }

    #[test]
    fn admits_checks_type_and_fit() {
        assert!(DataType::Int.admits(&Value::Int(5)));
        assert!(!DataType::Int.admits(&Value::Bool(true)));
        assert!(DataType::Str(5).admits(&Value::str("abcde")));
        assert!(!DataType::Str(4).admits(&Value::str("abcde")));
        assert!(!DataType::Str(4).admits(&Value::Str("a\0b".into())));
    }

    #[test]
    fn int_round_trip() {
        for x in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789] {
            let mut buf = Vec::new();
            Value::Int(x).encode(DataType::Int, &mut buf).unwrap();
            assert_eq!(buf.len(), 8);
            let (v, n) = Value::decode(DataType::Int, &buf).unwrap();
            assert_eq!((v, n), (Value::Int(x), 8));
        }
    }

    #[test]
    fn str_round_trip_with_padding() {
        let mut buf = Vec::new();
        Value::str("hi").encode(DataType::Str(6), &mut buf).unwrap();
        assert_eq!(buf, b"hi\0\0\0\0");
        let (v, n) = Value::decode(DataType::Str(6), &buf).unwrap();
        assert_eq!((v, n), (Value::str("hi"), 6));
    }

    #[test]
    fn bool_round_trip_and_corruption() {
        let mut buf = Vec::new();
        Value::Bool(true).encode(DataType::Bool, &mut buf).unwrap();
        let (v, _) = Value::decode(DataType::Bool, &buf).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert!(matches!(
            Value::decode(DataType::Bool, &[7]),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn decode_rejects_short_input() {
        assert!(matches!(
            Value::decode(DataType::Int, &[1, 2, 3]),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn encode_rejects_misfit() {
        let mut buf = Vec::new();
        assert!(Value::str("toolong")
            .encode(DataType::Str(3), &mut buf)
            .is_err());
        assert!(Value::Int(1).encode(DataType::Bool, &mut buf).is_err());
    }

    /// Encoded comparison must agree with decoded comparison on every pair.
    #[test]
    fn encoded_cmp_matches_decoded_cmp() {
        let ints = [i64::MIN, -2, -1, 0, 1, 2, i64::MAX];
        for &x in &ints {
            for &y in &ints {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                Value::Int(x).encode(DataType::Int, &mut a).unwrap();
                Value::Int(y).encode(DataType::Int, &mut b).unwrap();
                let want = Value::Int(x).partial_cmp_typed(&Value::Int(y));
                assert_eq!(cmp_encoded(DataType::Int, &a, DataType::Int, &b), want);
                assert_eq!(cmp_encoded_value(DataType::Int, &a, &Value::Int(y)), want);
            }
        }
        let strs = ["", "a", "ab", "abc", "b", "zz"];
        for x in strs {
            for y in strs {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                Value::str(x).encode(DataType::Str(4), &mut a).unwrap();
                Value::str(y).encode(DataType::Str(6), &mut b).unwrap();
                let want = Value::str(x).partial_cmp_typed(&Value::str(y));
                assert_eq!(
                    cmp_encoded(DataType::Str(4), &a, DataType::Str(6), &b),
                    want
                );
                assert_eq!(
                    cmp_encoded_value(DataType::Str(4), &a, &Value::str(y)),
                    want
                );
            }
        }
        for x in [false, true] {
            for y in [false, true] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                Value::Bool(x).encode(DataType::Bool, &mut a).unwrap();
                Value::Bool(y).encode(DataType::Bool, &mut b).unwrap();
                let want = Value::Bool(x).partial_cmp_typed(&Value::Bool(y));
                assert_eq!(cmp_encoded(DataType::Bool, &a, DataType::Bool, &b), want);
                assert_eq!(cmp_encoded_value(DataType::Bool, &a, &Value::Bool(y)), want);
            }
        }
        // Cross-type comparisons stay undefined, encoded or not.
        assert_eq!(
            cmp_encoded(DataType::Int, &[0; 8], DataType::Bool, &[0]),
            None
        );
        assert_eq!(
            cmp_encoded_value(DataType::Bool, &[0], &Value::Int(0)),
            None
        );
    }

    #[test]
    fn ordering_within_and_across_types() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).partial_cmp_typed(&Value::Int(2)), Some(Less));
        assert_eq!(
            Value::str("b").partial_cmp_typed(&Value::str("a")),
            Some(Greater)
        );
        assert_eq!(Value::Int(1).partial_cmp_typed(&Value::str("a")), None);
        assert!(Value::Int(1).try_cmp(&Value::Bool(true)).is_err());
    }
}

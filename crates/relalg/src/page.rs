//! Fixed-size slotted pages of encoded tuples.
//!
//! A page is the paper's central unit: the operand granularity it argues for
//! (§3.2), the thing the arbitration network carries, the thing the disk
//! cache holds. Our page is a fixed-capacity container of fixed-width tuple
//! images plus a small header. The header models the on-wire/on-disk bytes
//! the packet formats of Figure 4.3–4.4 account for ("relation name", "tuple
//! length & format", "page length").

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Modeled page-header size in bytes: relation id (4) + page length (4) +
/// tuple count (4) + tuple width (4). All byte accounting includes it.
pub const PAGE_HEADER_BYTES: usize = 16;

/// A fixed-size page of encoded tuples.
///
/// The page owns its schema handle (cheap `Arc` clone) so that a page in
/// flight through a simulated network is self-describing, exactly like the
/// paper's instruction packets which carry "tuple length & format" alongside
/// each data page.
///
/// ```
/// use df_relalg::{DataType, Page, Schema, Tuple, Value};
/// let schema = Schema::build().attr("k", DataType::Int).finish()?;
/// let mut page = Page::new(schema, 48)?; // header 16 + 4 slots of 8
/// assert_eq!(page.capacity(), 4);
/// page.push(&Tuple::new(vec![Value::Int(7)]))?;
/// assert_eq!(page.len(), 1);
/// assert_eq!(page.wire_bytes(), 16 + 8);
/// # Ok::<(), df_relalg::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    schema: Schema,
    /// Page size in bytes, including [`PAGE_HEADER_BYTES`].
    page_size: usize,
    /// Concatenated fixed-width tuple images.
    data: Vec<u8>,
    ntuples: usize,
}

impl Page {
    /// An empty page of `page_size` bytes for tuples of `schema`.
    ///
    /// # Errors
    /// Fails if even one tuple does not fit (`page_size` too small).
    pub fn new(schema: Schema, page_size: usize) -> Result<Page> {
        let needed = PAGE_HEADER_BYTES + schema.tuple_width();
        if page_size < needed {
            return Err(Error::PageTooSmall { page_size, needed });
        }
        Ok(Page {
            schema,
            page_size,
            data: Vec::new(),
            ntuples: 0,
        })
    }

    /// The tuple schema of this page.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Configured page size in bytes (header included).
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Maximum number of tuples this page can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        (self.page_size - PAGE_HEADER_BYTES) / self.schema.tuple_width()
    }

    /// Number of tuples currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.ntuples
    }

    /// True if no tuples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ntuples == 0
    }

    /// True if another tuple cannot be appended.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ntuples >= self.capacity()
    }

    /// Bytes this page occupies on the wire / on disk: header plus the
    /// stored tuple images. A partially-full page costs only what it holds
    /// (the paper's ICs *compact* partial pages precisely to avoid shipping
    /// and storing slack).
    #[inline]
    pub fn wire_bytes(&self) -> usize {
        PAGE_HEADER_BYTES + self.data.len()
    }

    /// Append a tuple.
    ///
    /// # Errors
    /// [`Error::PageFull`] if at capacity; schema errors if the tuple does
    /// not conform.
    pub fn push(&mut self, tuple: &Tuple) -> Result<()> {
        if self.is_full() {
            return Err(Error::PageFull);
        }
        tuple.encode(&self.schema, &mut self.data)?;
        self.ntuples += 1;
        Ok(())
    }

    /// Decode the tuple in slot `i`.
    pub fn get(&self, i: usize) -> Result<Tuple> {
        if i >= self.ntuples {
            return Err(Error::AttrIndexOutOfBounds {
                index: i,
                arity: self.ntuples,
            });
        }
        let w = self.schema.tuple_width();
        Tuple::decode(&self.schema, &self.data[i * w..])
    }

    /// Iterate over all tuples (decoding on the fly).
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        let w = self.schema.tuple_width();
        self.data
            .chunks_exact(w)
            .map(move |chunk| Tuple::decode(&self.schema, chunk).expect("page data is valid"))
    }

    /// Move as many tuples as fit from `other` into `self` (page compaction,
    /// paper §4.2: partial result pages arriving at an IC "are compressed to
    /// form full pages"). Returns the number of tuples moved.
    ///
    /// # Errors
    /// Fails if the two pages have different schemas.
    pub fn compact_from(&mut self, other: &mut Page) -> Result<usize> {
        if self.schema != other.schema {
            return Err(Error::SchemaMismatch {
                detail: "compacting pages of different schemas".into(),
            });
        }
        let w = self.schema.tuple_width();
        let room = self.capacity() - self.len();
        let take = room.min(other.ntuples);
        if take > 0 {
            self.data.extend_from_slice(&other.data[..take * w]);
            self.ntuples += take;
            other.data.drain(..take * w);
            other.ntuples -= take;
        }
        Ok(take)
    }

    /// The raw encoded tuple area (no header).
    #[inline]
    pub fn raw_data(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Display for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Page[{}/{} tuples, {} bytes]",
            self.ntuples,
            self.capacity(),
            self.wire_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::build()
            .attr("k", DataType::Int)
            .attr("pad", DataType::Str(92))
            .finish()
            .unwrap()
    }

    fn tup(k: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::str("x")])
    }

    #[test]
    fn paper_capacity_math() {
        // §3.3: 100-byte tuples, 1000-byte pages "hold 10 tuples" — with our
        // explicit 16-byte header, a 1016-byte page holds exactly 10.
        let s = schema();
        assert_eq!(s.tuple_width(), 100);
        let p = Page::new(s, 1016).unwrap();
        assert_eq!(p.capacity(), 10);
    }

    #[test]
    fn push_until_full() {
        let mut p = Page::new(schema(), 316).unwrap(); // 3 tuples
        assert_eq!(p.capacity(), 3);
        for k in 0..3 {
            p.push(&tup(k)).unwrap();
        }
        assert!(p.is_full());
        assert!(matches!(p.push(&tup(9)), Err(Error::PageFull)));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn get_and_iterate() {
        let mut p = Page::new(schema(), 1016).unwrap();
        for k in 0..5 {
            p.push(&tup(k)).unwrap();
        }
        assert_eq!(p.get(2).unwrap().get(0).unwrap(), &Value::Int(2));
        assert!(p.get(5).is_err());
        let keys: Vec<_> = p
            .tuples()
            .map(|t| match t.get(0).unwrap() {
                Value::Int(k) => *k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wire_bytes_grow_with_content() {
        let mut p = Page::new(schema(), 1016).unwrap();
        assert_eq!(p.wire_bytes(), PAGE_HEADER_BYTES);
        p.push(&tup(1)).unwrap();
        assert_eq!(p.wire_bytes(), PAGE_HEADER_BYTES + 100);
    }

    #[test]
    fn too_small_page_rejected() {
        let s = schema();
        assert!(matches!(
            Page::new(s, 50),
            Err(Error::PageTooSmall { .. })
        ));
    }

    #[test]
    fn compaction_moves_tuples() {
        let mut a = Page::new(schema(), 516).unwrap(); // cap 5
        let mut b = Page::new(schema(), 516).unwrap();
        a.push(&tup(1)).unwrap();
        for k in 10..14 {
            b.push(&tup(k)).unwrap();
        }
        let moved = a.compact_from(&mut b).unwrap();
        assert_eq!(moved, 4);
        assert_eq!(a.len(), 5);
        assert!(b.is_empty());
        // Partially-fitting case.
        let mut c = Page::new(schema(), 516).unwrap();
        for k in 20..25 {
            c.push(&tup(k)).unwrap();
        }
        let mut d = Page::new(schema(), 516).unwrap();
        d.push(&tup(30)).unwrap();
        let moved = d.compact_from(&mut c).unwrap();
        assert_eq!(moved, 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0).unwrap().get(0).unwrap(), &Value::Int(24));
    }

    #[test]
    fn compaction_schema_mismatch() {
        let other = Schema::build().attr("z", DataType::Int).finish().unwrap();
        let mut a = Page::new(schema(), 1016).unwrap();
        let mut b = Page::new(other, 1016).unwrap();
        assert!(a.compact_from(&mut b).is_err());
    }

    #[test]
    fn rejects_nonconforming_tuple() {
        let mut p = Page::new(schema(), 1016).unwrap();
        assert!(p.push(&Tuple::new(vec![Value::Int(1)])).is_err());
        assert_eq!(p.len(), 0);
    }
}

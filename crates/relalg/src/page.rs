//! Fixed-size slotted pages of encoded tuples.
//!
//! A page is the paper's central unit: the operand granularity it argues for
//! (§3.2), the thing the arbitration network carries, the thing the disk
//! cache holds. Our page is a fixed-capacity container of fixed-width tuple
//! images plus a small header. The header models the on-wire/on-disk bytes
//! the packet formats of Figure 4.3–4.4 account for ("relation name", "tuple
//! length & format", "page length").

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::tuple_ref::TupleRef;

/// Modeled page-header size in bytes: relation id (4) + page length (4) +
/// tuple count (4) + tuple width (4). All byte accounting includes it.
pub const PAGE_HEADER_BYTES: usize = 16;

/// A fixed-size page of encoded tuples.
///
/// The page owns its schema handle (cheap `Arc` clone) so that a page in
/// flight through a simulated network is self-describing, exactly like the
/// paper's instruction packets which carry "tuple length & format" alongside
/// each data page.
///
/// ```
/// use df_relalg::{DataType, Page, Schema, Tuple, Value};
/// let schema = Schema::build().attr("k", DataType::Int).finish()?;
/// let mut page = Page::new(schema, 48)?; // header 16 + 4 slots of 8
/// assert_eq!(page.capacity(), 4);
/// page.push(&Tuple::new(vec![Value::Int(7)]))?;
/// assert_eq!(page.len(), 1);
/// assert_eq!(page.wire_bytes(), 16 + 8);
/// # Ok::<(), df_relalg::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    schema: Schema,
    /// Page size in bytes, including [`PAGE_HEADER_BYTES`].
    page_size: usize,
    /// Concatenated fixed-width tuple images.
    data: Vec<u8>,
    ntuples: usize,
}

impl Page {
    /// An empty page of `page_size` bytes for tuples of `schema`.
    ///
    /// # Errors
    /// Fails if even one tuple does not fit (`page_size` too small).
    pub fn new(schema: Schema, page_size: usize) -> Result<Page> {
        let needed = PAGE_HEADER_BYTES + schema.tuple_width();
        if page_size < needed {
            return Err(Error::PageTooSmall { page_size, needed });
        }
        Ok(Page {
            schema,
            page_size,
            data: Vec::new(),
            ntuples: 0,
        })
    }

    /// The tuple schema of this page.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Configured page size in bytes (header included).
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Maximum number of tuples this page can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        (self.page_size - PAGE_HEADER_BYTES) / self.schema.tuple_width()
    }

    /// Number of tuples currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.ntuples
    }

    /// True if no tuples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ntuples == 0
    }

    /// True if another tuple cannot be appended.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ntuples >= self.capacity()
    }

    /// Bytes this page occupies on the wire / on disk: header plus the
    /// stored tuple images. A partially-full page costs only what it holds
    /// (the paper's ICs *compact* partial pages precisely to avoid shipping
    /// and storing slack).
    #[inline]
    pub fn wire_bytes(&self) -> usize {
        PAGE_HEADER_BYTES + self.data.len()
    }

    /// Append a tuple.
    ///
    /// This is the hot path: it skips the separate up-front schema sweep
    /// ([`Tuple::conforms_to`]) that [`Page::try_push`] performs — per-value
    /// encoding already rejects misfit values and a single length comparison
    /// catches arity mismatches, so nonconforming tuples still error.
    ///
    /// # Errors
    /// [`Error::PageFull`] if at capacity; schema errors if the tuple does
    /// not conform.
    pub fn push(&mut self, tuple: &Tuple) -> Result<()> {
        if self.is_full() {
            return Err(Error::PageFull);
        }
        tuple.encode_unchecked(&self.schema, &mut self.data)?;
        self.ntuples += 1;
        Ok(())
    }

    /// Append a tuple with the full up-front [`Tuple::conforms_to`]
    /// validation pass (arity *and* every value re-checked before any byte
    /// is written). Use at trust boundaries; [`Page::push`] is the hot path.
    ///
    /// # Errors
    /// [`Error::PageFull`] if at capacity; schema errors if the tuple does
    /// not conform.
    pub fn try_push(&mut self, tuple: &Tuple) -> Result<()> {
        tuple.conforms_to(&self.schema)?;
        self.push(tuple)
    }

    /// Append one raw tuple image (exactly [`Schema::tuple_width`] bytes)
    /// without decode→validate→re-encode — the zero-copy append for images
    /// lifted out of validated pages.
    ///
    /// # Errors
    /// [`Error::PageFull`] if at capacity; [`Error::Corrupt`] if the image
    /// length is not one tuple width.
    pub fn push_raw(&mut self, image: &[u8]) -> Result<()> {
        if self.is_full() {
            return Err(Error::PageFull);
        }
        if image.len() != self.schema.tuple_width() {
            return Err(Error::Corrupt {
                detail: format!(
                    "raw image of {} bytes for schema of width {}",
                    image.len(),
                    self.schema.tuple_width()
                ),
            });
        }
        self.data.extend_from_slice(image);
        self.ntuples += 1;
        Ok(())
    }

    /// Append a borrowed tuple view, memcpy'ing its image. Layout
    /// compatibility is one [`Schema::layout_eq`] check — a pointer
    /// comparison when both pages share a schema handle, which is the case
    /// for every kernel output (the instruction carries one schema).
    ///
    /// # Errors
    /// [`Error::PageFull`] if at capacity; [`Error::SchemaMismatch`] if the
    /// view's schema layout differs.
    pub fn push_ref(&mut self, tuple: &TupleRef<'_>) -> Result<()> {
        if self.is_full() {
            return Err(Error::PageFull);
        }
        if !self.schema.layout_eq(tuple.schema()) {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "pushing tuple of schema {} into page of schema {}",
                    tuple.schema(),
                    self.schema
                ),
            });
        }
        debug_assert_eq!(tuple.raw().len(), self.schema.tuple_width());
        self.data.extend_from_slice(tuple.raw());
        self.ntuples += 1;
        Ok(())
    }

    /// Bulk-append `count` whole images from `bytes` (callers — the
    /// [`crate::TupleBuf`] drain — have already checked capacity and layout;
    /// this only debug-asserts).
    #[inline]
    pub(crate) fn extend_raw(&mut self, bytes: &[u8], count: usize) {
        debug_assert_eq!(bytes.len(), count * self.schema.tuple_width());
        debug_assert!(self.ntuples + count <= self.capacity());
        self.data.extend_from_slice(bytes);
        self.ntuples += count;
    }

    /// Decode the tuple in slot `i`.
    pub fn get(&self, i: usize) -> Result<Tuple> {
        if i >= self.ntuples {
            return Err(Error::AttrIndexOutOfBounds {
                index: i,
                arity: self.ntuples,
            });
        }
        let w = self.schema.tuple_width();
        Tuple::decode(&self.schema, &self.data[i * w..])
    }

    /// Iterate over all tuples (decoding on the fly).
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        let w = self.schema.tuple_width();
        self.data
            .chunks_exact(w)
            .map(move |chunk| Tuple::decode(&self.schema, chunk).expect("page data is valid"))
    }

    /// Iterate over all tuples as borrowed zero-copy views (no decoding).
    pub fn tuple_refs(&self) -> impl Iterator<Item = TupleRef<'_>> {
        let w = self.schema.tuple_width();
        self.data
            .chunks_exact(w)
            .map(move |chunk| TupleRef::new_unchecked(&self.schema, chunk))
    }

    /// Borrow the tuple image in slot `i` without decoding.
    ///
    /// # Errors
    /// Fails if `i` is out of bounds.
    pub fn tuple_ref(&self, i: usize) -> Result<TupleRef<'_>> {
        if i >= self.ntuples {
            return Err(Error::AttrIndexOutOfBounds {
                index: i,
                arity: self.ntuples,
            });
        }
        let w = self.schema.tuple_width();
        Ok(TupleRef::new_unchecked(
            &self.schema,
            &self.data[i * w..(i + 1) * w],
        ))
    }

    /// Move as many tuples as fit from `other` into `self` (page compaction,
    /// paper §4.2: partial result pages arriving at an IC "are compressed to
    /// form full pages"). Returns the number of tuples moved.
    ///
    /// # Errors
    /// Fails if the two pages have different schemas.
    pub fn compact_from(&mut self, other: &mut Page) -> Result<usize> {
        if self.schema != other.schema {
            return Err(Error::SchemaMismatch {
                detail: "compacting pages of different schemas".into(),
            });
        }
        let w = self.schema.tuple_width();
        let room = self.capacity() - self.len();
        let take = room.min(other.ntuples);
        if take > 0 {
            self.data.extend_from_slice(&other.data[..take * w]);
            self.ntuples += take;
            other.data.drain(..take * w);
            other.ntuples -= take;
        }
        Ok(take)
    }

    /// The raw encoded tuple area (no header).
    #[inline]
    pub fn raw_data(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Display for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Page[{}/{} tuples, {} bytes]",
            self.ntuples,
            self.capacity(),
            self.wire_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn schema() -> Schema {
        Schema::build()
            .attr("k", DataType::Int)
            .attr("pad", DataType::Str(92))
            .finish()
            .unwrap()
    }

    fn tup(k: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::str("x")])
    }

    #[test]
    fn paper_capacity_math() {
        // §3.3: 100-byte tuples, 1000-byte pages "hold 10 tuples" — with our
        // explicit 16-byte header, a 1016-byte page holds exactly 10.
        let s = schema();
        assert_eq!(s.tuple_width(), 100);
        let p = Page::new(s, 1016).unwrap();
        assert_eq!(p.capacity(), 10);
    }

    #[test]
    fn push_until_full() {
        let mut p = Page::new(schema(), 316).unwrap(); // 3 tuples
        assert_eq!(p.capacity(), 3);
        for k in 0..3 {
            p.push(&tup(k)).unwrap();
        }
        assert!(p.is_full());
        assert!(matches!(p.push(&tup(9)), Err(Error::PageFull)));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn get_and_iterate() {
        let mut p = Page::new(schema(), 1016).unwrap();
        for k in 0..5 {
            p.push(&tup(k)).unwrap();
        }
        assert_eq!(p.get(2).unwrap().get(0).unwrap(), &Value::Int(2));
        assert!(p.get(5).is_err());
        let keys: Vec<_> = p
            .tuples()
            .map(|t| match t.get(0).unwrap() {
                Value::Int(k) => *k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wire_bytes_grow_with_content() {
        let mut p = Page::new(schema(), 1016).unwrap();
        assert_eq!(p.wire_bytes(), PAGE_HEADER_BYTES);
        p.push(&tup(1)).unwrap();
        assert_eq!(p.wire_bytes(), PAGE_HEADER_BYTES + 100);
    }

    #[test]
    fn too_small_page_rejected() {
        let s = schema();
        assert!(matches!(Page::new(s, 50), Err(Error::PageTooSmall { .. })));
    }

    #[test]
    fn compaction_moves_tuples() {
        let mut a = Page::new(schema(), 516).unwrap(); // cap 5
        let mut b = Page::new(schema(), 516).unwrap();
        a.push(&tup(1)).unwrap();
        for k in 10..14 {
            b.push(&tup(k)).unwrap();
        }
        let moved = a.compact_from(&mut b).unwrap();
        assert_eq!(moved, 4);
        assert_eq!(a.len(), 5);
        assert!(b.is_empty());
        // Partially-fitting case.
        let mut c = Page::new(schema(), 516).unwrap();
        for k in 20..25 {
            c.push(&tup(k)).unwrap();
        }
        let mut d = Page::new(schema(), 516).unwrap();
        d.push(&tup(30)).unwrap();
        let moved = d.compact_from(&mut c).unwrap();
        assert_eq!(moved, 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0).unwrap().get(0).unwrap(), &Value::Int(24));
    }

    #[test]
    fn compaction_schema_mismatch() {
        let other = Schema::build().attr("z", DataType::Int).finish().unwrap();
        let mut a = Page::new(schema(), 1016).unwrap();
        let mut b = Page::new(other, 1016).unwrap();
        assert!(a.compact_from(&mut b).is_err());
    }

    #[test]
    fn rejects_nonconforming_tuple() {
        let mut p = Page::new(schema(), 1016).unwrap();
        assert!(p.push(&Tuple::new(vec![Value::Int(1)])).is_err());
        assert_eq!(p.len(), 0);
        assert!(p.try_push(&Tuple::new(vec![Value::Int(1)])).is_err());
        assert_eq!(p.len(), 0);
        p.try_push(&tup(5)).unwrap();
        assert_eq!(p.get(0).unwrap(), tup(5));
    }

    #[test]
    fn tuple_refs_view_without_decoding() {
        let mut p = Page::new(schema(), 1016).unwrap();
        for k in 0..4 {
            p.push(&tup(k)).unwrap();
        }
        let decoded: Vec<Tuple> = p.tuples().collect();
        let viewed: Vec<Tuple> = p.tuple_refs().map(|r| r.to_tuple()).collect();
        assert_eq!(decoded, viewed);
        let r = p.tuple_ref(2).unwrap();
        assert_eq!(r.value(0).unwrap(), Value::Int(2));
        assert_eq!(r.raw(), &p.raw_data()[200..300]);
        assert!(p.tuple_ref(4).is_err());
    }

    #[test]
    fn raw_and_ref_pushes_are_byte_identical_to_push() {
        let mut a = Page::new(schema(), 1016).unwrap();
        let mut b = Page::new(schema(), 1016).unwrap();
        for k in 0..3 {
            a.push(&tup(k)).unwrap();
        }
        for r in a.tuple_refs() {
            b.push_ref(&r).unwrap();
        }
        assert_eq!(a, b);
        let mut c = Page::new(schema(), 1016).unwrap();
        let w = a.schema().tuple_width();
        for img in a.raw_data().chunks_exact(w) {
            c.push_raw(img).unwrap();
        }
        assert_eq!(a, c);
    }

    #[test]
    fn raw_pushes_validate_length_layout_and_capacity() {
        let mut p = Page::new(schema(), 116).unwrap(); // 1 tuple
        assert!(matches!(p.push_raw(&[0u8; 7]), Err(Error::Corrupt { .. })));
        p.push_raw(&[0u8; 100]).unwrap();
        assert!(matches!(p.push_raw(&[0u8; 100]), Err(Error::PageFull)));
        // push_ref rejects layout-incompatible sources.
        let other = Schema::build().attr("z", DataType::Int).finish().unwrap();
        let mut q = Page::new(other, 100).unwrap();
        q.push(&Tuple::new(vec![Value::Int(1)])).unwrap();
        let r = q.tuple_ref(0).unwrap();
        let mut full_schema_page = Page::new(schema(), 1016).unwrap();
        assert!(matches!(
            full_schema_page.push_ref(&r),
            Err(Error::SchemaMismatch { .. })
        ));
    }
}

//! A per-page hash index over raw key bytes.
//!
//! The tuple encoding is canonical — equal values have equal images — so an
//! equi-join key can be hashed and compared as its raw byte slice without
//! decoding. [`PageKeyIndex`] maps each distinct key image appearing in a
//! page to the slots holding it, in slot order, turning a page×page
//! nested-loops sweep (O(n·m) comparisons) into a per-tuple probe (O(n + m))
//! with output order preserved.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::page::Page;

/// A multiply-xor hasher for short fixed-width key images. Key bytes come
/// from the canonical tuple encoding of a single page — a few dozen short
/// slices, never attacker-chosen in bulk — so DoS resistance (SipHash's
/// reason to exist) buys nothing here, while per-probe cost is the hash
/// path's entire inner loop.
#[derive(Debug, Default)]
struct RawKeyHasher(u64);

impl Hasher for RawKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let w = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
            self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.0 = (self.0.rotate_left(5) ^ u64::from_le_bytes(w)).wrapping_mul(SEED);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type RawKeyMap = HashMap<Box<[u8]>, Vec<u32>, BuildHasherDefault<RawKeyHasher>>;
type WordKeyMap = HashMap<u64, Vec<u32>, BuildHasherDefault<RawKeyHasher>>;

/// The key storage, specialized on the key attribute's width.
///
/// An 8-byte key image (`Int` — the workload's join keys) is exactly one
/// machine word, so the word map hashes and compares it as a `u64` read
/// straight off the page bytes: no owned `Box<[u8]>` allocation per
/// distinct key at build time, and probes are single word compares instead
/// of slice `memcmp`s.
#[derive(Debug, Clone)]
enum KeyMap {
    Word(WordKeyMap),
    Bytes(RawKeyMap),
}

/// Read an 8-byte key image as its word (any fixed endianness works: the
/// word is only hashed and compared for equality, never ordered).
#[inline]
fn key_word(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte key image"))
}

/// A hash index over one page's raw key bytes: distinct key image → the
/// slots carrying it, in ascending slot order.
///
/// Built once per (page, key attribute); the slot lists are
/// insertion-ordered, so probing outer tuples in page order and emitting
/// each probe's slot list in order reproduces the nested-loops output
/// byte-for-byte (both visit inner slots in ascending order per outer
/// tuple).
#[derive(Debug, Clone)]
pub struct PageKeyIndex {
    key: usize,
    map: KeyMap,
}

impl PageKeyIndex {
    /// Index `page` on attribute `key` (an index into the page's schema).
    ///
    /// # Panics
    /// Panics if `key` is out of range for the page's schema.
    pub fn build(page: &Page, key: usize) -> PageKeyIndex {
        let width = page.schema().attr_range(key).len();
        let map = if width == 8 {
            let mut map =
                WordKeyMap::with_capacity_and_hasher(page.len(), BuildHasherDefault::default());
            for (slot, t) in page.tuple_refs().enumerate() {
                map.entry(key_word(t.attr_bytes(key)))
                    .or_default()
                    .push(slot as u32);
            }
            KeyMap::Word(map)
        } else {
            let mut map =
                RawKeyMap::with_capacity_and_hasher(page.len(), BuildHasherDefault::default());
            for (slot, t) in page.tuple_refs().enumerate() {
                let bytes = t.attr_bytes(key);
                // get_mut-then-insert instead of the entry API: duplicate keys
                // (the common case on fk pages) take the hit-path without
                // allocating an owned key first.
                if let Some(slots) = map.get_mut(bytes) {
                    slots.push(slot as u32);
                } else {
                    map.insert(bytes.into(), vec![slot as u32]);
                }
            }
            KeyMap::Bytes(map)
        };
        PageKeyIndex { key, map }
    }

    /// The indexed attribute.
    pub fn key(&self) -> usize {
        self.key
    }

    /// Slots whose key image equals `key_bytes`, in ascending order; empty
    /// when the key does not appear in the page (or has a different width).
    pub fn probe(&self, key_bytes: &[u8]) -> &[u32] {
        match &self.map {
            KeyMap::Word(map) => {
                if key_bytes.len() != 8 {
                    return &[];
                }
                map.get(&key_word(key_bytes)).map_or(&[], Vec::as_slice)
            }
            KeyMap::Bytes(map) => map.get(key_bytes).map_or(&[], Vec::as_slice),
        }
    }

    /// Number of distinct key values in the page.
    pub fn distinct_keys(&self) -> usize {
        match &self.map {
            KeyMap::Word(map) => map.len(),
            KeyMap::Bytes(map) => map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::{DataType, Value};

    fn enc(v: i64) -> Vec<u8> {
        let mut out = Vec::new();
        Value::Int(v).encode(DataType::Int, &mut out).unwrap();
        out
    }

    fn page(keys: &[i64]) -> Page {
        let schema = Schema::build()
            .attr("k", DataType::Int)
            .attr("v", DataType::Int)
            .finish()
            .unwrap();
        let mut p = Page::new(schema, 16 + 16 * keys.len().max(1)).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            p.push(&Tuple::new(vec![Value::Int(k), Value::Int(i as i64)]))
                .unwrap();
        }
        p
    }

    #[test]
    fn probe_returns_slots_in_page_order() {
        let p = page(&[7, 3, 7, 1, 7]);
        let idx = PageKeyIndex::build(&p, 0);
        assert_eq!(idx.key(), 0);
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.probe(&enc(7)), &[0, 2, 4]);
        assert_eq!(idx.probe(&enc(1)), &[3]);
    }

    #[test]
    fn probe_misses_are_empty() {
        let p = page(&[1, 2]);
        let idx = PageKeyIndex::build(&p, 0);
        assert!(idx.probe(&enc(99)).is_empty());
        let empty = PageKeyIndex::build(&page(&[]), 0);
        assert_eq!(empty.distinct_keys(), 0);
        assert!(empty.probe(&enc(1)).is_empty());
    }

    /// Non-8-byte keys take the byte-slice map; behaviour is identical.
    #[test]
    fn str_keys_use_byte_fallback() {
        let schema = Schema::build()
            .attr("s", DataType::Str(4))
            .attr("v", DataType::Int)
            .finish()
            .unwrap();
        let mut p = Page::new(schema, 16 + 12 * 4).unwrap();
        for (i, s) in ["aa", "bb", "aa", "c"].iter().enumerate() {
            p.push(&Tuple::new(vec![Value::str(s), Value::Int(i as i64)]))
                .unwrap();
        }
        let idx = PageKeyIndex::build(&p, 0);
        assert_eq!(idx.distinct_keys(), 3);
        let mut key = Vec::new();
        Value::str("aa").encode(DataType::Str(4), &mut key).unwrap();
        assert_eq!(idx.probe(&key), &[0, 2]);
        // A probe of the wrong width can never match.
        let word_idx = PageKeyIndex::build(&p, 1);
        assert!(word_idx.probe(&key[..4.min(key.len())]).is_empty());
    }

    #[test]
    fn indexes_any_attribute() {
        let p = page(&[5, 5, 5]);
        // Attribute 1 (`v`) holds 0, 1, 2 — all distinct.
        let idx = PageKeyIndex::build(&p, 1);
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.probe(&enc(1)), &[1]);
    }
}

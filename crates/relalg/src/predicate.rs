//! Restriction predicates and join conditions.
//!
//! Predicates are resolved against a schema at construction time (attribute
//! names become indices), so evaluation on the hot path is index-based and
//! cannot fail on name lookups.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::tuple_ref::TupleRef;
use crate::value::{cmp_encoded, cmp_encoded_value, Value};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering result.
    #[inline]
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its arguments swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Parse from the usual token (`=`, `<>`, `!=`, `<`, `<=`, `>`, `>=`).
    pub fn parse(tok: &str) -> Option<CmpOp> {
        Some(match tok {
            "=" | "==" => CmpOp::Eq,
            "<>" | "!=" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean restriction expression over one tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (the identity restriction).
    True,
    /// `attr[index] op constant`
    CmpConst {
        /// Resolved attribute index.
        index: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// `attr[left] op attr[right]` (both in the same tuple).
    CmpAttrs {
        /// Left attribute index.
        left: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right attribute index.
        right: usize,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Build `name op constant`, resolving `name` against `schema` and
    /// type-checking the constant.
    pub fn cmp_const(schema: &Schema, name: &str, op: CmpOp, value: Value) -> Result<Predicate> {
        let index = schema.index_of(name)?;
        let dtype = schema.attr(index)?.dtype;
        if !dtype.admits(&value) {
            return Err(Error::TypeMismatch {
                detail: format!("attribute {name}: {dtype} vs constant {value}"),
            });
        }
        Ok(Predicate::CmpConst { index, op, value })
    }

    /// Build `left_name op right_name` over one schema, with type checking.
    pub fn cmp_attrs(
        schema: &Schema,
        left_name: &str,
        op: CmpOp,
        right_name: &str,
    ) -> Result<Predicate> {
        let left = schema.index_of(left_name)?;
        let right = schema.index_of(right_name)?;
        let lt = schema.attr(left)?.dtype;
        let rt = schema.attr(right)?.dtype;
        if std::mem::discriminant(&lt) != std::mem::discriminant(&rt) {
            return Err(Error::TypeMismatch {
                detail: format!("{left_name}: {lt} vs {right_name}: {rt}"),
            });
        }
        Ok(Predicate::CmpAttrs { left, op, right })
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against a tuple.
    ///
    /// # Panics
    /// Panics (debug assert) if the predicate references attribute indices or
    /// types the tuple does not have — predicates must be built against the
    /// tuple's schema, which the query validator enforces.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::CmpConst { index, op, value } => {
                let v = tuple
                    .get(*index)
                    .expect("predicate resolved against schema");
                let ord = v
                    .partial_cmp_typed(value)
                    .expect("predicate type-checked against schema");
                op.test(ord)
            }
            Predicate::CmpAttrs { left, op, right } => {
                let l = tuple.get(*left).expect("predicate resolved against schema");
                let r = tuple
                    .get(*right)
                    .expect("predicate resolved against schema");
                let ord = l
                    .partial_cmp_typed(r)
                    .expect("predicate type-checked against schema");
                op.test(ord)
            }
            Predicate::And(a, b) => a.eval(tuple) && b.eval(tuple),
            Predicate::Or(a, b) => a.eval(tuple) || b.eval(tuple),
            Predicate::Not(a) => !a.eval(tuple),
        }
    }

    /// Evaluate against a borrowed tuple image without decoding it:
    /// integers are read straight out of their 8 bytes, strings compare as
    /// NUL-trimmed byte slices, booleans as their bytes. Semantically
    /// identical to [`Predicate::eval`] over the decoded tuple.
    ///
    /// # Panics
    /// Panics if the predicate references attribute indices or types the
    /// image's schema does not have — predicates must be built against the
    /// tuple's schema, which the query validator enforces.
    pub fn eval_ref(&self, tuple: &TupleRef<'_>) -> bool {
        match self {
            Predicate::True => true,
            Predicate::CmpConst { index, op, value } => {
                let ord =
                    cmp_encoded_value(tuple.attr_dtype(*index), tuple.attr_bytes(*index), value)
                        .expect("predicate type-checked against schema");
                op.test(ord)
            }
            Predicate::CmpAttrs { left, op, right } => {
                let ord = cmp_encoded(
                    tuple.attr_dtype(*left),
                    tuple.attr_bytes(*left),
                    tuple.attr_dtype(*right),
                    tuple.attr_bytes(*right),
                )
                .expect("predicate type-checked against schema");
                op.test(ord)
            }
            Predicate::And(a, b) => a.eval_ref(tuple) && b.eval_ref(tuple),
            Predicate::Or(a, b) => a.eval_ref(tuple) || b.eval_ref(tuple),
            Predicate::Not(a) => !a.eval_ref(tuple),
        }
    }

    /// Check that every attribute index referenced is within `schema`'s
    /// arity. (Used by the query validator when a predicate is attached to a
    /// node whose input schema is derived.)
    pub fn validate_against(&self, schema: &Schema) -> Result<()> {
        let check = |i: usize| -> Result<()> { schema.attr(i).map(|_| ()) };
        match self {
            Predicate::True => Ok(()),
            Predicate::CmpConst { index, value, .. } => {
                check(*index)?;
                let dtype = schema.attr(*index)?.dtype;
                if !dtype.admits(value) {
                    return Err(Error::TypeMismatch {
                        detail: format!("index {index}: {dtype} vs constant {value}"),
                    });
                }
                Ok(())
            }
            Predicate::CmpAttrs { left, right, .. } => {
                check(*left)?;
                check(*right)
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate_against(schema)?;
                b.validate_against(schema)
            }
            Predicate::Not(a) => a.validate_against(schema),
        }
    }

    /// Rewrite attribute indices through `map`: index `i` becomes `map[i]`.
    ///
    /// Used when a predicate written against a projected schema is pushed
    /// back onto the pre-projection tuple layout (fused restrict/project
    /// spans): attribute `i` of the projection output is attribute `map[i]`
    /// of the input, and the canonical encoding guarantees the bytes — and
    /// therefore the comparison results — are identical.
    ///
    /// # Panics
    /// Panics if the predicate references an index at or beyond `map.len()`.
    pub fn remap(&self, map: &[usize]) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::CmpConst { index, op, value } => Predicate::CmpConst {
                index: map[*index],
                op: *op,
                value: value.clone(),
            },
            Predicate::CmpAttrs { left, op, right } => Predicate::CmpAttrs {
                left: map[*left],
                op: *op,
                right: map[*right],
            },
            Predicate::And(a, b) => Predicate::And(Box::new(a.remap(map)), Box::new(b.remap(map))),
            Predicate::Or(a, b) => Predicate::Or(Box::new(a.remap(map)), Box::new(b.remap(map))),
            Predicate::Not(a) => Predicate::Not(Box::new(a.remap(map))),
        }
    }

    /// A crude selectivity estimate, used only for workload documentation
    /// (the simulators measure, they never estimate).
    pub fn describe(&self, schema: &Schema) -> String {
        match self {
            Predicate::True => "true".into(),
            Predicate::CmpConst { index, op, value } => {
                let name = schema
                    .attr(*index)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|_| format!("#{index}"));
                format!("{name} {op} {value}")
            }
            Predicate::CmpAttrs { left, op, right } => {
                let l = schema
                    .attr(*left)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|_| format!("#{left}"));
                let r = schema
                    .attr(*right)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|_| format!("#{right}"));
                format!("{l} {op} {r}")
            }
            Predicate::And(a, b) => format!("({} and {})", a.describe(schema), b.describe(schema)),
            Predicate::Or(a, b) => format!("({} or {})", a.describe(schema), b.describe(schema)),
            Predicate::Not(a) => format!("(not {})", a.describe(schema)),
        }
    }
}

impl fmt::Display for Predicate {
    /// Index-based rendering (`#2 > 5`); use [`Predicate::describe`] for
    /// name-based rendering against a schema.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::CmpConst { index, op, value } => write!(f, "#{index} {op} {value}"),
            Predicate::CmpAttrs { left, op, right } => write!(f, "#{left} {op} #{right}"),
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(a) => write!(f, "(not {a})"),
        }
    }
}

/// The θ of a θ-join: `outer.attr[left] op inner.attr[right]`.
///
/// Indices are resolved against the *outer* and *inner* schemas respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCondition {
    /// Attribute index in the outer (left) relation.
    pub left: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Attribute index in the inner (right) relation.
    pub right: usize,
}

impl JoinCondition {
    /// Build from attribute names against the two input schemas.
    pub fn new(
        outer: &Schema,
        left_name: &str,
        op: CmpOp,
        inner: &Schema,
        right_name: &str,
    ) -> Result<JoinCondition> {
        let left = outer.index_of(left_name)?;
        let right = inner.index_of(right_name)?;
        let lt = outer.attr(left)?.dtype;
        let rt = inner.attr(right)?.dtype;
        if std::mem::discriminant(&lt) != std::mem::discriminant(&rt) {
            return Err(Error::TypeMismatch {
                detail: format!("join {left_name}: {lt} vs {right_name}: {rt}"),
            });
        }
        Ok(JoinCondition { left, op, right })
    }

    /// Equi-join shorthand.
    pub fn equi(
        outer: &Schema,
        left_name: &str,
        inner: &Schema,
        right_name: &str,
    ) -> Result<JoinCondition> {
        JoinCondition::new(outer, left_name, CmpOp::Eq, inner, right_name)
    }

    /// Test one tuple pair.
    pub fn matches(&self, outer: &Tuple, inner: &Tuple) -> bool {
        let l = outer
            .get(self.left)
            .expect("join condition resolved against schema");
        let r = inner
            .get(self.right)
            .expect("join condition resolved against schema");
        let ord = l
            .partial_cmp_typed(r)
            .expect("join condition type-checked against schemas");
        self.op.test(ord)
    }

    /// Test one borrowed tuple-image pair without decoding.
    ///
    /// An equi (or not-equal) comparison over equal-width keys is a straight
    /// `memcmp` of the raw key bytes — the encoding is canonical, so images
    /// are equal exactly when the values are. Ordering comparisons (and
    /// mixed-width string keys) fall back to the typed encoded comparison.
    pub fn matches_ref(&self, outer: &TupleRef<'_>, inner: &TupleRef<'_>) -> bool {
        let (lb, rb) = (outer.attr_bytes(self.left), inner.attr_bytes(self.right));
        match self.op {
            CmpOp::Eq if lb.len() == rb.len() => lb == rb,
            CmpOp::Ne if lb.len() == rb.len() => lb != rb,
            op => {
                let ord = cmp_encoded(
                    outer.attr_dtype(self.left),
                    lb,
                    inner.attr_dtype(self.right),
                    rb,
                )
                .expect("join condition type-checked against schemas");
                op.test(ord)
            }
        }
    }

    /// Validate indices against the two input schemas.
    pub fn validate_against(&self, outer: &Schema, inner: &Schema) -> Result<()> {
        outer.attr(self.left)?;
        inner.attr(self.right)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::build()
            .attr("a", DataType::Int)
            .attr("b", DataType::Int)
            .attr("s", DataType::Str(8))
            .finish()
            .unwrap()
    }

    fn tup(a: i64, b: i64, s: &str) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Int(b), Value::str(s)])
    }

    #[test]
    fn cmp_op_semantics() {
        use Ordering::*;
        assert!(CmpOp::Eq.test(Equal) && !CmpOp::Eq.test(Less));
        assert!(CmpOp::Ne.test(Less) && !CmpOp::Ne.test(Equal));
        assert!(CmpOp::Lt.test(Less) && !CmpOp::Lt.test(Equal));
        assert!(CmpOp::Le.test(Equal) && !CmpOp::Le.test(Greater));
        assert!(CmpOp::Gt.test(Greater) && !CmpOp::Gt.test(Equal));
        assert!(CmpOp::Ge.test(Equal) && !CmpOp::Ge.test(Less));
    }

    #[test]
    fn cmp_op_flip_round_trips() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
    }

    #[test]
    fn cmp_op_parse() {
        assert_eq!(CmpOp::parse("="), Some(CmpOp::Eq));
        assert_eq!(CmpOp::parse("!="), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse(">="), Some(CmpOp::Ge));
        assert_eq!(CmpOp::parse("~"), None);
    }

    #[test]
    fn const_predicate() {
        let s = schema();
        let p = Predicate::cmp_const(&s, "a", CmpOp::Gt, Value::Int(5)).unwrap();
        assert!(p.eval(&tup(6, 0, "x")));
        assert!(!p.eval(&tup(5, 0, "x")));
    }

    #[test]
    fn attr_predicate() {
        let s = schema();
        let p = Predicate::cmp_attrs(&s, "a", CmpOp::Le, "b").unwrap();
        assert!(p.eval(&tup(1, 2, "x")));
        assert!(!p.eval(&tup(3, 2, "x")));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let a = Predicate::cmp_const(&s, "a", CmpOp::Gt, Value::Int(0)).unwrap();
        let b = Predicate::cmp_const(&s, "b", CmpOp::Lt, Value::Int(10)).unwrap();
        let p = a.clone().and(b.clone());
        assert!(p.eval(&tup(1, 5, "x")));
        assert!(!p.eval(&tup(1, 15, "x")));
        let q = a.clone().or(b);
        assert!(q.eval(&tup(-1, 5, "x")));
        assert!(a.not().eval(&tup(-1, 0, "x")));
    }

    #[test]
    fn construction_type_checks() {
        let s = schema();
        assert!(Predicate::cmp_const(&s, "a", CmpOp::Eq, Value::str("no")).is_err());
        assert!(Predicate::cmp_attrs(&s, "a", CmpOp::Eq, "s").is_err());
        assert!(Predicate::cmp_const(&s, "missing", CmpOp::Eq, Value::Int(0)).is_err());
    }

    #[test]
    fn validate_against_other_schema() {
        let s = schema();
        let p = Predicate::cmp_const(&s, "s", CmpOp::Eq, Value::str("hi")).unwrap();
        assert!(p.validate_against(&s).is_ok());
        let narrow = Schema::build().attr("x", DataType::Int).finish().unwrap();
        assert!(p.validate_against(&narrow).is_err());
    }

    #[test]
    fn join_condition() {
        let s = schema();
        let j = JoinCondition::equi(&s, "a", &s, "b").unwrap();
        assert!(j.matches(&tup(7, 0, "x"), &tup(0, 7, "y")));
        assert!(!j.matches(&tup(7, 0, "x"), &tup(0, 8, "y")));
        assert!(JoinCondition::equi(&s, "a", &s, "s").is_err());
        assert!(j.validate_against(&s, &s).is_ok());
    }

    /// Every predicate shape must agree between the decoded and zero-copy
    /// evaluators on every tuple.
    #[test]
    fn eval_ref_matches_eval() {
        let s = schema();
        let preds = vec![
            Predicate::True,
            Predicate::cmp_const(&s, "a", CmpOp::Gt, Value::Int(0)).unwrap(),
            Predicate::cmp_const(&s, "s", CmpOp::Le, Value::str("m")).unwrap(),
            Predicate::cmp_attrs(&s, "a", CmpOp::Lt, "b").unwrap(),
            Predicate::cmp_const(&s, "a", CmpOp::Ne, Value::Int(-1))
                .unwrap()
                .and(Predicate::cmp_const(&s, "b", CmpOp::Ge, Value::Int(0)).unwrap())
                .or(Predicate::cmp_const(&s, "s", CmpOp::Eq, Value::str("zz"))
                    .unwrap()
                    .not()),
        ];
        let tuples = vec![
            tup(-1, 0, ""),
            tup(0, 0, "m"),
            tup(1, -5, "zz"),
            tup(i64::MAX, i64::MIN, "abcdefgh"),
        ];
        for p in &preds {
            for t in &tuples {
                let mut img = Vec::new();
                t.encode(&s, &mut img).unwrap();
                let r = crate::TupleRef::new(&s, &img).unwrap();
                assert_eq!(p.eval_ref(&r), p.eval(t), "pred {p} tuple {t}");
            }
        }
    }

    #[test]
    fn matches_ref_agrees_with_matches() {
        let s = schema();
        let wide = Schema::build()
            .attr("a", DataType::Int)
            .attr("b", DataType::Int)
            .attr("s", DataType::Str(16)) // different string width than `s`
            .finish()
            .unwrap();
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let pairs = [
            (tup(1, 0, "x"), tup(1, 0, "x")),
            (tup(1, 0, "ab"), tup(2, 0, "abc")),
            (tup(-5, 0, "zz"), tup(-5, 1, "a")),
        ];
        for op in ops {
            for (l, r) in &pairs {
                let mut li = Vec::new();
                let mut ri = Vec::new();
                l.encode(&s, &mut li).unwrap();
                r.encode(&wide, &mut ri).unwrap();
                let lr = crate::TupleRef::new(&s, &li).unwrap();
                let rr = crate::TupleRef::new(&wide, &ri).unwrap();
                // Int keys (same width -> memcmp fast path for Eq/Ne).
                let ji = JoinCondition {
                    left: 0,
                    op,
                    right: 0,
                };
                assert_eq!(ji.matches_ref(&lr, &rr), ji.matches(l, r), "{op} int");
                // Str keys of different declared widths (typed fallback).
                let js = JoinCondition {
                    left: 2,
                    op,
                    right: 2,
                };
                assert_eq!(js.matches_ref(&lr, &rr), js.matches(l, r), "{op} str");
            }
        }
    }

    /// Remapping through the projection's index list makes a post-projection
    /// predicate agree with the pre-projection tuple.
    #[test]
    fn remap_rewrites_indices_through_projection() {
        // Projected schema (b, a): predicate `#0 > #1` there means `b > a`.
        let p = Predicate::CmpAttrs {
            left: 0,
            op: CmpOp::Gt,
            right: 1,
        }
        .and(Predicate::CmpConst {
            index: 0,
            op: CmpOp::Ne,
            value: Value::Int(9),
        })
        .or(Predicate::True.not());
        let remapped = p.remap(&[1, 0]); // projection kept (b, a) of (a, b, s)
        for t in [tup(1, 2, "x"), tup(2, 1, "x"), tup(3, 9, "x")] {
            let projected = Tuple::new(vec![t.get(1).unwrap().clone(), t.get(0).unwrap().clone()]);
            assert_eq!(remapped.eval(&t), p.eval(&projected), "tuple {t}");
        }
    }

    #[test]
    fn display_renders_indices() {
        let s = schema();
        let p = Predicate::cmp_const(&s, "a", CmpOp::Gt, Value::Int(5))
            .unwrap()
            .or(Predicate::cmp_attrs(&s, "a", CmpOp::Le, "b").unwrap().not());
        assert_eq!(format!("{p}"), "(#0 > 5 or (not #0 <= #1))");
    }

    #[test]
    fn describe_renders_names() {
        let s = schema();
        let p = Predicate::cmp_const(&s, "a", CmpOp::Gt, Value::Int(5))
            .unwrap()
            .and(Predicate::True);
        assert_eq!(p.describe(&s), "(a > 5 and true)");
    }
}

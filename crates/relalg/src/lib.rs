//! # df-relalg — the relational data model
//!
//! The 1979/1980 Boral & DeWitt paper assumes the relational model of its
//! host system DIRECT: relations of **fixed-format tuples** stored in
//! **fixed-size pages**, with a page table mapping each relation to its pages
//! (paper §2.3). This crate implements that model:
//!
//! * [`DataType`] / [`Value`] — a small 1979-plausible type system (64-bit
//!   integers, booleans, fixed-length strings),
//! * [`Schema`] — an ordered list of named, typed attributes with a fixed
//!   tuple width,
//! * [`Tuple`] — a typed row, with an exact fixed-width wire encoding
//!   (`encode`/`decode`) so that all byte accounting in the simulators is
//!   bit-precise,
//! * [`Page`] — a fixed-size slotted page of encoded tuples (the paper's unit
//!   of scheduling for page-level granularity),
//! * [`TupleRef`] / [`TupleBuf`] — borrowed zero-copy views over encoded
//!   tuple images and owned batches of them: the hot path operator kernels
//!   evaluate on, so surviving tuples are memcpy'd rather than
//!   decoded→validated→re-encoded,
//! * [`PageKeyIndex`] — a per-page hash index over raw key bytes (the
//!   equi-join probe path builds one per inner page),
//! * [`Relation`] — a named schema plus a sequence of pages,
//! * [`Predicate`] / [`CmpOp`] — boolean restriction expressions,
//! * [`JoinCondition`] — the θ of a θ-join (attribute-vs-attribute compare),
//! * [`Projection`] — an attribute list with output-schema derivation,
//! * [`Catalog`] — a named collection of relations (the "database").
//!
//! ```
//! use df_relalg::{Catalog, DataType, Predicate, CmpOp, Relation, Schema, Tuple, Value};
//!
//! let schema = Schema::build()
//!     .attr("id", DataType::Int)
//!     .attr("name", DataType::Str(12))
//!     .finish()
//!     .unwrap();
//! let mut emp = Relation::new("emp", schema, 1000).unwrap();
//! emp.append(Tuple::new(vec![Value::Int(1), Value::str("alice")])).unwrap();
//! emp.append(Tuple::new(vec![Value::Int(2), Value::str("bob")])).unwrap();
//!
//! let p = Predicate::cmp_const(emp.schema(), "id", CmpOp::Gt, Value::Int(1)).unwrap();
//! let hits: Vec<_> = emp.tuples().filter(|t| p.eval(t)).collect();
//! assert_eq!(hits.len(), 1);
//!
//! let mut db = Catalog::new();
//! db.insert(emp).unwrap();
//! assert!(db.get("emp").is_some());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod catalog;
mod error;
mod key_index;
mod page;
mod predicate;
mod projection;
mod relation;
mod schema;
mod tuple;
mod tuple_ref;
mod value;

pub use catalog::Catalog;
pub use error::{Error, Result};
pub use key_index::PageKeyIndex;
pub use page::{Page, PAGE_HEADER_BYTES};
pub use predicate::{CmpOp, JoinCondition, Predicate};
pub use projection::Projection;
pub use relation::Relation;
pub use schema::{Attribute, Schema, SchemaBuilder};
pub use tuple::Tuple;
pub use tuple_ref::{TupleBuf, TupleRef};
pub use value::{cmp_encoded, cmp_encoded_value, DataType, Value};

//! Workspace glue crate hosting the root tests/ directory.

//! # df-opt — a rule-based optimizer for relational algebra query trees
//!
//! The paper assumes queries arrive at the machine already in query-tree
//! form from a host computer; DIRECT's host-side front end performed the
//! kind of algebraic clean-up this crate implements. The optimizer rewrites
//! a [`QueryTree`](df_query::QueryTree) into an equivalent one that the data-flow machines
//! execute faster:
//!
//! * **predicate pushdown** — σ over ⋈/×/∪/− /π migrates toward the leaves
//!   (with exact attribute-index remapping through joins and projections),
//!   shrinking the pages that cross the arbitration network;
//! * **restrict fusion** — adjacent σs merge into one conjunction, halving
//!   instruction count;
//! * **predicate simplification** — `¬¬p → p`, `p ∧ true → p`, etc.;
//! * **join input ordering** — cost-based outer/inner swap (the machines
//!   parallelize over *outer* pages and broadcast *inner* pages, so the
//!   larger input belongs outside), with a compensating projection keeping
//!   the output schema identical;
//! * **projection collapse** — π over π composes.
//!
//! [`CatalogStats`] supplies exact base-relation statistics and uniformity-
//! based selectivity estimates; [`estimate`] derives per-node cardinalities;
//! [`optimize`] applies the rules to a fixpoint and reports what fired.
//!
//! Every rewrite is semantics-preserving: the property tests run random
//! trees through the oracle before and after and require identical
//! multisets.
//!
//! ```
//! use df_opt::{optimize, CatalogStats};
//! use df_query::parse_query;
//! use df_workload::{generate_database, DatabaseSpec};
//!
//! let db = generate_database(&DatabaseSpec::scaled(0.01));
//! let q = parse_query(&db, "(restrict (join (scan r01) (scan r02) (= fk key))
//!                                     (and (< val 300) (> r_val 200)))").unwrap();
//! let stats = CatalogStats::gather(&db);
//! let opt = optimize(&db, &q, &stats).unwrap();
//! // Both restrict conjuncts moved below the join.
//! assert!(opt.applied.iter().any(|r| r.contains("pushdown")));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod estimate;
mod rules;
mod stats;

pub use estimate::{estimate, NodeEstimates};
pub use rules::{optimize, Optimized};
pub use stats::{CatalogStats, RelationStats};

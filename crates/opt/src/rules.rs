//! The rewrite rules and the optimizer driver.
//!
//! Rewrites operate on an owned recursive tree ([`RNode`]) converted from
//! the arena-based [`QueryTree`], which makes structural surgery (splitting
//! a conjunction across a join, inserting a compensating projection)
//! straightforward. Every rule preserves semantics exactly — the property
//! tests compare oracle outputs before and after on random trees.

use df_query::{validate, NodeId, Op, QueryNode, QueryTree};
use df_relalg::{Catalog, CmpOp, Error, JoinCondition, Predicate, Projection, Result, Schema};

use crate::stats::CatalogStats;

/// The optimizer's result: the rewritten tree and the rules that fired.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rewritten, validated query tree.
    pub tree: QueryTree,
    /// Human-readable names of the rules applied, in order.
    pub applied: Vec<String>,
}

/// Owned working representation.
#[derive(Debug, Clone)]
enum RNode {
    Scan(String),
    Restrict {
        predicate: Predicate,
        input: Box<RNode>,
    },
    Project {
        projection: Projection,
        dedup: bool,
        input: Box<RNode>,
    },
    Join {
        condition: JoinCondition,
        left: Box<RNode>,
        right: Box<RNode>,
    },
    Cross {
        left: Box<RNode>,
        right: Box<RNode>,
    },
    Union {
        left: Box<RNode>,
        right: Box<RNode>,
    },
    Difference {
        left: Box<RNode>,
        right: Box<RNode>,
    },
    Append {
        target: String,
        input: Box<RNode>,
    },
    Delete {
        target: String,
        predicate: Predicate,
    },
}

// ------------------------------------------------------------- conversion

fn to_rnode(tree: &QueryTree, id: NodeId) -> RNode {
    let node = tree.node(id);
    let child = |i: usize| Box::new(to_rnode(tree, node.children[i]));
    match &node.op {
        Op::Scan { relation } => RNode::Scan(relation.clone()),
        Op::Restrict { predicate } => RNode::Restrict {
            predicate: predicate.clone(),
            input: child(0),
        },
        Op::Project { projection, dedup } => RNode::Project {
            projection: projection.clone(),
            dedup: *dedup,
            input: child(0),
        },
        Op::Join { condition } => RNode::Join {
            condition: *condition,
            left: child(0),
            right: child(1),
        },
        Op::CrossProduct => RNode::Cross {
            left: child(0),
            right: child(1),
        },
        Op::Union => RNode::Union {
            left: child(0),
            right: child(1),
        },
        Op::Difference => RNode::Difference {
            left: child(0),
            right: child(1),
        },
        Op::Append { target } => RNode::Append {
            target: target.clone(),
            input: child(0),
        },
        Op::Delete { target, predicate } => RNode::Delete {
            target: target.clone(),
            predicate: predicate.clone(),
        },
    }
}

fn from_rnode(node: &RNode, arena: &mut Vec<QueryNode>) -> NodeId {
    let (op, children) = match node {
        RNode::Scan(name) => (
            Op::Scan {
                relation: name.clone(),
            },
            vec![],
        ),
        RNode::Restrict { predicate, input } => (
            Op::Restrict {
                predicate: predicate.clone(),
            },
            vec![from_rnode(input, arena)],
        ),
        RNode::Project {
            projection,
            dedup,
            input,
        } => (
            Op::Project {
                projection: projection.clone(),
                dedup: *dedup,
            },
            vec![from_rnode(input, arena)],
        ),
        RNode::Join {
            condition,
            left,
            right,
        } => (
            Op::Join {
                condition: *condition,
            },
            vec![from_rnode(left, arena), from_rnode(right, arena)],
        ),
        RNode::Cross { left, right } => (
            Op::CrossProduct,
            vec![from_rnode(left, arena), from_rnode(right, arena)],
        ),
        RNode::Union { left, right } => (
            Op::Union,
            vec![from_rnode(left, arena), from_rnode(right, arena)],
        ),
        RNode::Difference { left, right } => (
            Op::Difference,
            vec![from_rnode(left, arena), from_rnode(right, arena)],
        ),
        RNode::Append { target, input } => (
            Op::Append {
                target: target.clone(),
            },
            vec![from_rnode(input, arena)],
        ),
        RNode::Delete { target, predicate } => (
            Op::Delete {
                target: target.clone(),
                predicate: predicate.clone(),
            },
            vec![],
        ),
    };
    arena.push(QueryNode { op, children });
    NodeId(arena.len() - 1)
}

/// Output schema of an [`RNode`] (needed for index arithmetic).
fn schema_of(node: &RNode, db: &Catalog) -> Result<Schema> {
    match node {
        RNode::Scan(name) => Ok(db.require(name)?.schema().clone()),
        RNode::Restrict { input, .. } => schema_of(input, db),
        RNode::Project {
            projection, input, ..
        } => projection.output_schema(&schema_of(input, db)?),
        RNode::Join { left, right, .. } | RNode::Cross { left, right } => {
            Ok(schema_of(left, db)?.concat(&schema_of(right, db)?))
        }
        RNode::Union { left, .. } | RNode::Difference { left, .. } => schema_of(left, db),
        RNode::Append { input, .. } => schema_of(input, db),
        RNode::Delete { target, .. } => Ok(db.require(target)?.schema().clone()),
    }
}

/// Estimated output rows (mirrors `crate::estimate` on the working tree).
fn est_rows(node: &RNode, db: &Catalog, stats: &CatalogStats) -> f64 {
    match node {
        RNode::Scan(name) => stats
            .get(name)
            .map(|s| s.tuples as f64)
            .unwrap_or_else(|| db.get(name).map(|r| r.num_tuples() as f64).unwrap_or(0.0)),
        RNode::Restrict { predicate, input } => {
            let sel = leftmost_scan(input)
                .and_then(|name| stats.get(&name).map(|s| s.predicate_selectivity(predicate)))
                .unwrap_or(1.0 / 3.0);
            est_rows(input, db, stats) * sel
        }
        RNode::Project { dedup, input, .. } => {
            let n = est_rows(input, db, stats);
            if *dedup {
                n.sqrt().max(1.0).min(n)
            } else {
                n
            }
        }
        RNode::Join {
            condition,
            left,
            right,
        } => {
            let (l, r) = (est_rows(left, db, stats), est_rows(right, db, stats));
            if condition.op == CmpOp::Eq {
                let d = [leftmost_scan(left), leftmost_scan(right)]
                    .into_iter()
                    .flatten()
                    .filter_map(|n| stats.get(&n).map(|s| s.tuples))
                    .max()
                    .unwrap_or(10)
                    .max(1);
                l * r / d as f64
            } else {
                l * r / 3.0
            }
        }
        RNode::Cross { left, right } => est_rows(left, db, stats) * est_rows(right, db, stats),
        RNode::Union { left, right } => est_rows(left, db, stats) + est_rows(right, db, stats),
        RNode::Difference { left, right } => {
            (est_rows(left, db, stats) - est_rows(right, db, stats)).max(0.0)
        }
        RNode::Append { input, .. } => est_rows(input, db, stats),
        RNode::Delete { target, .. } => stats
            .get(target)
            .map(|s| s.tuples as f64 / 3.0)
            .unwrap_or(0.0),
    }
}

fn leftmost_scan(node: &RNode) -> Option<String> {
    match node {
        RNode::Scan(name) => Some(name.clone()),
        RNode::Restrict { input, .. }
        | RNode::Project { input, .. }
        | RNode::Append { input, .. } => leftmost_scan(input),
        RNode::Join { left, .. }
        | RNode::Cross { left, .. }
        | RNode::Union { left, .. }
        | RNode::Difference { left, .. } => leftmost_scan(left),
        RNode::Delete { target, .. } => Some(target.clone()),
    }
}

// --------------------------------------------------------- predicate utils

/// All attribute indices a predicate references.
fn pred_refs(p: &Predicate, out: &mut Vec<usize>) {
    match p {
        Predicate::True => {}
        Predicate::CmpConst { index, .. } => out.push(*index),
        Predicate::CmpAttrs { left, right, .. } => {
            out.push(*left);
            out.push(*right);
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            pred_refs(a, out);
            pred_refs(b, out);
        }
        Predicate::Not(a) => pred_refs(a, out),
    }
}

/// Rewrite every attribute index through `f`.
fn pred_remap(p: &Predicate, f: &impl Fn(usize) -> usize) -> Predicate {
    match p {
        Predicate::True => Predicate::True,
        Predicate::CmpConst { index, op, value } => Predicate::CmpConst {
            index: f(*index),
            op: *op,
            value: value.clone(),
        },
        Predicate::CmpAttrs { left, op, right } => Predicate::CmpAttrs {
            left: f(*left),
            op: *op,
            right: f(*right),
        },
        Predicate::And(a, b) => pred_remap(a, f).and(pred_remap(b, f)),
        Predicate::Or(a, b) => pred_remap(a, f).or(pred_remap(b, f)),
        Predicate::Not(a) => pred_remap(a, f).not(),
    }
}

/// Split a top-level conjunction into its conjuncts.
fn conjuncts(p: Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut out = conjuncts(*a);
            out.extend(conjuncts(*b));
            out
        }
        other => vec![other],
    }
}

/// Rebuild a conjunction (None for an empty list ≡ True).
fn conjoin(ps: Vec<Predicate>) -> Predicate {
    ps.into_iter()
        .reduce(|a, b| a.and(b))
        .unwrap_or(Predicate::True)
}

/// Algebraic simplification: `p ∧ true → p`, `¬¬p → p`, `true ∨ p → true`.
fn simplify_pred(p: Predicate) -> (Predicate, bool) {
    match p {
        Predicate::And(a, b) => {
            let (a, ca) = simplify_pred(*a);
            let (b, cb) = simplify_pred(*b);
            match (a, b) {
                (Predicate::True, x) | (x, Predicate::True) => (x, true),
                (a, b) => (a.and(b), ca || cb),
            }
        }
        Predicate::Or(a, b) => {
            let (a, ca) = simplify_pred(*a);
            let (b, cb) = simplify_pred(*b);
            match (a, b) {
                (Predicate::True, _) | (_, Predicate::True) => (Predicate::True, true),
                (a, b) => (a.or(b), ca || cb),
            }
        }
        Predicate::Not(inner) => {
            let (inner, ci) = simplify_pred(*inner);
            match inner {
                Predicate::Not(x) => (*x, true),
                other => (other.not(), ci),
            }
        }
        leaf => (leaf, false),
    }
}

// ------------------------------------------------------------------ rules

struct Rewriter<'a> {
    db: &'a Catalog,
    stats: &'a CatalogStats,
    applied: Vec<String>,
}

impl<'a> Rewriter<'a> {
    /// One full bottom-up pass; returns the rewritten node and whether
    /// anything changed.
    fn pass(&mut self, node: RNode) -> Result<(RNode, bool)> {
        // Rewrite children first.
        let (node, child_changed) = self.rewrite_children(node)?;
        // Then try the local rules until none fires at this node.
        let mut node = node;
        let mut changed = child_changed;
        loop {
            let (next, fired) = self.apply_local(node)?;
            node = next;
            if !fired {
                break;
            }
            changed = true;
        }
        Ok((node, changed))
    }

    fn rewrite_children(&mut self, node: RNode) -> Result<(RNode, bool)> {
        Ok(match node {
            RNode::Restrict { predicate, input } => {
                let (input, c) = self.pass(*input)?;
                (
                    RNode::Restrict {
                        predicate,
                        input: Box::new(input),
                    },
                    c,
                )
            }
            RNode::Project {
                projection,
                dedup,
                input,
            } => {
                let (input, c) = self.pass(*input)?;
                (
                    RNode::Project {
                        projection,
                        dedup,
                        input: Box::new(input),
                    },
                    c,
                )
            }
            RNode::Join {
                condition,
                left,
                right,
            } => {
                let (left, cl) = self.pass(*left)?;
                let (right, cr) = self.pass(*right)?;
                (
                    RNode::Join {
                        condition,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    cl || cr,
                )
            }
            RNode::Cross { left, right } => {
                let (left, cl) = self.pass(*left)?;
                let (right, cr) = self.pass(*right)?;
                (
                    RNode::Cross {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    cl || cr,
                )
            }
            RNode::Union { left, right } => {
                let (left, cl) = self.pass(*left)?;
                let (right, cr) = self.pass(*right)?;
                (
                    RNode::Union {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    cl || cr,
                )
            }
            RNode::Difference { left, right } => {
                let (left, cl) = self.pass(*left)?;
                let (right, cr) = self.pass(*right)?;
                (
                    RNode::Difference {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    cl || cr,
                )
            }
            RNode::Append { target, input } => {
                let (input, c) = self.pass(*input)?;
                (
                    RNode::Append {
                        target,
                        input: Box::new(input),
                    },
                    c,
                )
            }
            leaf @ (RNode::Scan(_) | RNode::Delete { .. }) => (leaf, false),
        })
    }

    /// Try each local rule at `node`; returns (node, fired).
    fn apply_local(&mut self, node: RNode) -> Result<(RNode, bool)> {
        match node {
            // Rule: predicate simplification.
            RNode::Restrict { predicate, input } => {
                let (predicate, simplified) = simplify_pred(predicate);
                if simplified {
                    self.applied.push("simplify-predicate".into());
                }
                // Rule: σ(true) elimination.
                if matches!(predicate, Predicate::True) {
                    self.applied.push("drop-trivial-restrict".into());
                    return Ok((*input, true));
                }
                // Rule: restrict fusion.
                if let RNode::Restrict {
                    predicate: inner_p,
                    input: inner_in,
                } = *input
                {
                    self.applied.push("fuse-restricts".into());
                    return Ok((
                        RNode::Restrict {
                            predicate: predicate.and(inner_p),
                            input: inner_in,
                        },
                        true,
                    ));
                }
                // Rule: pushdown.
                if let Some(rewritten) = self.push_restrict(predicate.clone(), *input.clone())? {
                    return Ok((rewritten, true));
                }
                Ok((RNode::Restrict { predicate, input }, simplified))
            }
            // Rule: projection collapse (inner must be duplicate-preserving).
            RNode::Project {
                projection,
                dedup,
                input,
            } => {
                if let RNode::Project {
                    projection: inner_proj,
                    dedup: false,
                    input: inner_in,
                } = *input
                {
                    let composed: Vec<usize> = projection
                        .indices()
                        .iter()
                        .map(|&i| inner_proj.indices()[i])
                        .collect();
                    let inner_schema = schema_of(&inner_in, self.db)?;
                    let projection = Projection::from_indices(&inner_schema, composed)?;
                    self.applied.push("collapse-projections".into());
                    return Ok((
                        RNode::Project {
                            projection,
                            dedup,
                            input: inner_in,
                        },
                        true,
                    ));
                }
                Ok((
                    RNode::Project {
                        projection,
                        dedup,
                        input,
                    },
                    false,
                ))
            }
            // Rule: join input ordering — the machines parallelize over
            // outer pages and broadcast inner pages, so the larger input
            // belongs outside. A compensating projection restores the
            // original column order.
            RNode::Join {
                condition,
                left,
                right,
            } => {
                let l_rows = est_rows(&left, self.db, self.stats);
                let r_rows = est_rows(&right, self.db, self.stats);
                if l_rows * 1.2 < r_rows {
                    let l_schema = schema_of(&left, self.db)?;
                    let r_schema = schema_of(&right, self.db)?;
                    let original = l_schema.concat(&r_schema);
                    let (l_arity, r_arity) = (l_schema.arity(), r_schema.arity());
                    let flipped = JoinCondition {
                        left: condition.right,
                        op: condition.op.flip(),
                        right: condition.left,
                    };
                    let swapped = RNode::Join {
                        condition: flipped,
                        left: right,
                        right: left,
                    };
                    // Restore the original column order *and names* (concat
                    // renames collide differently after the swap).
                    let perm: Vec<usize> = (0..l_arity)
                        .map(|i| r_arity + i)
                        .chain(0..r_arity)
                        .collect();
                    let names: Vec<String> =
                        original.attrs().iter().map(|a| a.name.clone()).collect();
                    let swapped_schema = schema_of(&swapped, self.db)?;
                    let projection = Projection::with_renames(&swapped_schema, perm, names)?;
                    self.applied.push("swap-join-inputs".into());
                    return Ok((
                        RNode::Project {
                            projection,
                            dedup: false,
                            input: Box::new(swapped),
                        },
                        true,
                    ));
                }
                Ok((
                    RNode::Join {
                        condition,
                        left,
                        right,
                    },
                    false,
                ))
            }
            other => Ok((other, false)),
        }
    }

    /// Push the conjuncts of `predicate` below `input` where legal.
    /// Returns `None` if nothing moved.
    fn push_restrict(&mut self, predicate: Predicate, input: RNode) -> Result<Option<RNode>> {
        match input {
            RNode::Join {
                condition,
                left,
                right,
            } => self.push_into_binary(predicate, left, right, move |l, r| RNode::Join {
                condition,
                left: l,
                right: r,
            }),
            RNode::Cross { left, right } => {
                self.push_into_binary(predicate, left, right, |l, r| RNode::Cross {
                    left: l,
                    right: r,
                })
            }
            RNode::Project {
                projection,
                dedup,
                input: inner,
            } => {
                // σ(π(R)) → π(σ'(R)) with indices remapped through π. Legal
                // for both bag and set projection: the predicate only reads
                // projected attributes.
                let indices = projection.indices().to_vec();
                let remapped = pred_remap(&predicate, &|i| indices[i]);
                self.applied.push("pushdown-through-project".into());
                Ok(Some(RNode::Project {
                    projection,
                    dedup,
                    input: Box::new(RNode::Restrict {
                        predicate: remapped,
                        input: inner,
                    }),
                }))
            }
            RNode::Union { left, right } => {
                // σ(A ∪ B) = σA ∪ σB.
                self.applied.push("pushdown-through-union".into());
                Ok(Some(RNode::Union {
                    left: Box::new(RNode::Restrict {
                        predicate: predicate.clone(),
                        input: left,
                    }),
                    right: Box::new(RNode::Restrict {
                        predicate,
                        input: right,
                    }),
                }))
            }
            RNode::Difference { left, right } => {
                // σ(A − B) = σA − B.
                self.applied.push("pushdown-through-difference".into());
                Ok(Some(RNode::Difference {
                    left: Box::new(RNode::Restrict {
                        predicate,
                        input: left,
                    }),
                    right,
                }))
            }
            _ => Ok(None),
        }
    }

    /// Split `predicate` across a binary product node: conjuncts touching
    /// only left attributes go left, only right attributes go right
    /// (indices shifted), mixed ones stay above.
    fn push_into_binary(
        &mut self,
        predicate: Predicate,
        left: Box<RNode>,
        right: Box<RNode>,
        rebuild: impl FnOnce(Box<RNode>, Box<RNode>) -> RNode,
    ) -> Result<Option<RNode>> {
        let l_arity = schema_of(&left, self.db)?.arity();
        let mut to_left = Vec::new();
        let mut to_right = Vec::new();
        let mut stay = Vec::new();
        for c in conjuncts(predicate) {
            let mut refs = Vec::new();
            pred_refs(&c, &mut refs);
            if !refs.is_empty() && refs.iter().all(|&i| i < l_arity) {
                to_left.push(c);
            } else if !refs.is_empty() && refs.iter().all(|&i| i >= l_arity) {
                to_right.push(pred_remap(&c, &|i| i - l_arity));
            } else {
                stay.push(c);
            }
        }
        if to_left.is_empty() && to_right.is_empty() {
            return Ok(None);
        }
        self.applied.push("pushdown-through-join".into());
        let left = wrap_restrict(conjoin(to_left), left);
        let right = wrap_restrict(conjoin(to_right), right);
        let product = rebuild(left, right);
        Ok(Some(*wrap_restrict(conjoin(stay), Box::new(product))))
    }
}

/// Wrap `input` in a restrict unless the predicate is `true`.
fn wrap_restrict(predicate: Predicate, input: Box<RNode>) -> Box<RNode> {
    if matches!(predicate, Predicate::True) {
        input
    } else {
        Box::new(RNode::Restrict { predicate, input })
    }
}

/// Optimize `tree` against `db` using `stats`.
///
/// # Errors
/// Propagates validation errors; the returned tree is re-validated.
pub fn optimize(db: &Catalog, tree: &QueryTree, stats: &CatalogStats) -> Result<Optimized> {
    validate(db, tree)?;
    let mut node = to_rnode(tree, tree.root());
    let mut rewriter = Rewriter {
        db,
        stats,
        applied: Vec::new(),
    };
    for _ in 0..8 {
        let (next, changed) = rewriter.pass(node)?;
        node = next;
        if !changed {
            break;
        }
    }
    let mut arena = Vec::new();
    let root = from_rnode(&node, &mut arena);
    let tree = QueryTree::from_parts(arena, root);
    validate(db, &tree).map_err(|e| Error::SchemaMismatch {
        detail: format!("optimizer produced an invalid tree: {e}"),
    })?;
    Ok(Optimized {
        tree,
        applied: rewriter.applied,
    })
}

//! Bottom-up cardinality estimation for query trees.

use df_query::{validate, NodeId, Op, QueryTree};
use df_relalg::{Catalog, CmpOp, Result};

use crate::stats::CatalogStats;

/// Estimated output cardinality (tuples) of every node, in node order.
#[derive(Debug, Clone)]
pub struct NodeEstimates {
    rows: Vec<f64>,
}

impl NodeEstimates {
    /// Estimated output rows of `id`.
    pub fn rows(&self, id: NodeId) -> f64 {
        self.rows[id.0]
    }

    /// Estimated rows of the root.
    pub fn output_rows(&self, tree: &QueryTree) -> f64 {
        self.rows(tree.root())
    }
}

/// Estimate per-node output cardinalities.
///
/// ```
/// use df_opt::{estimate, CatalogStats};
/// use df_query::parse_query;
/// use df_workload::{generate_database, DatabaseSpec};
/// let db = generate_database(&DatabaseSpec::scaled(0.01));
/// let stats = CatalogStats::gather(&db);
/// let q = parse_query(&db, "(restrict (scan r00) (< val 500))").unwrap();
/// let est = estimate(&db, &q, &stats).unwrap();
/// let half = db.get("r00").unwrap().num_tuples() as f64 / 2.0;
/// assert!((est.output_rows(&q) - half).abs() / half < 0.2);
/// ```
///
/// Selectivities use uniformity and independence; joins use the classic
/// `|L|·|R| / max(d_L, d_R)` equi-join estimate with the *base* statistics
/// of whichever scan the predicate column descends from approximated by the
/// nearest leaf (restricts do not change distinct-value spans drastically
/// under uniformity, which is the standard System-R-era simplification).
///
/// # Errors
/// Propagates validation errors for malformed trees.
pub fn estimate(db: &Catalog, tree: &QueryTree, stats: &CatalogStats) -> Result<NodeEstimates> {
    validate(db, tree)?; // schemas are sound; estimation cannot panic
    let mut rows: Vec<f64> = Vec::with_capacity(tree.len());
    // Track, per node, the base-relation stats that "dominate" it (nearest
    // leaf on the left spine) for predicate selectivity estimation.
    let mut dominant: Vec<Option<String>> = Vec::with_capacity(tree.len());

    for id in tree.topo_order() {
        let node = tree.node(id);
        let child_rows = |i: usize| rows[node.children[i].0];
        let child_dom = |i: usize| dominant[node.children[i].0].clone();
        let (r, dom) = match &node.op {
            Op::Scan { relation } => {
                let n = stats
                    .get(relation)
                    .map(|s| s.tuples as f64)
                    .unwrap_or_else(|| {
                        db.get(relation)
                            .map(|r| r.num_tuples() as f64)
                            .unwrap_or(0.0)
                    });
                (n, Some(relation.clone()))
            }
            Op::Restrict { predicate } => {
                let sel = child_dom(0)
                    .and_then(|name| stats.get(&name).map(|s| s.predicate_selectivity(predicate)))
                    .unwrap_or(1.0 / 3.0);
                (child_rows(0) * sel, child_dom(0))
            }
            Op::Project { dedup, .. } => {
                let n = child_rows(0);
                // Duplicate elimination: square-root heuristic bounded by n.
                let out = if *dedup { n.sqrt().max(1.0).min(n) } else { n };
                (out, child_dom(0))
            }
            Op::Join { condition } => {
                let (l, r) = (child_rows(0), child_rows(1));
                if condition.op == CmpOp::Eq {
                    let d = [child_dom(0), child_dom(1)]
                        .into_iter()
                        .flatten()
                        .filter_map(|name| stats.get(&name).map(|s| s.tuples))
                        .max()
                        .unwrap_or(10)
                        .max(1);
                    ((l * r / d as f64).max(0.0), child_dom(0))
                } else {
                    (l * r / 3.0, child_dom(0))
                }
            }
            Op::CrossProduct => (child_rows(0) * child_rows(1), child_dom(0)),
            Op::Union => (child_rows(0) + child_rows(1), child_dom(0)),
            Op::Difference => ((child_rows(0) - child_rows(1)).max(0.0), child_dom(0)),
            Op::Append { .. } => (child_rows(0), child_dom(0)),
            Op::Delete { target, .. } => {
                let n = stats.get(target).map(|s| s.tuples as f64).unwrap_or(0.0);
                (n / 3.0, Some(target.clone()))
            }
        };
        rows.push(r);
        dominant.push(dom);
    }
    Ok(NodeEstimates { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_query::parse_query;
    use df_workload::{generate_database, DatabaseSpec};

    fn setup() -> (Catalog, CatalogStats) {
        let db = generate_database(&DatabaseSpec::scaled(0.02));
        let stats = CatalogStats::gather(&db);
        (db, stats)
    }

    #[test]
    fn scan_estimate_is_exact() {
        let (db, stats) = setup();
        let q = parse_query(&db, "(scan r00)").unwrap();
        let est = estimate(&db, &q, &stats).unwrap();
        assert_eq!(
            est.output_rows(&q) as usize,
            db.get("r00").unwrap().num_tuples()
        );
    }

    #[test]
    fn restrict_estimate_tracks_selectivity() {
        let (db, stats) = setup();
        let q = parse_query(&db, "(restrict (scan r00) (< val 500))").unwrap();
        let est = estimate(&db, &q, &stats).unwrap();
        let n = db.get("r00").unwrap().num_tuples() as f64;
        let predicted = est.output_rows(&q);
        assert!(
            (predicted / n - 0.5).abs() < 0.1,
            "predicted {predicted} of {n}"
        );
    }

    #[test]
    fn fk_join_estimate_is_near_child_size() {
        // fk joins match each child tuple with exactly one parent key, so
        // |A ⋈ B| ≈ |A|.
        let (db, stats) = setup();
        let q = parse_query(&db, "(join (scan r00) (scan r01) (= fk key))").unwrap();
        let est = estimate(&db, &q, &stats).unwrap();
        let actual = df_query::execute_readonly(&db, &q, &df_query::ExecParams::default())
            .unwrap()
            .num_tuples() as f64;
        let predicted = est.output_rows(&q);
        assert!(
            predicted / actual < 3.0 && actual / predicted < 3.0,
            "predicted {predicted} vs actual {actual}"
        );
    }

    #[test]
    fn union_and_cross_compose() {
        let (db, stats) = setup();
        let q = parse_query(&db, "(union (scan r13) (scan r14))").unwrap();
        let est = estimate(&db, &q, &stats).unwrap();
        let expect =
            (db.get("r13").unwrap().num_tuples() + db.get("r14").unwrap().num_tuples()) as f64;
        assert_eq!(est.output_rows(&q), expect);

        let q = parse_query(&db, "(cross (scan r13) (scan r14))").unwrap();
        let est = estimate(&db, &q, &stats).unwrap();
        let expect =
            (db.get("r13").unwrap().num_tuples() * db.get("r14").unwrap().num_tuples()) as f64;
        assert_eq!(est.output_rows(&q), expect);
    }
}

//! Base-relation statistics and selectivity estimation.

use std::collections::BTreeMap;

use df_relalg::{Catalog, CmpOp, Predicate, Relation, Value};

/// Per-attribute statistics (integer attributes only; strings and booleans
/// fall back to default selectivities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrStats {
    /// Smallest value observed.
    pub min: i64,
    /// Largest value observed.
    pub max: i64,
    /// Number of distinct values observed.
    pub distinct: usize,
}

/// Statistics for one relation, gathered by one exact scan.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Tuple count.
    pub tuples: usize,
    /// Page count.
    pub pages: usize,
    /// Per-attribute stats (index-aligned with the schema; `None` for
    /// non-integer attributes).
    pub attrs: Vec<Option<AttrStats>>,
}

impl RelationStats {
    /// Scan `relation` and compute exact statistics.
    pub fn gather(relation: &Relation) -> RelationStats {
        let arity = relation.schema().arity();
        let mut mins = vec![i64::MAX; arity];
        let mut maxs = vec![i64::MIN; arity];
        let mut values: Vec<std::collections::BTreeSet<i64>> = vec![Default::default(); arity];
        let mut tuples = 0usize;
        for t in relation.tuples() {
            tuples += 1;
            for (i, v) in t.values().iter().enumerate() {
                if let Value::Int(x) = v {
                    mins[i] = mins[i].min(*x);
                    maxs[i] = maxs[i].max(*x);
                    values[i].insert(*x);
                }
            }
        }
        let attrs = (0..arity)
            .map(|i| {
                if values[i].is_empty() {
                    None
                } else {
                    Some(AttrStats {
                        min: mins[i],
                        max: maxs[i],
                        distinct: values[i].len(),
                    })
                }
            })
            .collect();
        RelationStats {
            tuples,
            pages: relation.num_pages(),
            attrs,
        }
    }

    /// Estimated selectivity of `attr op constant` under uniformity.
    pub fn selectivity(&self, attr: usize, op: CmpOp, value: &Value) -> f64 {
        let Some(Some(st)) = self.attrs.get(attr) else {
            return default_selectivity(op);
        };
        let Value::Int(c) = value else {
            return default_selectivity(op);
        };
        if self.tuples == 0 {
            return 0.0;
        }
        let span = (st.max - st.min) as f64 + 1.0;
        let frac_below = (((*c - st.min) as f64) / span).clamp(0.0, 1.0);
        let eq = 1.0 / st.distinct.max(1) as f64;
        match op {
            CmpOp::Eq => eq,
            CmpOp::Ne => 1.0 - eq,
            CmpOp::Lt => frac_below,
            CmpOp::Le => (frac_below + eq).min(1.0),
            CmpOp::Gt => 1.0 - (frac_below + eq).min(1.0),
            CmpOp::Ge => 1.0 - frac_below,
        }
    }

    /// Estimated selectivity of an arbitrary predicate (independence
    /// assumption for conjunction/disjunction).
    pub fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        match predicate {
            Predicate::True => 1.0,
            Predicate::CmpConst { index, op, value } => self.selectivity(*index, *op, value),
            // Attribute-vs-attribute: classic 1/max(distinct) heuristic.
            Predicate::CmpAttrs { left, op, right } => {
                let d = [*left, *right]
                    .iter()
                    .filter_map(|&i| self.attrs.get(i).copied().flatten())
                    .map(|s| s.distinct)
                    .max()
                    .unwrap_or(10);
                match op {
                    CmpOp::Eq => 1.0 / d.max(1) as f64,
                    CmpOp::Ne => 1.0 - 1.0 / d.max(1) as f64,
                    _ => 1.0 / 3.0,
                }
            }
            Predicate::And(a, b) => self.predicate_selectivity(a) * self.predicate_selectivity(b),
            Predicate::Or(a, b) => {
                let (sa, sb) = (self.predicate_selectivity(a), self.predicate_selectivity(b));
                (sa + sb - sa * sb).min(1.0)
            }
            Predicate::Not(a) => 1.0 - self.predicate_selectivity(a),
        }
    }
}

fn default_selectivity(op: CmpOp) -> f64 {
    match op {
        CmpOp::Eq => 0.1,
        CmpOp::Ne => 0.9,
        _ => 1.0 / 3.0,
    }
}

/// Statistics for every relation in a catalog.
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    stats: BTreeMap<String, RelationStats>,
}

impl CatalogStats {
    /// Gather exact statistics for every relation in `db`.
    pub fn gather(db: &Catalog) -> CatalogStats {
        CatalogStats {
            stats: db
                .iter()
                .map(|r| (r.name().to_owned(), RelationStats::gather(r)))
                .collect(),
        }
    }

    /// Statistics for `relation`, if gathered.
    pub fn get(&self, relation: &str) -> Option<&RelationStats> {
        self.stats.get(relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_relalg::{DataType, Schema, Tuple};

    fn rel() -> Relation {
        let s = Schema::build()
            .attr("k", DataType::Int)
            .attr("name", DataType::Str(4))
            .finish()
            .unwrap();
        Relation::from_tuples(
            "t",
            s,
            256,
            (0..100).map(|i| Tuple::new(vec![Value::Int(i % 50), Value::str("x")])),
        )
        .unwrap()
    }

    #[test]
    fn gather_is_exact() {
        let st = RelationStats::gather(&rel());
        assert_eq!(st.tuples, 100);
        let a = st.attrs[0].unwrap();
        assert_eq!((a.min, a.max, a.distinct), (0, 49, 50));
        assert!(st.attrs[1].is_none(), "string attrs have no int stats");
    }

    #[test]
    fn range_selectivities_are_sane() {
        let st = RelationStats::gather(&rel());
        let half = st.selectivity(0, CmpOp::Lt, &Value::Int(25));
        assert!((half - 0.5).abs() < 0.05, "σ(k<25) ≈ 0.5, got {half}");
        let eq = st.selectivity(0, CmpOp::Eq, &Value::Int(10));
        assert!((eq - 0.02).abs() < 1e-9);
        let none = st.selectivity(0, CmpOp::Lt, &Value::Int(-5));
        assert_eq!(none, 0.0);
        let all = st.selectivity(0, CmpOp::Ge, &Value::Int(-5));
        assert_eq!(all, 1.0);
    }

    #[test]
    fn predicate_selectivity_composes() {
        let st = RelationStats::gather(&rel());
        let s = st.predicate_selectivity(&Predicate::True);
        assert_eq!(s, 1.0);
        let p = Predicate::CmpConst {
            index: 0,
            op: CmpOp::Lt,
            value: Value::Int(25),
        };
        let and = st.predicate_selectivity(&p.clone().and(p.clone()));
        assert!((and - 0.25).abs() < 0.05);
        let not = st.predicate_selectivity(&p.not());
        assert!((not - 0.5).abs() < 0.05);
    }

    #[test]
    fn catalog_stats_lookup() {
        let mut db = Catalog::new();
        db.insert(rel()).unwrap();
        let cs = CatalogStats::gather(&db);
        assert!(cs.get("t").is_some());
        assert!(cs.get("missing").is_none());
    }
}

//! Property tests: the optimizer preserves semantics on random query
//! shapes, and optimizing the naive form recovers the hand-optimized form's
//! behaviour.

use df_opt::{optimize, CatalogStats};
use df_query::{execute_readonly, ExecParams};
use df_sim::rng::SimRng;
use df_workload::{
    chain_query, chain_query_naive, generate_database, random_query, DatabaseSpec, VAL_DOMAIN,
};
use proptest::prelude::*;

fn setup() -> (df_relalg::Catalog, CatalogStats) {
    let db = generate_database(&DatabaseSpec::scaled(0.01));
    let stats = CatalogStats::gather(&db);
    (db, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// optimize ∘ oracle ≡ oracle for random chain queries.
    #[test]
    fn optimizer_preserves_random_queries(seed in 0u64..10_000) {
        let (db, stats) = setup();
        let mut rng = SimRng::new(seed);
        let q = random_query(&db, 15, 3, 450, &mut rng).unwrap();
        let optimized = optimize(&db, &q, &stats).unwrap();
        let a = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        let b = execute_readonly(&db, &optimized.tree, &ExecParams::default()).unwrap();
        prop_assert!(a.same_contents(&b), "seed {seed}: {:?}", optimized.applied);
    }

    /// Naive (restricts-on-top) and hand-optimized (restricts-at-leaves)
    /// trees agree, and optimizing the naive one pushes every restrict
    /// down to a leaf position.
    #[test]
    fn optimizing_naive_chains_recovers_pushdown(
        start in 0usize..15,
        njoins in 1usize..4,
        restricts in 1usize..3,
        cutoff in 100i64..900,
    ) {
        let (db, stats) = setup();
        let restricts = restricts.min(njoins + 1);
        let naive = chain_query_naive(&db, 15, start, njoins, restricts, cutoff).unwrap();
        let hand = chain_query(&db, 15, start, njoins, restricts, cutoff).unwrap();
        let optimized = optimize(&db, &naive, &stats).unwrap();

        let a = execute_readonly(&db, &naive, &ExecParams::default()).unwrap();
        let b = execute_readonly(&db, &hand, &ExecParams::default()).unwrap();
        let c = execute_readonly(&db, &optimized.tree, &ExecParams::default()).unwrap();
        prop_assert!(a.same_contents(&b), "naive != hand-optimized");
        prop_assert!(a.same_contents(&c), "optimizer broke the naive tree");

        // Every restrict in the optimized tree sits directly on a scan.
        let parents_ok = optimized
            .tree
            .topo_order()
            .filter(|&id| optimized.tree.node(id).op.name() == "restrict")
            .all(|id| {
                let child = optimized.tree.node(id).children[0];
                optimized.tree.node(child).op.name() == "scan"
            });
        prop_assert!(
            parents_ok,
            "restricts not fully pushed: {:?}",
            optimized.applied
        );
        prop_assert!(optimized.applied.iter().any(|r| r == "pushdown-through-join"));
    }

    /// VAL_DOMAIN-edge cutoffs (empty / full selections) don't break rules.
    #[test]
    fn edge_selectivities_survive(cutoff in prop_oneof![Just(0i64), Just(VAL_DOMAIN)]) {
        let (db, stats) = setup();
        let naive = chain_query_naive(&db, 15, 2, 2, 3, cutoff).unwrap();
        let optimized = optimize(&db, &naive, &stats).unwrap();
        let a = execute_readonly(&db, &naive, &ExecParams::default()).unwrap();
        let b = execute_readonly(&db, &optimized.tree, &ExecParams::default()).unwrap();
        prop_assert!(a.same_contents(&b));
    }
}

//! Optimizer correctness: every rewrite preserves oracle semantics, and the
//! intended rules actually fire on the shapes they target.

use df_opt::{estimate, optimize, CatalogStats};
use df_query::{execute_readonly, parse_query, ExecParams, QueryTree};
use df_relalg::Catalog;
use df_workload::{generate_database, DatabaseSpec};

fn setup() -> (Catalog, CatalogStats) {
    let db = generate_database(&DatabaseSpec::scaled(0.02));
    let stats = CatalogStats::gather(&db);
    (db, stats)
}

fn check_equivalent(db: &Catalog, before: &QueryTree, after: &QueryTree) {
    let a = execute_readonly(db, before, &ExecParams::default()).expect("before runs");
    let b = execute_readonly(db, after, &ExecParams::default()).expect("after runs");
    assert!(
        a.same_contents(&b),
        "optimizer changed semantics: {} vs {} tuples",
        a.num_tuples(),
        b.num_tuples()
    );
}

fn opt(db: &Catalog, stats: &CatalogStats, q: &str) -> (QueryTree, df_opt::Optimized) {
    let tree = parse_query(db, q).expect("parses");
    let optimized = optimize(db, &tree, stats).expect("optimizes");
    check_equivalent(db, &tree, &optimized.tree);
    (tree, optimized)
}

#[test]
fn pushes_restricts_below_a_join() {
    let (db, stats) = setup();
    let (before, after) = opt(
        &db,
        &stats,
        "(restrict (join (scan r01) (scan r02) (= fk key))
                   (and (< val 300) (> r_val 200)))",
    );
    assert!(after.applied.iter().any(|r| r == "pushdown-through-join"));
    // Both conjuncts now sit below the join (the cost-based swap rule may
    // also fire, adding a compensating projection at the root).
    assert_eq!(after.tree.count_op("restrict"), 2);
    let parents = after.tree.parents();
    for id in after.tree.topo_order() {
        if after.tree.node(id).op.name() == "restrict" {
            let parent = parents[id.0].expect("restrict is not the root");
            assert_eq!(after.tree.node(parent).op.name(), "join");
        }
    }
    let _ = before;
}

#[test]
fn mixed_conjuncts_stay_above() {
    let (db, stats) = setup();
    let (_, after) = opt(
        &db,
        &stats,
        // key < r_key references both sides: must not move.
        "(restrict (join (scan r13) (scan r14) (= fk key)) (< key r_key))",
    );
    assert!(
        !after.applied.iter().any(|r| r == "pushdown-through-join"),
        "cross-side predicate must not be pushed: {:?}",
        after.applied
    );
}

#[test]
fn fuses_adjacent_restricts() {
    let (db, stats) = setup();
    let (_, after) = opt(
        &db,
        &stats,
        "(restrict (restrict (scan r00) (< val 800)) (> val 100))",
    );
    assert!(after.applied.iter().any(|r| r == "fuse-restricts"));
    assert_eq!(after.tree.count_op("restrict"), 1);
}

#[test]
fn drops_trivial_restricts_and_double_negation() {
    let (db, stats) = setup();
    let (_, after) = opt(&db, &stats, "(restrict (scan r00) true)");
    assert!(after.applied.iter().any(|r| r == "drop-trivial-restrict"));
    assert_eq!(after.tree.count_op("restrict"), 0);

    let (_, after) = opt(&db, &stats, "(restrict (scan r00) (not (not (< val 500))))");
    assert!(after.applied.iter().any(|r| r == "simplify-predicate"));
}

#[test]
fn pushes_through_projection_with_index_remap() {
    let (db, stats) = setup();
    // After π(val, key) the predicate `< key 40` references output index 1,
    // which maps back to input index 0 (`key`).
    let (_, after) = opt(
        &db,
        &stats,
        "(restrict (project (scan r05) (val key)) (< key 40))",
    );
    assert!(after
        .applied
        .iter()
        .any(|r| r == "pushdown-through-project"));
    // Projection is now the root; restrict below it.
    assert_eq!(after.tree.node(after.tree.root()).op.name(), "project");
}

#[test]
fn pushes_through_union_and_difference() {
    let (db, stats) = setup();
    let (_, after) = opt(
        &db,
        &stats,
        "(restrict (union (scan r13) (scan r14)) (< val 500))",
    );
    assert!(after.applied.iter().any(|r| r == "pushdown-through-union"));
    assert_eq!(after.tree.count_op("restrict"), 2);

    let (_, after) = opt(
        &db,
        &stats,
        "(restrict (difference (scan r13) (scan r13)) (< val 500))",
    );
    assert!(after
        .applied
        .iter()
        .any(|r| r == "pushdown-through-difference"));
}

#[test]
fn collapses_projection_chains() {
    let (db, stats) = setup();
    let (_, after) = opt(
        &db,
        &stats,
        "(project (project (scan r00) (key fk val)) (val key))",
    );
    assert!(after.applied.iter().any(|r| r == "collapse-projections"));
    assert_eq!(after.tree.count_op("project"), 1);
}

#[test]
fn swaps_join_inputs_when_left_is_smaller() {
    let (db, stats) = setup();
    // r14 (weight 1) is much smaller than r00 (weight 10): putting it on
    // the outer side starves parallelism, so the optimizer swaps.
    let (_, after) = opt(&db, &stats, "(join (scan r14) (scan r00) (= fk key))");
    assert!(after.applied.iter().any(|r| r == "swap-join-inputs"));
    // A compensating projection keeps the schema identical.
    assert_eq!(after.tree.node(after.tree.root()).op.name(), "project");
}

#[test]
fn does_not_swap_when_left_is_already_larger() {
    let (db, stats) = setup();
    let (_, after) = opt(&db, &stats, "(join (scan r00) (scan r14) (= fk key))");
    assert!(!after.applied.iter().any(|r| r == "swap-join-inputs"));
}

#[test]
fn estimates_improve_after_pushdown() {
    let (db, stats) = setup();
    let before = parse_query(
        &db,
        "(restrict (join (scan r01) (scan r02) (= fk key)) (< val 100))",
    )
    .unwrap();
    let after = optimize(&db, &before, &stats).unwrap().tree;
    // The join's estimated input shrinks after pushdown: total estimated
    // intermediate rows (sum over nodes) must not grow.
    let sum = |t: &QueryTree| -> f64 {
        let est = estimate(&db, t, &stats).unwrap();
        t.topo_order().map(|id| est.rows(id)).sum()
    };
    assert!(
        sum(&after) <= sum(&before) + 1e-6,
        "pushdown should shrink intermediates: {} vs {}",
        sum(&after),
        sum(&before)
    );
}

#[test]
fn benchmark_queries_survive_optimization() {
    let (db, _) = setup();
    let stats = CatalogStats::gather(&db);
    let spec = df_workload::BenchmarkSpec::scaled(0.02);
    for (i, q) in df_workload::benchmark_queries(&db, &spec)
        .unwrap()
        .iter()
        .enumerate()
    {
        let optimized = optimize(&db, q, &stats).unwrap_or_else(|e| panic!("Q{}: {e}", i + 1));
        check_equivalent(&db, q, &optimized.tree);
    }
}

#[test]
fn optimized_trees_run_on_the_dataflow_machine() {
    use df_core::{run_query, Granularity, MachineParams};
    let (db, stats) = setup();
    let q = parse_query(
        &db,
        "(restrict (join (scan r01) (scan r02) (= fk key))
                   (and (< val 300) (> r_val 200)))",
    )
    .unwrap();
    let optimized = optimize(&db, &q, &stats).unwrap();
    let params = MachineParams::with_processors(8);
    let (plain, m_plain) = run_query(&db, &q, &params, Granularity::Page).unwrap();
    let (opt, m_opt) = run_query(&db, &optimized.tree, &params, Granularity::Page).unwrap();
    assert!(plain.same_contents(&opt));
    // Pushdown shrinks join inputs: the optimized plan moves fewer bytes.
    assert!(
        m_opt.arbitration.bytes < m_plain.arbitration.bytes,
        "optimized {} B vs plain {} B",
        m_opt.arbitration.bytes,
        m_plain.arbitration.bytes
    );
    assert!(m_opt.elapsed <= m_plain.elapsed);
}

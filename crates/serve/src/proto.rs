//! The df-serve wire protocol.
//!
//! Every message is one length-prefixed frame: a 4-byte big-endian payload
//! length followed by that many payload bytes. Inside a frame the first
//! byte is a message tag; the rest is tag-specific, built from three
//! primitives (`u8`, big-endian `u32`/`u64`, and length-prefixed byte
//! strings). The encoding is hand-rolled for the same reason `df-obs`
//! writes its own JSON: the build environment is offline (see
//! `shims/README.md`), so no serde.
//!
//! Responses to queries carry the request's client-chosen `id`, so a
//! client may pipeline many requests on one connection and match
//! responses out of order (the engine reorders across priority classes).
//! Errors travel as [`ServeError`], which embeds the df-host
//! [`df_host::HostError`] taxonomy from PR 4 as a stable
//! [`HostErrorKind`] code plus its rendered detail.

use std::fmt;
use std::io::{self, Read, Write};
use std::str::FromStr;

use df_host::HostError;

/// Largest accepted frame payload (64 MiB). A malformed or hostile length
/// prefix fails the connection instead of allocating unbounded memory.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one length-prefixed frame.
///
/// # Errors
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    // One coalesced write, not prefix-then-payload: two small writes on
    // a TCP stream interact with Nagle + delayed ACK — the payload sits
    // in the kernel until the peer acknowledges the 4-byte prefix, a
    // ~40 ms stall per frame on Linux defaults.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
///
/// # Errors
/// Propagates I/O errors; rejects length prefixes over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------- priority

/// Admission priority class of a query request. The engine drains classes
/// strictly high → normal → low, round-robin across clients within each
/// class (DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Priority {
    /// Served before everything else.
    High = 0,
    /// The default class.
    #[default]
    Normal = 1,
    /// Served only when no higher class has pending work.
    Low = 2,
}

impl Priority {
    /// All classes, highest first (drain order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn from_wire(b: u8) -> Result<Priority, DecodeError> {
        match b {
            0 => Ok(Priority::High),
            1 => Ok(Priority::Normal),
            2 => Ok(Priority::Low),
            other => Err(DecodeError::new(format!("bad priority byte {other}"))),
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        })
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Priority, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!(
                "unknown priority `{other}` (expected high, normal, or low)"
            )),
        }
    }
}

// ---------------------------------------------------------------- requests

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a query, given as s-expression text (`df_query::parse_query`
    /// grammar), under a priority class. `id` is chosen by the client and
    /// echoed in the matching [`Response::Result`]/[`Response::Error`].
    Query {
        /// Client-chosen correlation id.
        id: u64,
        /// Admission class.
        priority: Priority,
        /// Run `df-opt` on the parsed tree before execution.
        optimize: bool,
        /// The query text.
        text: String,
    },
    /// Fetch the server's cumulative counters.
    Stats,
    /// List the served relations.
    Relations,
    /// Liveness probe; answered with [`Response::Ok`].
    Ping,
    /// Ask the server to finish in-flight work and exit.
    Shutdown,
    /// Install a standing view: materialize `text` once, then maintain
    /// the result incrementally from every write to its base relations.
    /// Answered with a [`Response::Result`] carrying the view's schema
    /// and no tuples, or a [`Response::Error`].
    InstallView {
        /// Client-chosen correlation id.
        id: u64,
        /// View name (the handle for `ReadView`/`DropView`).
        name: String,
        /// The read-only defining query.
        text: String,
    },
    /// Uninstall a standing view.
    DropView {
        /// Client-chosen correlation id.
        id: u64,
        /// The view to drop.
        name: String,
    },
    /// Read a maintained view's current result — served from the
    /// standing dataflow's state, never by re-executing the definition.
    ReadView {
        /// Client-chosen correlation id.
        id: u64,
        /// The view to read.
        name: String,
    },
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                id,
                priority,
                optimize,
                text,
            } => {
                out.push(0);
                out.extend_from_slice(&id.to_be_bytes());
                out.push(*priority as u8);
                out.push(u8::from(*optimize));
                put_bytes(&mut out, text.as_bytes());
            }
            Request::Stats => out.push(1),
            Request::Relations => out.push(2),
            Request::Ping => out.push(3),
            Request::Shutdown => out.push(4),
            Request::InstallView { id, name, text } => {
                out.push(5);
                out.extend_from_slice(&id.to_be_bytes());
                put_bytes(&mut out, name.as_bytes());
                put_bytes(&mut out, text.as_bytes());
            }
            Request::DropView { id, name } => {
                out.push(6);
                out.extend_from_slice(&id.to_be_bytes());
                put_bytes(&mut out, name.as_bytes());
            }
            Request::ReadView { id, name } => {
                out.push(7);
                out.extend_from_slice(&id.to_be_bytes());
                put_bytes(&mut out, name.as_bytes());
            }
        }
        out
    }

    /// Decode from a frame payload.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated or malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut r = Cursor::new(payload);
        let req = match r.u8()? {
            0 => Request::Query {
                id: r.u64()?,
                priority: Priority::from_wire(r.u8()?)?,
                optimize: r.u8()? != 0,
                text: r.string()?,
            },
            1 => Request::Stats,
            2 => Request::Relations,
            3 => Request::Ping,
            4 => Request::Shutdown,
            5 => Request::InstallView {
                id: r.u64()?,
                name: r.string()?,
                text: r.string()?,
            },
            6 => Request::DropView {
                id: r.u64()?,
                name: r.string()?,
            },
            7 => Request::ReadView {
                id: r.u64()?,
                name: r.string()?,
            },
            other => return Err(DecodeError::new(format!("bad request tag {other}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

// --------------------------------------------------------------- responses

/// One query's result set as it travels the wire: the canonical tuple
/// images of the (deterministically ordered) result relation plus enough
/// schema text to print them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Echo of the request id.
    pub id: u64,
    /// How many concurrent identical requests this execution served
    /// (≥ 1; > 1 means the request was fused with others).
    pub fan_out: u32,
    /// Rendered result schema, e.g. `key:int fk:int val:int pad:str(76)`.
    pub schema: String,
    /// Raw canonical tuple images, in result order.
    pub tuples: Vec<Vec<u8>>,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A query completed.
    Result(QueryResult),
    /// A query failed (or was rejected); `id` echoes the request.
    Error {
        /// Echo of the request id.
        id: u64,
        /// What went wrong.
        error: ServeError,
    },
    /// Cumulative server counters, name → value.
    Stats(Vec<(String, u64)>),
    /// Served relations, one description per line.
    Relations(Vec<String>),
    /// Acknowledgement of [`Request::Ping`]/[`Request::Shutdown`].
    Ok,
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Result(r) => {
                out.push(0);
                out.extend_from_slice(&r.id.to_be_bytes());
                out.extend_from_slice(&r.fan_out.to_be_bytes());
                put_bytes(&mut out, r.schema.as_bytes());
                out.extend_from_slice(&(r.tuples.len() as u32).to_be_bytes());
                for t in &r.tuples {
                    put_bytes(&mut out, t);
                }
            }
            Response::Error { id, error } => {
                out.push(1);
                out.extend_from_slice(&id.to_be_bytes());
                error.encode(&mut out);
            }
            Response::Stats(rows) => {
                out.push(2);
                out.extend_from_slice(&(rows.len() as u32).to_be_bytes());
                for (k, v) in rows {
                    put_bytes(&mut out, k.as_bytes());
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            Response::Relations(rows) => {
                out.push(3);
                out.extend_from_slice(&(rows.len() as u32).to_be_bytes());
                for r in rows {
                    put_bytes(&mut out, r.as_bytes());
                }
            }
            Response::Ok => out.push(4),
        }
        out
    }

    /// Decode from a frame payload.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated or malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut r = Cursor::new(payload);
        let resp = match r.u8()? {
            0 => {
                let id = r.u64()?;
                let fan_out = r.u32()?;
                let schema = r.string()?;
                let n = r.u32()? as usize;
                let mut tuples = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    tuples.push(r.bytes()?);
                }
                Response::Result(QueryResult {
                    id,
                    fan_out,
                    schema,
                    tuples,
                })
            }
            1 => Response::Error {
                id: r.u64()?,
                error: ServeError::decode(&mut r)?,
            },
            2 => {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let k = r.string()?;
                    let v = r.u64()?;
                    rows.push((k, v));
                }
                Response::Stats(rows)
            }
            3 => {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    rows.push(r.string()?);
                }
                Response::Relations(rows)
            }
            4 => Response::Ok,
            other => return Err(DecodeError::new(format!("bad response tag {other}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

// ------------------------------------------------------------ error model

/// Stable wire code for each [`HostError`] variant (PR 4's taxonomy).
/// Codes appear on the wire and must not be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HostErrorKind {
    /// [`HostError::InvalidParams`].
    InvalidParams = 0,
    /// [`HostError::ReadOnlyExecutor`].
    ReadOnlyExecutor = 1,
    /// [`HostError::UnitPanicked`].
    UnitPanicked = 2,
    /// [`HostError::WorkersExhausted`].
    WorkersExhausted = 3,
    /// [`HostError::Stalled`].
    Stalled = 4,
    /// [`HostError::Data`].
    Data = 5,
    /// A variant this protocol version does not know (`HostError` is
    /// `#[non_exhaustive]`).
    Other = 6,
}

impl HostErrorKind {
    /// Stable lower-snake name.
    pub fn name(self) -> &'static str {
        match self {
            HostErrorKind::InvalidParams => "invalid_params",
            HostErrorKind::ReadOnlyExecutor => "read_only_executor",
            HostErrorKind::UnitPanicked => "unit_panicked",
            HostErrorKind::WorkersExhausted => "workers_exhausted",
            HostErrorKind::Stalled => "stalled",
            HostErrorKind::Data => "data",
            HostErrorKind::Other => "other",
        }
    }

    fn from_wire(b: u8) -> Result<HostErrorKind, DecodeError> {
        Ok(match b {
            0 => HostErrorKind::InvalidParams,
            1 => HostErrorKind::ReadOnlyExecutor,
            2 => HostErrorKind::UnitPanicked,
            3 => HostErrorKind::WorkersExhausted,
            4 => HostErrorKind::Stalled,
            5 => HostErrorKind::Data,
            6 => HostErrorKind::Other,
            other => return Err(DecodeError::new(format!("bad host error kind {other}"))),
        })
    }
}

impl From<&HostError> for HostErrorKind {
    fn from(e: &HostError) -> HostErrorKind {
        match e {
            HostError::InvalidParams { .. } => HostErrorKind::InvalidParams,
            HostError::ReadOnlyExecutor { .. } => HostErrorKind::ReadOnlyExecutor,
            HostError::UnitPanicked { .. } => HostErrorKind::UnitPanicked,
            HostError::WorkersExhausted { .. } => HostErrorKind::WorkersExhausted,
            HostError::Stalled { .. } => HostErrorKind::Stalled,
            HostError::Data(_) => HostErrorKind::Data,
            _ => HostErrorKind::Other,
        }
    }
}

/// Everything the server can report back instead of a result. Carried in
/// [`Response::Error`]; the executor-side variants embed the PR-4
/// [`HostError`] taxonomy as a [`HostErrorKind`] plus rendered detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The client's bounded admission queue is full. Backpressure, not
    /// failure: retry after draining some in-flight requests.
    Busy {
        /// The queue capacity that was exceeded.
        capacity: u64,
    },
    /// The query text did not parse or validate against the catalog.
    Parse {
        /// Rendered parse/validation error.
        detail: String,
    },
    /// The executor failed this query with a structured [`HostError`].
    Host {
        /// Which taxonomy variant.
        kind: HostErrorKind,
        /// The rendered `HostError`.
        detail: String,
    },
    /// The request violated the wire protocol.
    Protocol {
        /// What was malformed.
        detail: String,
    },
    /// The server is shutting down and no longer admits queries.
    ShuttingDown,
    /// A standing-view request failed: duplicate install, unknown view
    /// name, or a definition the maintenance planner rejects.
    View {
        /// What went wrong.
        detail: String,
    },
}

impl ServeError {
    /// Build the executor-failure variant from a [`HostError`].
    pub fn host(e: &HostError) -> ServeError {
        ServeError::Host {
            kind: e.into(),
            detail: e.to_string(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeError::Busy { capacity } => {
                out.push(0);
                out.extend_from_slice(&capacity.to_be_bytes());
            }
            ServeError::Parse { detail } => {
                out.push(1);
                put_bytes(out, detail.as_bytes());
            }
            ServeError::Host { kind, detail } => {
                out.push(2);
                out.push(*kind as u8);
                put_bytes(out, detail.as_bytes());
            }
            ServeError::Protocol { detail } => {
                out.push(3);
                put_bytes(out, detail.as_bytes());
            }
            ServeError::ShuttingDown => out.push(4),
            ServeError::View { detail } => {
                out.push(5);
                put_bytes(out, detail.as_bytes());
            }
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<ServeError, DecodeError> {
        Ok(match r.u8()? {
            0 => ServeError::Busy { capacity: r.u64()? },
            1 => ServeError::Parse {
                detail: r.string()?,
            },
            2 => ServeError::Host {
                kind: HostErrorKind::from_wire(r.u8()?)?,
                detail: r.string()?,
            },
            3 => ServeError::Protocol {
                detail: r.string()?,
            },
            4 => ServeError::ShuttingDown,
            5 => ServeError::View {
                detail: r.string()?,
            },
            other => return Err(DecodeError::new(format!("bad serve error code {other}"))),
        })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { capacity } => {
                write!(f, "busy: admission queue full ({capacity} slots)")
            }
            ServeError::Parse { detail } => write!(f, "parse error: {detail}"),
            ServeError::Host { kind, detail } => {
                write!(f, "execution failed ({}): {detail}", kind.name())
            }
            ServeError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::View { detail } => write!(f, "view error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A malformed frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was malformed.
    pub detail: String,
}

impl DecodeError {
    fn new(detail: String) -> DecodeError {
        DecodeError { detail }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.detail)
    }
}

impl std::error::Error for DecodeError {}

// ----------------------------------------------------------- byte cursors

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::new(format!(
                "need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?)
            .map_err(|e| DecodeError::new(format!("invalid utf-8 string: {e}")))
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError::new(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let decoded = Request::decode(&req.encode()).expect("decodes");
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let decoded = Response::decode(&resp.encode()).expect("decodes");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query {
            id: 77,
            priority: Priority::Low,
            optimize: true,
            text: "(restrict (scan r00) (< val 100))".into(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Relations);
        round_trip_request(Request::Ping);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::InstallView {
            id: 11,
            name: "hot".into(),
            text: "(join (scan r00) (scan r02) (= key key))".into(),
        });
        round_trip_request(Request::DropView {
            id: 12,
            name: "hot".into(),
        });
        round_trip_request(Request::ReadView {
            id: 13,
            name: "hot".into(),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Result(QueryResult {
            id: 9,
            fan_out: 3,
            schema: "key:int val:int".into(),
            tuples: vec![vec![1, 2, 3], vec![], vec![255; 100]],
        }));
        round_trip_response(Response::Error {
            id: 1,
            error: ServeError::Busy { capacity: 32 },
        });
        round_trip_response(Response::Error {
            id: 2,
            error: ServeError::Parse {
                detail: "unbalanced parens".into(),
            },
        });
        round_trip_response(Response::Error {
            id: 3,
            error: ServeError::Host {
                kind: HostErrorKind::UnitPanicked,
                detail: "work unit of query 0, cell 1 (`join`) panicked: boom".into(),
            },
        });
        round_trip_response(Response::Error {
            id: 4,
            error: ServeError::Protocol {
                detail: "bad tag".into(),
            },
        });
        round_trip_response(Response::Error {
            id: 5,
            error: ServeError::ShuttingDown,
        });
        round_trip_response(Response::Error {
            id: 6,
            error: ServeError::View {
                detail: "view `hot` is not installed".into(),
            },
        });
        round_trip_response(Response::Stats(vec![
            ("submitted".into(), 10),
            ("fused".into(), 4),
        ]));
        round_trip_response(Response::Relations(vec!["r00 (100 tuples)".into()]));
        round_trip_response(Response::Ok);
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut len = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        len.extend_from_slice(&[0; 16]);
        let mut r = &len[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_payloads_fail_cleanly() {
        let full = Request::Query {
            id: 1,
            priority: Priority::Normal,
            optimize: false,
            text: "(scan r00)".into(),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = full.clone();
        padded.push(0);
        assert!(Request::decode(&padded).is_err());
        // The view requests fail truncation just as cleanly.
        let install = Request::InstallView {
            id: 2,
            name: "v".into(),
            text: "(scan r00)".into(),
        }
        .encode();
        for cut in 0..install.len() {
            assert!(
                Request::decode(&install[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn host_error_kinds_map_the_taxonomy() {
        let e = HostError::WorkersExhausted { workers: 4 };
        let se = ServeError::host(&e);
        match &se {
            ServeError::Host { kind, detail } => {
                assert_eq!(*kind, HostErrorKind::WorkersExhausted);
                assert!(detail.contains("all 4 worker"));
            }
            other => panic!("wrong variant {other:?}"),
        }
        assert_eq!(
            HostErrorKind::from(&HostError::Stalled {
                in_flight: 1,
                waited: std::time::Duration::from_secs(1),
                detail: String::new(),
            }),
            HostErrorKind::Stalled
        );
    }

    #[test]
    fn priority_round_trips_from_str() {
        for p in Priority::ALL {
            let rendered = p.to_string();
            assert_eq!(rendered.parse::<Priority>().unwrap(), p);
        }
        assert!("urgent".parse::<Priority>().is_err());
        assert_eq!(Priority::default(), Priority::Normal);
    }
}

//! Minimal `poll(2)`/`shutdown(2)` shim over [`std::os::fd`].
//!
//! The mux front-end ([`crate::server`]) needs exactly two syscalls the
//! Rust standard library does not expose: readiness multiplexing over a
//! set of sockets, and half-closing a *listening* socket to wake a
//! blocked `accept(2)`. Consistent with the repo's zero-dependency
//! policy (`shims/README.md`), this module declares the two symbols via
//! `extern "C"` instead of pulling in the `libc` crate — std already
//! links the C library, so the symbols resolve with no new dependency.
//!
//! The constants and the `nfds_t` width below are the Linux ABI values;
//! the module is `cfg(unix)` and the repo's CI targets Linux only. The
//! blocking thread-per-client path never touches this module.

#![cfg(unix)]

use std::ffi::{c_int, c_ulong};
use std::io;
use std::os::fd::RawFd;

/// `poll(2)` readable-readiness event bit.
pub const POLLIN: i16 = 0x001;
/// `poll(2)` writable-readiness event bit.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` error condition bit (revents only).
pub const POLLERR: i16 = 0x008;
/// `poll(2)` hang-up bit (revents only): the peer closed.
pub const POLLHUP: i16 = 0x010;

/// One entry of a `poll(2)` fd set — ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by the
    /// kernel, which is how a slot is parked without re-packing the set).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events; includes [`POLLERR`]/[`POLLHUP`] unrequested.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`; `revents` starts clear.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

const SHUT_RDWR: c_int = 2;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn shutdown(sockfd: c_int, how: c_int) -> c_int;
}

/// Wait up to `timeout_ms` for readiness on any of `fds`, retrying on
/// `EINTR`. Returns how many entries have non-zero `revents`; `0` means
/// the timeout elapsed. A negative timeout blocks indefinitely.
///
/// # Errors
/// Propagates `poll(2)` failures other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Block until `fd` is writable (or hung up). Used by the mux response
/// path to ride out a full socket send buffer on a non-blocking stream.
///
/// # Errors
/// Propagates `poll(2)` failures.
pub fn wait_writable(fd: RawFd) -> io::Result<()> {
    let mut set = [PollFd::new(fd, POLLOUT)];
    poll_fds(&mut set, -1)?;
    Ok(())
}

/// `shutdown(fd, SHUT_RDWR)`. On Linux this works on a *listening*
/// socket too, failing any `accept(2)` blocked on it — the race-free way
/// to wake the acceptor at server shutdown (the old trick of
/// self-connecting could be consumed by a real client instead).
///
/// # Errors
/// Propagates `shutdown(2)` failures.
pub fn shutdown_socket(fd: RawFd) -> io::Result<()> {
    let rc = unsafe { shutdown(fd, SHUT_RDWR) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readable_after_a_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        // Nothing written yet: a short poll times out.
        let mut set = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 10).unwrap(), 0);

        tx.write_all(b"x").unwrap();
        let mut set = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert_ne!(set[0].revents & POLLIN, 0);
    }

    #[test]
    fn negative_fd_slots_are_ignored() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        tx.write_all(b"x").unwrap();
        let mut set = [PollFd::new(-1, POLLIN), PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        assert_eq!(set[0].revents, 0, "parked slot stays silent");
        assert_ne!(set[1].revents & POLLIN, 0);
    }

    #[test]
    fn shutdown_wakes_a_blocked_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        let acceptor = std::thread::spawn(move || listener.accept().is_err());
        std::thread::sleep(std::time::Duration::from_millis(50));
        shutdown_socket(fd).unwrap();
        assert!(
            acceptor.join().unwrap(),
            "accept returns an error once the listener is shut down"
        );
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        drop(tx);
        let mut set = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 1000).unwrap(), 1);
        // The peer's close surfaces as POLLIN (EOF read) and/or POLLHUP.
        assert_ne!(set[0].revents & (POLLIN | POLLHUP), 0);
        let mut buf = [0u8; 8];
        assert_eq!(rx.read(&mut buf).unwrap(), 0, "EOF");
    }
}

//! Client-side pieces: a blocking [`ServeClient`] over the frame
//! protocol, and the interactive-shell line parser shared by the
//! `serve_client` binary and the `repl` example (so the two front-ends
//! accept the same command language).

use std::fmt::Write as _;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{read_frame, write_frame, Priority, Request, Response};

/// Pretty-print engine counter rows (a [`Response::Stats`] payload, or
/// any `(name, value)` list) grouped by subsystem, for the `:stats`
/// shell command. Counters the grouping does not know — future additions,
/// per-lane rows beyond the fixed set — land in a trailing `other`
/// section, so the shell never hides a counter.
pub fn format_stats(rows: &[(String, u64)]) -> String {
    const GROUPS: &[(&str, &[&str])] = &[
        (
            "admission",
            &["submitted", "busy_rejected", "batches", "groups", "failed"],
        ),
        (
            "execution",
            &[
                "reads",
                "executed",
                "read_execs",
                "writes_applied",
                "concurrent_write_batches",
            ],
        ),
        ("fusion", &["fused", "inflight_joins"]),
        (
            "views",
            &["views_installed", "delta_pages", "view_reads_served"],
        ),
        (
            "plan cache",
            &[
                "plan_cache_hits",
                "plan_cache_misses",
                "parses",
                "cache_evictions_partial",
            ],
        ),
        ("transport", &["bytes_in", "bytes_out", "mux_clients"]),
    ];
    let find = |key: &str| rows.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
    let mut out = String::new();
    let mut shown: Vec<&str> = Vec::new();
    for (title, keys) in GROUPS {
        let present: Vec<(&str, u64)> = keys
            .iter()
            .filter_map(|k| find(k).map(|v| (*k, v)))
            .collect();
        if present.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{title}:");
        for (k, v) in present {
            shown.push(k);
            let _ = writeln!(out, "  {k:>18} {v}");
        }
    }
    // Per-lane executions, one line per lane, under their own heading.
    if let Some(lanes) = find("lanes") {
        let _ = writeln!(out, "lanes: {lanes}");
        shown.push("lanes");
        for (k, v) in rows {
            if k.starts_with("lane") && k.ends_with("_execs") {
                shown.push(k.as_str());
                let _ = writeln!(out, "  {k:>18} {v}");
            }
        }
    }
    let rest: Vec<_> = rows
        .iter()
        .filter(|(k, _)| !shown.contains(&k.as_str()))
        .collect();
    if !rest.is_empty() {
        let _ = writeln!(out, "other:");
        for (k, v) in rest {
            let _ = writeln!(out, "  {k:>18} {v}");
        }
    }
    out.truncate(out.trim_end().len());
    out
}

/// One parsed line of an interactive shell: either a `:`-prefixed meta
/// command or raw query text. Both the local REPL example and the remote
/// serve client parse lines through here; each front-end handles the
/// commands that make sense for it and reports the rest as unsupported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplCommand {
    /// Blank line; show a fresh prompt.
    Empty,
    /// `:quit` / `:q`.
    Quit,
    /// `:help`.
    Help,
    /// `:relations`.
    Relations,
    /// `:stats` — server counters in the serve client, local session
    /// counters in the REPL (both render via [`crate::format_stats`]).
    Stats,
    /// `:optimize on|off`.
    Optimize(bool),
    /// `:engine <name>` — the name is validated by the front-end, which
    /// knows its available engines.
    Engine(String),
    /// `:priority high|normal|low` (serve client).
    Priority(Priority),
    /// `:install <name> <query>` — materialize `query` as a standing
    /// view named `name` and maintain it incrementally (serve client).
    Install(String, String),
    /// `:drop <name>` — deregister a standing view (serve client).
    Drop(String),
    /// `:view <name>` — read a maintained view's current result without
    /// re-executing its defining query (serve client).
    View(String),
    /// Anything not starting with `:` is query text for the s-expression
    /// parser.
    Query(String),
}

impl ReplCommand {
    /// Parse one input line.
    ///
    /// # Errors
    /// Returns a printable message for a malformed or unknown meta
    /// command (queries are never rejected here — the query parser owns
    /// that grammar).
    pub fn parse(line: &str) -> Result<ReplCommand, String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(ReplCommand::Empty);
        }
        if !line.starts_with(':') {
            return Ok(ReplCommand::Query(line.to_string()));
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match (cmd, rest) {
            (":quit" | ":q", "") => Ok(ReplCommand::Quit),
            (":help", "") => Ok(ReplCommand::Help),
            (":relations", "") => Ok(ReplCommand::Relations),
            (":stats", "") => Ok(ReplCommand::Stats),
            (":optimize", "on") => Ok(ReplCommand::Optimize(true)),
            (":optimize", "off") => Ok(ReplCommand::Optimize(false)),
            (":optimize", other) => Err(format!("`:optimize` wants on|off, got `{other}`")),
            (":engine", "") => Err("`:engine` wants a name".into()),
            (":engine", name) => Ok(ReplCommand::Engine(name.to_string())),
            (":priority", p) => p
                .parse::<Priority>()
                .map(ReplCommand::Priority)
                .map_err(|e| e.to_string()),
            (":install", rest) => match rest.split_once(char::is_whitespace) {
                Some((name, query)) if !query.trim().is_empty() => Ok(ReplCommand::Install(
                    name.to_string(),
                    query.trim().to_string(),
                )),
                _ => Err("`:install` wants a name and a query".into()),
            },
            (":drop", "") => Err("`:drop` wants a view name".into()),
            (":drop", name) => Ok(ReplCommand::Drop(name.to_string())),
            (":view", "") => Err("`:view` wants a view name".into()),
            (":view", name) => Ok(ReplCommand::View(name.to_string())),
            (other, _) => Err(format!("unknown command `{other}` (try :help)")),
        }
    }
}

/// A blocking client connection to a df-serve instance.
///
/// Requests can be issued call-and-response ([`ServeClient::request`]) or
/// pipelined ([`ServeClient::send`] several, then [`ServeClient::recv`]
/// each response) — the open-loop load generator relies on the latter,
/// matching responses to requests by id since the engine reorders across
/// priority classes.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connect to a server.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    /// Send one request frame without waiting for the response.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.writer, &request.encode())
    }

    /// Build a query request with the next pipelined id; pair with
    /// [`ServeClient::send`] + [`ServeClient::recv`].
    pub fn query_request(&mut self, text: &str, priority: Priority, optimize: bool) -> Request {
        let id = self.next_id;
        self.next_id += 1;
        Request::Query {
            id,
            priority,
            optimize,
            text: text.to_string(),
        }
    }

    /// Build an install-view request with the next pipelined id.
    pub fn install_view_request(&mut self, name: &str, text: &str) -> Request {
        let id = self.next_id;
        self.next_id += 1;
        Request::InstallView {
            id,
            name: name.to_string(),
            text: text.to_string(),
        }
    }

    /// Build a drop-view request with the next pipelined id.
    pub fn drop_view_request(&mut self, name: &str) -> Request {
        let id = self.next_id;
        self.next_id += 1;
        Request::DropView {
            id,
            name: name.to_string(),
        }
    }

    /// Build a read-view request with the next pipelined id.
    pub fn read_view_request(&mut self, name: &str) -> Request {
        let id = self.next_id;
        self.next_id += 1;
        Request::ReadView {
            id,
            name: name.to_string(),
        }
    }

    /// Read the next response frame.
    ///
    /// # Errors
    /// Socket failures, a server that hung up (`UnexpectedEof`), or an
    /// undecodable frame (`InvalidData`).
    pub fn recv(&mut self) -> io::Result<Response> {
        match read_frame(&mut self.reader)? {
            Some(payload) => Response::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Call-and-response: send `request`, wait for one response.
    ///
    /// # Errors
    /// As [`ServeClient::send`] and [`ServeClient::recv`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Submit one query and wait for its result or error.
    ///
    /// # Errors
    /// As [`ServeClient::request`].
    pub fn query(
        &mut self,
        text: &str,
        priority: Priority,
        optimize: bool,
    ) -> io::Result<Response> {
        let request = self.query_request(text, priority, optimize);
        self.request(&request)
    }

    /// Install a standing view and wait for the acknowledgement.
    ///
    /// # Errors
    /// As [`ServeClient::request`].
    pub fn install_view(&mut self, name: &str, text: &str) -> io::Result<Response> {
        let request = self.install_view_request(name, text);
        self.request(&request)
    }

    /// Drop a standing view and wait for the acknowledgement.
    ///
    /// # Errors
    /// As [`ServeClient::request`].
    pub fn drop_view(&mut self, name: &str) -> io::Result<Response> {
        let request = self.drop_view_request(name);
        self.request(&request)
    }

    /// Read a maintained view's current result.
    ///
    /// # Errors
    /// As [`ServeClient::request`].
    pub fn read_view(&mut self, name: &str) -> io::Result<Response> {
        let request = self.read_view_request(name);
        self.request(&request)
    }
}

#[cfg(test)]
mod tests {
    use super::{format_stats, ReplCommand};

    #[test]
    fn view_commands_parse() {
        assert_eq!(
            ReplCommand::parse(":install v (restrict (scan r00) (< val 5))"),
            Ok(ReplCommand::Install(
                "v".into(),
                "(restrict (scan r00) (< val 5))".into()
            ))
        );
        assert_eq!(
            ReplCommand::parse(":drop v"),
            Ok(ReplCommand::Drop("v".into()))
        );
        assert_eq!(
            ReplCommand::parse(":view v"),
            Ok(ReplCommand::View("v".into()))
        );
        for bad in [":install", ":install v", ":drop", ":view"] {
            assert!(ReplCommand::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn format_stats_groups_and_keeps_unknown_counters() {
        let rows: Vec<(String, u64)> = [
            ("submitted", 10),
            ("fused", 3),
            ("plan_cache_hits", 7),
            ("lanes", 2),
            ("lane0_execs", 4),
            ("lane1_execs", 2),
            ("mystery_counter", 42),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let text = format_stats(&rows);
        for section in ["admission:", "fusion:", "plan cache:", "lanes: 2", "other:"] {
            assert!(text.contains(section), "missing `{section}` in:\n{text}");
        }
        for row in ["submitted 10", "lane1_execs 2", "mystery_counter 42"] {
            assert!(text.contains(row), "missing `{row}` in:\n{text}");
        }
    }
}

//! df-serve: a standing query service over the df-host executor.
//!
//! The paper's data-flow database machine is a *service*: a master
//! controller that keeps accepting user queries, admits them under
//! relation-granularity locks, and multiplexes the processor pool across
//! everything admitted. The batch entry point
//! ([`df_host::run_host_queries`]) exercises that machinery for a fixed
//! query list; this crate wraps it in a long-lived front-end with the
//! concerns a standing service adds:
//!
//! * a length-prefixed request/response protocol over TCP
//!   ([`proto`], [`server`]),
//! * bounded per-client queues with typed backpressure, priority
//!   classes, and round-robin fairness ([`engine`]),
//! * fusion of identical concurrent read queries into one execution
//!   fanned out to every waiter ([`engine`]),
//! * structured [`df_host::HostError`] propagation over the wire to
//!   exactly the client whose query failed ([`proto::ServeError`]),
//! * client-side helpers and the interactive-shell command parser shared
//!   with the `repl` example ([`client`]).
//!
//! Start a server in-process:
//!
//! ```
//! use df_serve::{Engine, ServeConfig, Server, ServeClient};
//! use df_serve::proto::{Priority, Response};
//! use df_workload::{generate_database, DatabaseSpec};
//!
//! let db = generate_database(&DatabaseSpec::scaled(0.01));
//! let engine = Engine::new(db, ServeConfig::default()).unwrap();
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let server = Server::start(listener, engine).unwrap();
//!
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! let response = client
//!     .query("(restrict (scan r00) (< val 100))", Priority::Normal, true)
//!     .unwrap();
//! assert!(matches!(response, Response::Result(_)));
//!
//! server.shutdown();
//! server.join();
//! ```

pub mod client;
pub mod engine;
pub mod proto;
pub mod server;
pub mod sys;

pub use client::{format_stats, ReplCommand, ServeClient};
pub use engine::{Engine, EngineHandle, ServeConfig, ServeStats};
pub use proto::{Priority, Request, Response, ServeError};
pub use server::{Server, ServerOptions};

//! The admission/execution engine behind the socket front-end.
//!
//! One dispatcher thread (the serve-layer counterpart of the paper's
//! master controller) drains bounded per-client queues in batches and
//! executes each batch on the df-host executor:
//!
//! * **Backpressure** — each client has a bounded queue; a submission to a
//!   full queue is answered immediately with a typed
//!   [`ServeError::Busy`], never blocking the acceptor or the reader
//!   threads (the queue only shrinks when the dispatcher drains it).
//! * **Priority + fairness** — batch collection walks priority classes
//!   high → normal → low; within a class it round-robins over the *heads*
//!   of the client queues with a cursor that persists across batches, so
//!   a heavy client contributes at most one request per turn and cannot
//!   starve the rest. Each client's own requests stay FIFO.
//! * **Read-batch fusion** — identical concurrent read queries (same
//!   canonical plan, compared via [`df_query::render_tree`] after
//!   optional optimization) collapse to a single execution whose result
//!   is fanned out to every waiter — the Noria read-heavy-web-traffic
//!   trick, applied at batch granularity.
//! * **Lock-table grouping** — a batch is split into groups of mutually
//!   compatible lock requests ([`df_core::LockTable`]): reads of the same
//!   relations share a group and run concurrently inside one
//!   [`run_host_queries`] call (which re-admits them under the host
//!   scheduler's own relation lock manager), while conflicting writes
//!   land in separate groups and apply strictly serially against the
//!   owned catalog — no lost updates by construction.
//!
//! Failures are contained per request: a query that fails parsing,
//! validation, or execution (any [`HostError`], including a panicking
//! unit injected via [`df_host::FaultPlan`]) produces a structured
//! [`Response::Error`] to exactly that client while the rest of the batch
//! completes normally. The dispatcher itself never panics on query
//! content.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use df_core::{LockRequest, LockTable};
use df_host::{run_host_queries, HostError, HostParams};
use df_obs::{EventKind, Tracer};
use df_opt::{optimize, CatalogStats};
use df_query::{execute, parse_query, render_tree, ExecParams, QueryTree};
use df_relalg::Catalog;

use crate::proto::{Priority, QueryResult, Response, ServeError};

/// Serve-layer configuration. [`ServeConfig::validate`] is called by
/// [`Engine::new`]; execution itself reuses [`HostParams`] (validated by
/// the executor per batch).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded per-client admission queue depth. A submission past this
    /// is rejected with [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// Most requests drained into one execution batch.
    pub batch_max: usize,
    /// Executor configuration for read batches. `deterministic` is
    /// forced on so fused waiters receive byte-identical results and
    /// every response is oracle-comparable.
    pub host: HostParams,
    /// Serve-layer tracer: `query_admit`/`query_done` per request (the
    /// `query` field carries the client id) and `client_in`/`client_out`
    /// transfer bytes recorded by the socket layer. Independent of
    /// `host.trace`, which observes the executor's internals.
    pub trace: Option<Arc<Tracer>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 32,
            batch_max: 64,
            host: HostParams::default(),
            trace: None,
        }
    }
}

impl ServeConfig {
    /// Validate the serve-layer knobs (the executor's are checked by
    /// [`HostParams::validate`]).
    ///
    /// # Errors
    /// Returns a human-readable description of the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("`queue_capacity` must be >= 1".into());
        }
        if self.batch_max == 0 {
            return Err("`batch_max` must be >= 1".into());
        }
        self.host.validate().map_err(|e| e.to_string())
    }
}

/// How the engine hands a [`Response`] back to whoever submitted the
/// request — a socket writer on the server, a channel in tests.
pub type Reply = Box<dyn FnOnce(Response) + Send>;

/// One queued query request.
struct Submission {
    client: usize,
    id: u64,
    priority: Priority,
    optimize: bool,
    text: String,
    reply: Reply,
}

/// Cumulative serve-layer counters. All relaxed atomics: they are
/// monotonic tallies, not synchronization.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Query requests accepted into a queue.
    pub submitted: AtomicU64,
    /// Query requests rejected with [`ServeError::Busy`].
    pub busy_rejected: AtomicU64,
    /// Distinct executions dispatched (read groups count each deduped
    /// plan once; every write counts once).
    pub executed: AtomicU64,
    /// Requests served by another request's execution (fusion followers).
    pub fused: AtomicU64,
    /// Update queries applied to the catalog.
    pub writes_applied: AtomicU64,
    /// Requests answered with an error (parse, validation, or executor).
    pub failed: AtomicU64,
    /// Batches drained.
    pub batches: AtomicU64,
    /// Lock-compatibility groups executed.
    pub groups: AtomicU64,
    /// Request bytes read off client sockets (maintained by the server).
    pub bytes_in: AtomicU64,
    /// Response bytes written to client sockets (maintained by the
    /// server).
    pub bytes_out: AtomicU64,
}

impl ServeStats {
    /// Snapshot as stable `(name, value)` rows — the payload of
    /// [`Response::Stats`].
    pub fn rows(&self) -> Vec<(String, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("submitted".into(), g(&self.submitted)),
            ("busy_rejected".into(), g(&self.busy_rejected)),
            ("executed".into(), g(&self.executed)),
            ("fused".into(), g(&self.fused)),
            ("writes_applied".into(), g(&self.writes_applied)),
            ("failed".into(), g(&self.failed)),
            ("batches".into(), g(&self.batches)),
            ("groups".into(), g(&self.groups)),
            ("bytes_in".into(), g(&self.bytes_in)),
            ("bytes_out".into(), g(&self.bytes_out)),
        ]
    }
}

/// State shared between the dispatcher and every submitting thread.
struct Shared {
    inbox: Mutex<Inbox>,
    wake: Condvar,
    stats: ServeStats,
    queue_capacity: usize,
    /// One human-readable description per served relation, refreshed by
    /// the dispatcher after every applied write — lets the front-end
    /// answer `Relations` requests without reaching into the catalog.
    relations: Mutex<Vec<String>>,
}

struct Inbox {
    queues: Vec<VecDeque<Submission>>,
    /// Closed clients keep their slot (ids are never reused within a
    /// server lifetime) but accept no further submissions.
    open: Vec<bool>,
    shutdown: bool,
}

impl Inbox {
    fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Cloneable submission-side handle to a running [`Engine`].
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl EngineHandle {
    /// Register a new client; returns its id (dense, never reused).
    pub fn register_client(&self) -> usize {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        inbox.queues.push(VecDeque::new());
        inbox.open.push(true);
        inbox.queues.len() - 1
    }

    /// Mark a client disconnected: its queued requests are dropped (their
    /// replies would hit a dead socket) and further submissions refused.
    pub fn close_client(&self, client: usize) {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        if let Some(open) = inbox.open.get_mut(client) {
            *open = false;
        }
        if let Some(q) = inbox.queues.get_mut(client) {
            q.clear();
        }
    }

    /// Submit a query request on behalf of `client`. Admission control
    /// happens here: a full queue or a shutting-down engine answers
    /// through `reply` immediately (with [`ServeError::Busy`] /
    /// [`ServeError::ShuttingDown`]) and the dispatcher never sees the
    /// request.
    pub fn submit(
        &self,
        client: usize,
        id: u64,
        priority: Priority,
        optimize: bool,
        text: String,
        reply: Reply,
    ) {
        let rejection: Option<(ServeError, Reply)> = {
            let mut inbox = self.shared.inbox.lock().expect("inbox lock");
            if inbox.shutdown || !inbox.open.get(client).copied().unwrap_or(false) {
                Some((ServeError::ShuttingDown, reply))
            } else if inbox.queues[client].len() >= self.shared.queue_capacity {
                self.shared
                    .stats
                    .busy_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Some((
                    ServeError::Busy {
                        capacity: self.shared.queue_capacity as u64,
                    },
                    reply,
                ))
            } else {
                inbox.queues[client].push_back(Submission {
                    client,
                    id,
                    priority,
                    optimize,
                    text,
                    reply,
                });
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.shared.wake.notify_one();
                None
            }
        };
        // The rejection reply may write to a socket; invoke it outside
        // the inbox lock so a slow client cannot stall admission.
        if let Some((error, reply)) = rejection {
            reply(Response::Error { id, error });
        }
    }

    /// Ask the dispatcher to finish queued work and exit; subsequent
    /// submissions are refused with [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        inbox.shutdown = true;
        self.shared.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.inbox.lock().expect("inbox lock").shutdown
    }

    /// The cumulative serve-layer counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Current relation descriptions (name, schema, cardinality), as of
    /// the last applied write.
    pub fn relations(&self) -> Vec<String> {
        self.shared
            .relations
            .lock()
            .expect("relations lock")
            .clone()
    }
}

/// The dispatcher: owns the catalog and drains the inbox batch by batch.
pub struct Engine {
    shared: Arc<Shared>,
    db: Catalog,
    config: ServeConfig,
    /// Round-robin cursor over clients, persisted across batches.
    rr_cursor: usize,
    /// Catalog statistics for the optimizer, rebuilt lazily after writes.
    opt_stats: Option<CatalogStats>,
    /// Dense id for `query_admit` trace events (one per distinct
    /// execution).
    next_exec: u64,
}

impl Engine {
    /// Build an engine serving `db` under `config`.
    ///
    /// # Errors
    /// Returns a description of the first invalid configuration knob.
    pub fn new(db: Catalog, mut config: ServeConfig) -> Result<Engine, String> {
        config.validate()?;
        // Fused waiters must receive byte-identical results, and every
        // response must be comparable against the sequential oracle:
        // canonicalize results regardless of what the caller set.
        config.host.deterministic = true;
        let relations = db.iter().map(|r| r.to_string()).collect();
        Ok(Engine {
            shared: Arc::new(Shared {
                inbox: Mutex::new(Inbox {
                    queues: Vec::new(),
                    open: Vec::new(),
                    shutdown: false,
                }),
                wake: Condvar::new(),
                stats: ServeStats::default(),
                queue_capacity: config.queue_capacity,
                relations: Mutex::new(relations),
            }),
            db,
            config,
            rr_cursor: 0,
            opt_stats: None,
            next_exec: 0,
        })
    }

    /// A submission-side handle (cloneable, usable from any thread).
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The serve-layer tracer, if configured (the socket front-end needs
    /// it for `client_in`/`client_out` transfer events).
    pub fn trace(&self) -> Option<Arc<Tracer>> {
        self.config.trace.clone()
    }

    /// Drain and execute batches until shutdown is requested and the
    /// queues are empty.
    pub fn run(mut self) {
        while self.run_batch() {}
    }

    /// Block for the next batch and execute it. Returns `false` when the
    /// engine has shut down and nothing remains to drain — the dispatcher
    /// loop's exit condition, and the single-step entry point tests use.
    pub fn run_batch(&mut self) -> bool {
        let Some(batch) = self.collect_batch() else {
            return false;
        };
        self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.execute_batch(batch);
        true
    }

    /// Wait until work is pending (or shutdown), then drain up to
    /// `batch_max` requests: priority classes high → low, round-robin
    /// across client queue heads within a class.
    fn collect_batch(&mut self) -> Option<Vec<Submission>> {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        loop {
            if inbox.pending() > 0 {
                break;
            }
            if inbox.shutdown {
                return None;
            }
            inbox = self.shared.wake.wait(inbox).expect("inbox lock");
        }
        let clients = inbox.queues.len();
        let mut batch = Vec::new();
        'fill: while batch.len() < self.config.batch_max {
            for class in Priority::ALL {
                let mut picked = false;
                for step in 0..clients {
                    let c = (self.rr_cursor + step) % clients;
                    if inbox.queues[c].front().map(|s| s.priority) == Some(class) {
                        batch.push(inbox.queues[c].pop_front().expect("front exists"));
                        self.rr_cursor = c + 1;
                        picked = true;
                        break;
                    }
                }
                if picked {
                    // Restart from the highest class: the pop may have
                    // exposed a higher-priority head elsewhere.
                    continue 'fill;
                }
            }
            break; // no queue head left in any class
        }
        debug_assert!(!batch.is_empty(), "woke with pending work");
        Some(batch)
    }

    /// Parse, group by lock compatibility, and execute one batch.
    fn execute_batch(&mut self, batch: Vec<Submission>) {
        let trace = self.config.trace.clone();
        // Parse (and optionally optimize) each request; failures are
        // answered immediately and drop out of the batch.
        let mut entries: Vec<(Submission, QueryTree)> = Vec::with_capacity(batch.len());
        for sub in batch {
            match self.build_tree(&sub.text, sub.optimize) {
                Ok(tree) => entries.push((sub, tree)),
                Err(detail) => {
                    self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &trace {
                        t.record(EventKind::QueryDone, sub.client as u32, u32::MAX, 1, 0);
                    }
                    (sub.reply)(Response::Error {
                        id: sub.id,
                        error: ServeError::Parse { detail },
                    });
                }
            }
        }
        // Split into groups of mutually compatible lock requests,
        // preserving submission order among conflicting requests: a
        // request that conflicts with anything already granted waits for
        // a later group, so writes serialize against their readers and
        // against each other.
        let mut remaining = entries;
        while !remaining.is_empty() {
            let mut locks = LockTable::new();
            let mut group = Vec::new();
            let mut rest = Vec::new();
            for (sub, tree) in remaining {
                let request =
                    LockRequest::new(tree.referenced_relations(), tree.written_relations());
                if locks.compatible(&request) {
                    locks.grant(group.len(), &request);
                    group.push((sub, tree));
                } else {
                    rest.push((sub, tree));
                }
            }
            self.shared.stats.groups.fetch_add(1, Ordering::Relaxed);
            self.execute_group(group);
            remaining = rest;
        }
    }

    /// Parse query text and optionally run the optimizer over it.
    fn build_tree(&mut self, text: &str, optimizing: bool) -> Result<QueryTree, String> {
        let tree = parse_query(&self.db, text).map_err(|e| e.to_string())?;
        if !optimizing {
            return Ok(tree);
        }
        if self.opt_stats.is_none() {
            self.opt_stats = Some(CatalogStats::gather(&self.db));
        }
        let stats = self.opt_stats.as_ref().expect("just gathered");
        match optimize(&self.db, &tree, stats) {
            Ok(o) => Ok(o.tree),
            // An optimizer failure is not a query failure; run the
            // un-optimized tree.
            Err(_) => parse_query(&self.db, text).map_err(|e| e.to_string()),
        }
    }

    /// Execute one lock-compatible group: fused reads concurrently on the
    /// host executor, then writes strictly in order.
    fn execute_group(&mut self, group: Vec<(Submission, QueryTree)>) {
        let mut reads: Vec<(Submission, QueryTree)> = Vec::new();
        let mut writes: Vec<(Submission, QueryTree)> = Vec::new();
        for (sub, tree) in group {
            if tree.written_relations().is_empty() {
                reads.push((sub, tree));
            } else {
                writes.push((sub, tree));
            }
        }
        self.execute_reads(reads);
        self.execute_writes(writes);
    }

    /// Dedupe identical read plans on their canonical rendering, run the
    /// distinct plans as one concurrent df-host batch, and fan each
    /// result out to every waiter.
    fn execute_reads(&mut self, reads: Vec<(Submission, QueryTree)>) {
        if reads.is_empty() {
            return;
        }
        let trace = self.config.trace.clone();
        let mut distinct: Vec<QueryTree> = Vec::new();
        let mut waiters: Vec<Vec<Submission>> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for (sub, tree) in reads {
            let key = render_tree(&tree);
            match index.get(&key) {
                Some(&i) => {
                    self.shared.stats.fused.fetch_add(1, Ordering::Relaxed);
                    waiters[i].push(sub);
                }
                None => {
                    index.insert(key, distinct.len());
                    distinct.push(tree);
                    waiters.push(vec![sub]);
                }
            }
        }
        self.shared
            .stats
            .executed
            .fetch_add(distinct.len() as u64, Ordering::Relaxed);
        if let Some(t) = &trace {
            for (i, w) in waiters.iter().enumerate() {
                // One admit event per distinct execution; `a` = waiters
                // sharing it (> 1 ⟺ fused), `b` = dense execution id.
                t.record(
                    EventKind::QueryAdmit,
                    w[0].client as u32,
                    u32::MAX,
                    w.len() as u64,
                    self.next_exec + i as u64,
                );
            }
        }
        self.next_exec += distinct.len() as u64;

        match run_host_queries(&self.db, &distinct, &self.config.host) {
            Ok(out) => {
                for (result, subs) in out.results.into_iter().zip(waiters) {
                    match result {
                        Ok(rel) => {
                            let fan_out = subs.len() as u32;
                            let schema = rel.schema().to_string();
                            let tuples: Vec<Vec<u8>> =
                                rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
                            for sub in subs {
                                self.conclude(
                                    &trace,
                                    sub,
                                    Ok(QueryResult {
                                        id: 0, // filled per waiter below
                                        fan_out,
                                        schema: schema.clone(),
                                        tuples: tuples.clone(),
                                    }),
                                );
                            }
                        }
                        Err(e) => {
                            let error = ServeError::host(&e);
                            for sub in subs {
                                self.conclude(&trace, sub, Err(error.clone()));
                            }
                        }
                    }
                }
            }
            Err(e) => {
                // Run-level failure (validation, stall): every waiter of
                // the group gets the structured error; the server lives.
                let error = ServeError::host(&e);
                for subs in waiters {
                    for sub in subs {
                        self.conclude(&trace, sub, Err(error.clone()));
                    }
                }
            }
        }
    }

    /// Apply write queries strictly in submission order against the owned
    /// catalog. The affected tuples (what `append`/`delete` touched) are
    /// the response payload.
    fn execute_writes(&mut self, writes: Vec<(Submission, QueryTree)>) {
        if writes.is_empty() {
            return;
        }
        let trace = self.config.trace.clone();
        let exec = ExecParams {
            page_size: self.config.host.page_size,
            ..ExecParams::default()
        };
        for (sub, tree) in writes {
            self.opt_stats = None; // catalog statistics go stale
            let outcome = execute(&mut self.db, &tree, &exec);
            self.shared.stats.executed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &trace {
                t.record(
                    EventKind::QueryAdmit,
                    sub.client as u32,
                    u32::MAX,
                    1,
                    self.next_exec,
                );
            }
            self.next_exec += 1;
            match outcome {
                Ok(rel) => {
                    self.shared
                        .stats
                        .writes_applied
                        .fetch_add(1, Ordering::Relaxed);
                    let schema = rel.schema().to_string();
                    let tuples = rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
                    self.conclude(
                        &trace,
                        sub,
                        Ok(QueryResult {
                            id: 0,
                            fan_out: 1,
                            schema,
                            tuples,
                        }),
                    );
                }
                Err(e) => {
                    let error = ServeError::host(&HostError::Data(e));
                    self.conclude(&trace, sub, Err(error));
                }
            }
        }
        *self.shared.relations.lock().expect("relations lock") =
            self.db.iter().map(|r| r.to_string()).collect();
    }

    /// Send one request's final answer and record its `query_done` event.
    fn conclude(
        &self,
        trace: &Option<Arc<Tracer>>,
        sub: Submission,
        outcome: Result<QueryResult, ServeError>,
    ) {
        let response = match outcome {
            Ok(mut result) => {
                result.id = sub.id;
                Response::Result(result)
            }
            Err(error) => {
                self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                Response::Error { id: sub.id, error }
            }
        };
        if let Some(t) = trace {
            let failed = matches!(response, Response::Error { .. });
            t.record(
                EventKind::QueryDone,
                sub.client as u32,
                u32::MAX,
                u64::from(failed),
                0,
            );
        }
        (sub.reply)(response);
    }
}

//! The admission/execution engine behind the socket front-end.
//!
//! One dispatcher thread (the serve-layer counterpart of the paper's
//! master controller) drains bounded per-client queues in batches,
//! resolves each request to a cached plan, and hands lock-compatible
//! read groups — and individual writes — to a pool of executor *lanes*,
//! ordered by a per-relation gate:
//!
//! * **Backpressure** — each client has a bounded queue; a submission to a
//!   full queue is answered immediately with a typed
//!   [`ServeError::Busy`], never blocking the acceptor or the reader
//!   threads (the queue only shrinks when the dispatcher drains it).
//! * **Priority + fairness** — batch collection walks priority classes
//!   high → normal → low; within a class it round-robins over the *heads*
//!   of the client queues with a cursor that persists across batches, so
//!   a heavy client contributes at most one request per turn and cannot
//!   starve the rest. Each client's own requests stay FIFO.
//! * **Plan cache** — parsed (and optionally optimized) trees are cached
//!   in an LRU keyed by normalized query text, so repeat reads skip
//!   `parse_query` entirely. Each entry is tagged with the base relations
//!   its tree reads; an applied write evicts only the entries whose
//!   read-set intersects the written relations
//!   (`ServeStats::cache_evictions_partial` counts them), so a write to
//!   `A` leaves plans that only read `B` cached while a read admitted
//!   after a write still plans against the post-write catalog.
//! * **Read-batch fusion** — identical concurrent read queries (same
//!   canonical plan, compared via [`df_query::render_tree`] after
//!   optional optimization) collapse to a single execution whose result
//!   is fanned out to every waiter — the Noria read-heavy-web-traffic
//!   trick, applied at batch granularity.
//! * **In-flight fusion** — a read whose twin is *already executing* on a
//!   lane joins that execution's waiter list (the in-flight registry)
//!   and receives the same byte-identical fan-out, instead of waiting
//!   for the next batch. `ServeStats::inflight_joins` counts these late
//!   joiners; per read request exactly one of
//!   executed/fused/inflight_joins accounts for it.
//! * **Parallel lanes, partitioned writes** — read groups *and* writes
//!   are dispatched to `lanes` executor threads. Instead of the old
//!   global quiesce barrier, a per-relation gate ([`RelationGate`],
//!   built on [`df_core::LockTable`]) holds shared marks on every
//!   relation a task reads and exclusive marks on every relation a
//!   write mutates: writes to disjoint relations apply concurrently
//!   (`ServeStats::concurrent_write_batches` counts the overlap) while
//!   reads of untouched relations keep flowing. The dispatcher acquires
//!   marks in dispatch order before sending a task, so conflicting work
//!   still executes in submission order — the PR-7 no-lost-update
//!   argument now holds per relation instead of globally. A write runs
//!   split-phase ([`df_query::stage_write`] under the catalog read lock,
//!   [`df_query::apply_write`] under a brief write lock), which is sound
//!   because the gate's exclusive mark freezes the target between the
//!   two phases.
//! * **Lock-table grouping** — a batch is split into groups of mutually
//!   compatible lock requests ([`df_core::LockTable`]): reads of the same
//!   relations share a group and run concurrently inside one
//!   [`run_host_queries`] call (which re-admits them under the host
//!   scheduler's own relation lock manager), while conflicting writes
//!   land in separate groups and apply strictly serially against the
//!   shared catalog — no lost updates by construction.
//!
//! Failures are contained per request: a query that fails parsing,
//! validation, or execution (any [`HostError`], including a panicking
//! unit injected via [`df_host::FaultPlan`]) produces a structured
//! [`Response::Error`] to exactly that client while the rest of the batch
//! completes normally. Neither the dispatcher nor a lane ever panics on
//! query content — and if a lane *does* panic (a kernel bug, or a
//! [`df_host::FaultPlan::lane_panic_task`] injection), the panic is
//! caught, the task's waiters get a structured error, the task's gate
//! marks are released, and the server keeps serving everyone else.
//! Shared locks are acquired through poison-recovering helpers
//! ([`lock`], [`read_lock`], [`write_lock`]): every guarded structure is
//! left consistent at any panic point (counters are atomics, queues
//! mutate one whole element at a time, and catalog mutations go through
//! [`df_query::apply_write`], whose intermediate states are all valid),
//! so a poisoned mutex is recovered instead of cascading panics into
//! every other client's thread.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::thread::JoinHandle;

use df_core::{LockRequest, LockTable};
use df_host::{run_host_queries, HostError, HostParams, StandingView};
use df_obs::{EventKind, Tracer};
use df_opt::{optimize, CatalogStats};
use df_query::{apply_write, parse_query, render_tree, stage_write, ExecParams, QueryTree};
use df_relalg::Catalog;

use crate::proto::{Priority, QueryResult, Response, ServeError};

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Sound here because every structure guarded by a serve-layer mutex is
/// consistent at each possible panic point (see the module docs).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock`] for a shared (read) catalog guard. Reader panics never
/// poison a `RwLock`, but the recovery keeps readers alive after a
/// *writer* panic — which [`apply_write`] keeps consistent by
/// construction.
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock`] for the exclusive (write) catalog guard.
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with the same poison recovery as [`lock`].
fn wait_on<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Serve-layer configuration. [`ServeConfig::validate`] is called by
/// [`Engine::new`]; execution itself reuses [`HostParams`] (validated by
/// the executor per batch).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded per-client admission queue depth. A submission past this
    /// is rejected with [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// Most requests drained into one execution batch.
    pub batch_max: usize,
    /// Executor lanes (≥ 1). Each lock-compatible read group — and each
    /// write — is dispatched to one lane; with several lanes,
    /// independent reads and writes to disjoint relations execute
    /// concurrently while the dispatcher keeps collecting. The
    /// per-relation gate serializes conflicting tasks in dispatch
    /// order, whatever the lane count.
    pub lanes: usize,
    /// Plan-cache capacity in distinct (normalized text, optimize-flag)
    /// entries; 0 disables the cache. A write evicts exactly the entries
    /// whose read-set intersects the relations it mutates.
    pub plan_cache_capacity: usize,
    /// Executor configuration for read batches. `deterministic` is
    /// forced on so fused waiters receive byte-identical results and
    /// every response is oracle-comparable.
    pub host: HostParams,
    /// Serve-layer tracer: `query_admit`/`query_done` per request (the
    /// `query` field carries the client id) and `client_in`/`client_out`
    /// transfer bytes recorded by the socket layer. Independent of
    /// `host.trace`, which observes the executor's internals.
    pub trace: Option<Arc<Tracer>>,
    /// Test-only gate holding every lane before it executes its next
    /// task. Lets tests park a read execution deterministically so a
    /// twin read provably joins it in flight. Must be released before
    /// the engine is dropped or lane joins hang.
    #[doc(hidden)]
    pub lane_hold: Option<Arc<LaneHold>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 32,
            batch_max: 64,
            lanes: 2,
            plan_cache_capacity: 128,
            host: HostParams::default(),
            trace: None,
            lane_hold: None,
        }
    }
}

impl ServeConfig {
    /// Validate the serve-layer knobs (the executor's are checked by
    /// [`HostParams::validate`]).
    ///
    /// # Errors
    /// Returns a human-readable description of the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("`queue_capacity` must be >= 1".into());
        }
        if self.batch_max == 0 {
            return Err("`batch_max` must be >= 1".into());
        }
        if self.lanes == 0 {
            return Err("`lanes` must be >= 1".into());
        }
        self.host.validate().map_err(|e| e.to_string())
    }
}

/// Test-only gate parking lanes between task receipt and execution.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct LaneHold {
    held: Mutex<bool>,
    released: Condvar,
}

impl LaneHold {
    /// Park every lane before its next task until [`LaneHold::release`].
    pub fn hold(&self) {
        *lock(&self.held) = true;
    }

    /// Release parked lanes (and stop parking new tasks).
    pub fn release(&self) {
        *lock(&self.held) = false;
        self.released.notify_all();
    }

    fn wait(&self) {
        let mut held = lock(&self.held);
        while *held {
            held = wait_on(&self.released, held);
        }
    }
}

/// How the engine hands a [`Response`] back to whoever submitted the
/// request — a socket writer on the server, a channel in tests.
pub type Reply = Box<dyn FnOnce(Response) + Send>;

/// What a queued submission asks the engine to do. Queries flow through
/// the plan cache and the read/write lanes; the view requests are
/// dispatched as [`ViewTask`]s ordered by the same relation gate under
/// pseudo-relation marks (`view:<name>`).
enum SubmissionKind {
    /// Run `Submission::text` as a query.
    Query,
    /// Install a standing view defined by `Submission::text`.
    InstallView {
        /// The view's handle.
        name: String,
    },
    /// Uninstall a standing view.
    DropView {
        /// The view's handle.
        name: String,
    },
    /// Serve a maintained view's current result without re-execution.
    ReadView {
        /// The view's handle.
        name: String,
    },
}

/// One queued request.
struct Submission {
    client: usize,
    id: u64,
    priority: Priority,
    optimize: bool,
    text: String,
    kind: SubmissionKind,
    reply: Reply,
}

/// Cumulative serve-layer counters. All relaxed atomics: they are
/// monotonic tallies, not synchronization.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Query requests accepted into a queue.
    pub submitted: AtomicU64,
    /// Query requests rejected with [`ServeError::Busy`].
    pub busy_rejected: AtomicU64,
    /// Read requests that reached read scheduling (parsed successfully,
    /// no write target). Conservation: `reads == read_execs + fused +
    /// inflight_joins` — every read is executed, batch-fused, or joined
    /// to an in-flight twin, exactly once.
    pub reads: AtomicU64,
    /// Distinct executions dispatched (read groups count each deduped
    /// plan once; every write counts once).
    pub executed: AtomicU64,
    /// Distinct read plans dispatched to a lane (the read share of
    /// `executed`).
    pub read_execs: AtomicU64,
    /// Requests served by another request's execution in the same batch
    /// (fusion followers).
    pub fused: AtomicU64,
    /// Requests that joined an already-executing identical read across a
    /// batch boundary (late fusion joiners).
    pub inflight_joins: AtomicU64,
    /// `parse_query` invocations — at most one per plan-cache miss; the
    /// regression guard for the parse-twice bug the cache subsumed.
    pub parses: AtomicU64,
    /// Requests whose plan came out of the cache.
    pub plan_cache_hits: AtomicU64,
    /// Requests that had to parse (and possibly optimize) from scratch.
    pub plan_cache_misses: AtomicU64,
    /// Update queries applied to the catalog.
    pub writes_applied: AtomicU64,
    /// Plan-cache entries evicted by relation-scoped invalidation —
    /// entries whose read-set intersected an applied write's target
    /// relations. Under the old wholesale `clear()` this would equal the
    /// entire cache population at every write.
    pub cache_evictions_partial: AtomicU64,
    /// Write tasks dispatched while another write was still in flight —
    /// impossible under the old global quiesce barrier, which drained
    /// every lane before each write applied. Nonzero proves writes to
    /// disjoint relations no longer serialize behind one another.
    pub concurrent_write_batches: AtomicU64,
    /// Clients admitted through the poll(2) multiplexed reader (the
    /// `--mux` server mode); 0 in thread-per-connection mode.
    pub mux_clients: AtomicU64,
    /// Standing views successfully installed.
    pub views_installed: AtomicU64,
    /// Delta pages that flowed through standing-view dataflows: base
    /// writes injected at the sources plus the distinct-image pages the
    /// incremental kernels consumed. Zero while no view is installed.
    pub delta_pages: AtomicU64,
    /// View reads served from maintained state. None of these touched
    /// the plan cache or a read lane: a view read never re-executes the
    /// defining tree.
    pub view_reads_served: AtomicU64,
    /// Requests answered with an error (parse, validation, or executor).
    pub failed: AtomicU64,
    /// Batches drained.
    pub batches: AtomicU64,
    /// Lock-compatibility groups executed.
    pub groups: AtomicU64,
    /// Request bytes read off client sockets (maintained by the server).
    pub bytes_in: AtomicU64,
    /// Response bytes written to client sockets (maintained by the
    /// server).
    pub bytes_out: AtomicU64,
    /// Distinct executions (read plans and writes) per lane, indexed by
    /// lane id.
    pub lane_execs: Vec<AtomicU64>,
}

impl ServeStats {
    /// Counters for an engine with `lanes` read lanes.
    pub fn with_lanes(lanes: usize) -> ServeStats {
        ServeStats {
            lane_execs: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            ..ServeStats::default()
        }
    }

    /// Snapshot as stable `(name, value)` rows — the payload of
    /// [`Response::Stats`].
    pub fn rows(&self) -> Vec<(String, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut rows = vec![
            ("submitted".into(), g(&self.submitted)),
            ("busy_rejected".into(), g(&self.busy_rejected)),
            ("reads".into(), g(&self.reads)),
            ("executed".into(), g(&self.executed)),
            ("read_execs".into(), g(&self.read_execs)),
            ("fused".into(), g(&self.fused)),
            ("inflight_joins".into(), g(&self.inflight_joins)),
            ("parses".into(), g(&self.parses)),
            ("plan_cache_hits".into(), g(&self.plan_cache_hits)),
            ("plan_cache_misses".into(), g(&self.plan_cache_misses)),
            ("writes_applied".into(), g(&self.writes_applied)),
            (
                "cache_evictions_partial".into(),
                g(&self.cache_evictions_partial),
            ),
            (
                "concurrent_write_batches".into(),
                g(&self.concurrent_write_batches),
            ),
            ("mux_clients".into(), g(&self.mux_clients)),
            ("views_installed".into(), g(&self.views_installed)),
            ("delta_pages".into(), g(&self.delta_pages)),
            ("view_reads_served".into(), g(&self.view_reads_served)),
            ("failed".into(), g(&self.failed)),
            ("batches".into(), g(&self.batches)),
            ("groups".into(), g(&self.groups)),
            ("bytes_in".into(), g(&self.bytes_in)),
            ("bytes_out".into(), g(&self.bytes_out)),
            ("lanes".into(), self.lane_execs.len() as u64),
        ];
        for (i, lane) in self.lane_execs.iter().enumerate() {
            rows.push((format!("lane{i}_execs"), g(lane)));
        }
        rows
    }
}

/// A resolved plan: the (possibly optimized) tree, its canonical
/// rendering, and its relation footprint, shared between the cache, the
/// fusion index, the in-flight registry, and the relation gate.
#[derive(Clone)]
struct Plan {
    tree: Arc<QueryTree>,
    key: Arc<str>,
    /// Base relations the tree reads (sorted, deduped; a write also
    /// reads its target) — the invalidation read-set and the shared half
    /// of the gate request.
    reads: Arc<[String]>,
    /// Relations the root update mutates (empty for reads) — the
    /// exclusive half of the gate request.
    writes: Arc<[String]>,
}

impl Plan {
    fn from_tree(tree: QueryTree) -> Plan {
        Plan {
            key: Arc::from(render_tree(&tree).as_str()),
            reads: tree.referenced_relations().into(),
            writes: tree.written_relations().into(),
            tree: Arc::new(tree),
        }
    }

    /// The per-relation gate marks this plan's execution needs.
    fn gate_request(&self) -> LockRequest {
        LockRequest::new(self.reads.to_vec(), self.writes.to_vec())
    }
}

/// Dispatcher-owned LRU of resolved plans, keyed by normalized query
/// text plus the optimize flag. Capacity is small, so eviction is a
/// linear scan for the stalest tick — no extra list to maintain.
struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<(String, bool), (Plan, u64)>,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, key: &(String, bool)) -> Option<Plan> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(plan, used)| {
            *used = tick;
            plan.clone()
        })
    }

    fn insert(&mut self, key: (String, bool), plan: Plan) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(stalest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(key, (plan, self.tick));
    }

    /// Relation-scoped invalidation: evict exactly the entries whose
    /// read-set intersects `written` (sorted, as
    /// [`QueryTree::written_relations`] returns it), and return how many
    /// were evicted. Entries reading only untouched relations survive,
    /// so `parses == plan_cache_misses` stays a per-relation invariant:
    /// a plan is re-parsed only when a relation it reads changed.
    fn evict_reading(&mut self, written: &[String]) -> u64 {
        let before = self.entries.len();
        self.entries
            .retain(|_, (plan, _)| !plan.reads.iter().any(|r| written.binary_search(r).is_ok()));
        (before - self.entries.len()) as u64
    }
}

/// Per-relation reader/writer accounting — the paper's insertion-ring
/// discipline applied to the serve layer: any number of concurrent
/// readers per relation, or one writer, never both. The dispatcher
/// acquires marks in dispatch order *before* sending a task to a lane
/// (so conflicting tasks execute in submission order); the lane that ran
/// the task releases them after fan-out. Built on the same
/// [`df_core::LockTable`] rules that group batches, keyed by a
/// monotonically increasing ticket.
struct RelationGate {
    state: Mutex<GateState>,
    freed: Condvar,
}

struct GateState {
    table: LockTable,
    next_ticket: usize,
}

impl RelationGate {
    fn new() -> RelationGate {
        RelationGate {
            state: Mutex::new(GateState {
                table: LockTable::new(),
                next_ticket: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// Block until `request` is compatible with every held mark, then
    /// grant it. Only the dispatcher acquires (single-threaded, so
    /// waiting here cannot deadlock: lanes only release), and the
    /// returned ticket is handed to the executing lane for
    /// [`RelationGate::release`].
    fn acquire(&self, request: &LockRequest) -> usize {
        let mut state = lock(&self.state);
        while !state.table.compatible(request) {
            state = wait_on(&self.freed, state);
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.table.grant(ticket, request);
        ticket
    }

    fn release(&self, ticket: usize) {
        lock(&self.state).table.release(ticket);
        self.freed.notify_all();
    }
}

/// Collapse whitespace runs so trivially reformatted repeats of the same
/// query text share a cache entry.
fn normalize_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_gap = true; // leading whitespace is dropped
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !in_gap {
                out.push(' ');
                in_gap = true;
            }
        } else {
            out.push(ch);
            in_gap = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// One read execution currently queued on or running inside a lane. Kept
/// in the in-flight registry from dispatch until the lane fans the
/// result out; late twins append themselves to `waiters`.
struct Inflight {
    exec_id: u64,
    waiters: Vec<Submission>,
}

/// One distinct read plan inside a lane task.
struct ReadExec {
    key: Arc<str>,
    tree: QueryTree,
}

/// What a lane pulls off the shared task channel. Every task carries the
/// gate ticket the dispatcher acquired for it; the lane releases the
/// ticket after fan-out (reads) or apply (writes), even if the task
/// panicked.
enum LaneTask {
    Read(ReadTask),
    Write(WriteTask),
    View(ViewTask),
}

/// One lock-compatible read group, executed by a single lane as one
/// concurrent [`run_host_queries`] batch.
struct ReadTask {
    execs: Vec<ReadExec>,
    ticket: usize,
}

/// One update query, executed split-phase by a lane: `stage_write` under
/// the catalog read lock, `apply_write` under the write lock. The gate's
/// exclusive mark on the target makes the split sound.
struct WriteTask {
    /// Taken (`Option::take`) at conclusion; a panic before that point
    /// leaves it here for the containment path to answer.
    sub: Option<Submission>,
    tree: Arc<QueryTree>,
    ticket: usize,
}

/// One standing-view operation, ordered against conflicting work by the
/// gate marks the dispatcher acquired: an install holds shared marks on
/// the view's base relations (its from-scratch materialization must not
/// race a base write) plus an exclusive `view:<name>` mark; drops and
/// reads hold exclusive/shared `view:<name>` marks respectively. A base
/// write holds exclusive `view:<name>` marks for every installed view
/// that reads its target, so view maintenance and view reads serialize
/// in dispatch order.
struct ViewTask {
    /// Taken at conclusion; the containment path answers a leftover.
    sub: Option<Submission>,
    action: ViewAction,
    ticket: usize,
}

enum ViewAction {
    /// Materialize and register `name`, defined by `text` (parsed to
    /// `tree` at dispatch).
    Install {
        name: String,
        text: String,
        tree: Box<QueryTree>,
    },
    /// Deregister `name`.
    Drop { name: String },
    /// Serve `name`'s maintained result.
    Read { name: String },
}

/// The pseudo-relation the gate uses to order operations on one view.
/// Cannot collide with a real relation: `:` never appears in catalog
/// names.
fn view_mark(name: &str) -> String {
    format!("view:{name}")
}

/// State shared between the dispatcher, the lanes, and every submitting
/// thread.
struct Shared {
    inbox: Mutex<Inbox>,
    wake: Condvar,
    stats: ServeStats,
    queue_capacity: usize,
    /// The served catalog. Lanes hold the read lock for the duration of
    /// a read execution and of a write's staging phase; a write's apply
    /// phase takes the write lock briefly. The relation gate — not this
    /// lock — is what orders conflicting tasks.
    db: RwLock<Catalog>,
    /// Read executions dispatched but not yet fanned out, keyed by
    /// canonical plan rendering. Guards the join-vs-complete race: a
    /// twin read either finds the entry and joins, or misses and
    /// schedules fresh — never both, never neither. A lane removes a
    /// task's entries strictly before releasing its gate ticket, so a
    /// read admitted after a conflicting write can never join a
    /// pre-write execution.
    inflight: Mutex<HashMap<Arc<str>, Inflight>>,
    /// Per-relation reader/writer marks ordering conflicting lane tasks.
    gate: RelationGate,
    /// Lane tasks dispatched and not yet completed (reads and writes);
    /// [`EngineHandle::quiesce`] waits for zero.
    lane_busy: Mutex<usize>,
    lane_idle: Condvar,
    /// Write tasks dispatched and not yet completed; used to detect (and
    /// count) writes overlapping writes.
    writes_in_flight: AtomicU64,
    /// Global lane-task sequence numbers, the coordinate system for
    /// [`df_host::FaultPlan::lane_panic_task`] injection.
    lane_task_seq: AtomicU64,
    /// One human-readable description per served relation, refreshed by
    /// the lane that applied the latest write — lets the front-end
    /// answer `Relations` requests without reaching into the catalog.
    relations: Mutex<Vec<String>>,
    /// Installed standing views. Registered by the lane that ran the
    /// install (after materialization), updated by every write lane
    /// whose target the view reads, removed by drops — all serialized
    /// per view by the gate's `view:<name>` marks.
    views: Mutex<BTreeMap<String, Arc<Mutex<StandingView>>>>,
    /// Dispatch-time view authority: name → base relations, updated by
    /// the dispatcher the moment it admits an install or drop (before
    /// the lane runs it). Write dispatch reads this to add exclusive
    /// `view:<name>` marks for every view its target feeds, so the map
    /// must lead the registry by exactly the dispatch order. A failed
    /// install's lane removes its entry.
    view_bases: Mutex<BTreeMap<String, Vec<String>>>,
}

impl Shared {
    /// Send one request's final answer and record its `query_done` event.
    fn conclude(
        &self,
        trace: &Option<Arc<Tracer>>,
        sub: Submission,
        outcome: Result<QueryResult, ServeError>,
    ) {
        let response = match outcome {
            Ok(mut result) => {
                result.id = sub.id;
                Response::Result(result)
            }
            Err(error) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                Response::Error { id: sub.id, error }
            }
        };
        if let Some(t) = trace {
            let failed = matches!(response, Response::Error { .. });
            t.record(
                EventKind::QueryDone,
                sub.client as u32,
                u32::MAX,
                u64::from(failed),
                0,
            );
        }
        (sub.reply)(response);
    }

    /// Block until no lane task is queued or executing — the test/bench
    /// drain point (no longer a write barrier: writes order themselves
    /// through the relation gate).
    fn quiesce_lanes(&self) {
        let mut busy = lock(&self.lane_busy);
        while *busy > 0 {
            busy = wait_on(&self.lane_idle, busy);
        }
    }
}

struct Inbox {
    queues: Vec<VecDeque<Submission>>,
    /// Closed clients keep their slot (ids are never reused within a
    /// server lifetime) but accept no further submissions.
    open: Vec<bool>,
    shutdown: bool,
}

impl Inbox {
    fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Cloneable submission-side handle to a running [`Engine`].
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl EngineHandle {
    /// Register a new client; returns its id (dense, never reused).
    pub fn register_client(&self) -> usize {
        let mut inbox = lock(&self.shared.inbox);
        inbox.queues.push(VecDeque::new());
        inbox.open.push(true);
        inbox.queues.len() - 1
    }

    /// Mark a client disconnected: its queued requests are dropped (their
    /// replies would hit a dead socket) and further submissions refused.
    pub fn close_client(&self, client: usize) {
        let mut inbox = lock(&self.shared.inbox);
        if let Some(open) = inbox.open.get_mut(client) {
            *open = false;
        }
        if let Some(q) = inbox.queues.get_mut(client) {
            q.clear();
        }
    }

    /// Submit a query request on behalf of `client`. Admission control
    /// happens here: a full queue or a shutting-down engine answers
    /// through `reply` immediately (with [`ServeError::Busy`] /
    /// [`ServeError::ShuttingDown`]) and the dispatcher never sees the
    /// request.
    pub fn submit(
        &self,
        client: usize,
        id: u64,
        priority: Priority,
        optimize: bool,
        text: String,
        reply: Reply,
    ) {
        self.enqueue(Submission {
            client,
            id,
            priority,
            optimize,
            text,
            kind: SubmissionKind::Query,
            reply,
        });
    }

    /// Submit a standing-view install: materialize `text` once, then
    /// maintain the result from base-relation deltas. Subject to the
    /// same admission control as [`EngineHandle::submit`].
    pub fn install_view(&self, client: usize, id: u64, name: String, text: String, reply: Reply) {
        self.enqueue(Submission {
            client,
            id,
            priority: Priority::Normal,
            optimize: false,
            text,
            kind: SubmissionKind::InstallView { name },
            reply,
        });
    }

    /// Submit a standing-view drop.
    pub fn drop_view(&self, client: usize, id: u64, name: String, reply: Reply) {
        self.enqueue(Submission {
            client,
            id,
            priority: Priority::Normal,
            optimize: false,
            text: String::new(),
            kind: SubmissionKind::DropView { name },
            reply,
        });
    }

    /// Submit a view read, answered from the maintained result — the
    /// defining query is never re-executed.
    pub fn read_view(&self, client: usize, id: u64, name: String, reply: Reply) {
        self.enqueue(Submission {
            client,
            id,
            priority: Priority::Normal,
            optimize: false,
            text: String::new(),
            kind: SubmissionKind::ReadView { name },
            reply,
        });
    }

    fn enqueue(&self, sub: Submission) {
        let id = sub.id;
        let rejection: Option<(ServeError, Reply)> = {
            let mut inbox = lock(&self.shared.inbox);
            if inbox.shutdown || !inbox.open.get(sub.client).copied().unwrap_or(false) {
                Some((ServeError::ShuttingDown, sub.reply))
            } else if inbox.queues[sub.client].len() >= self.shared.queue_capacity {
                self.shared
                    .stats
                    .busy_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Some((
                    ServeError::Busy {
                        capacity: self.shared.queue_capacity as u64,
                    },
                    sub.reply,
                ))
            } else {
                let client = sub.client;
                inbox.queues[client].push_back(sub);
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.shared.wake.notify_one();
                None
            }
        };
        // The rejection reply may write to a socket; invoke it outside
        // the inbox lock so a slow client cannot stall admission.
        if let Some((error, reply)) = rejection {
            reply(Response::Error { id, error });
        }
    }

    /// Ask the dispatcher to finish queued work and exit; subsequent
    /// submissions are refused with [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        let mut inbox = lock(&self.shared.inbox);
        inbox.shutdown = true;
        self.shared.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        lock(&self.shared.inbox).shutdown
    }

    /// Block until every dispatched lane task (read or write) has
    /// completed and fanned out its replies. Tests and benchmarks pair
    /// this with
    /// [`Engine::run_batch`] — the dispatch itself is asynchronous.
    pub fn quiesce(&self) {
        self.shared.quiesce_lanes();
    }

    /// The cumulative serve-layer counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Current relation descriptions (name, schema, cardinality), as of
    /// the last applied write.
    pub fn relations(&self) -> Vec<String> {
        lock(&self.shared.relations).clone()
    }
}

/// The dispatcher: plans every request, acquires each task's gate
/// marks in dispatch order, and feeds the lanes.
pub struct Engine {
    shared: Arc<Shared>,
    config: ServeConfig,
    /// Round-robin cursor over clients, persisted across batches.
    rr_cursor: usize,
    /// Catalog statistics for the optimizer, rebuilt lazily after writes.
    opt_stats: Option<CatalogStats>,
    /// Parsed/optimized plans keyed by normalized text, invalidated on
    /// every applied write.
    plan_cache: PlanCache,
    /// Dense id for `query_admit` trace events (one per distinct
    /// execution).
    next_exec: u64,
    /// Sender side of the lane task channel; dropped on engine drop so
    /// lanes drain and exit.
    lane_tx: Option<Sender<LaneTask>>,
    lane_handles: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Build an engine serving `db` under `config`, spawning its read
    /// lanes immediately.
    ///
    /// # Errors
    /// Returns a description of the first invalid configuration knob.
    pub fn new(db: Catalog, mut config: ServeConfig) -> Result<Engine, String> {
        config.validate()?;
        // Fused waiters must receive byte-identical results, and every
        // response must be comparable against the sequential oracle:
        // canonicalize results regardless of what the caller set.
        config.host.deterministic = true;
        let relations = db.iter().map(|r| r.to_string()).collect();
        let shared = Arc::new(Shared {
            inbox: Mutex::new(Inbox {
                queues: Vec::new(),
                open: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            stats: ServeStats::with_lanes(config.lanes),
            queue_capacity: config.queue_capacity,
            db: RwLock::new(db),
            inflight: Mutex::new(HashMap::new()),
            gate: RelationGate::new(),
            lane_busy: Mutex::new(0),
            lane_idle: Condvar::new(),
            writes_in_flight: AtomicU64::new(0),
            lane_task_seq: AtomicU64::new(0),
            relations: Mutex::new(relations),
            views: Mutex::new(BTreeMap::new()),
            view_bases: Mutex::new(BTreeMap::new()),
        });
        let (lane_tx, lane_rx) = channel::<LaneTask>();
        let lane_rx = Arc::new(Mutex::new(lane_rx));
        let lane_handles = (0..config.lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&lane_rx);
                let host = config.host.clone();
                let trace = config.trace.clone();
                let hold = config.lane_hold.clone();
                std::thread::Builder::new()
                    .name(format!("serve-lane-{lane}"))
                    .spawn(move || lane_loop(lane, &shared, &rx, &host, &trace, hold.as_deref()))
                    .expect("spawn lane")
            })
            .collect();
        let plan_cache = PlanCache::new(config.plan_cache_capacity);
        Ok(Engine {
            shared,
            config,
            rr_cursor: 0,
            opt_stats: None,
            plan_cache,
            next_exec: 0,
            lane_tx: Some(lane_tx),
            lane_handles,
        })
    }

    /// A submission-side handle (cloneable, usable from any thread).
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The serve-layer tracer, if configured (the socket front-end needs
    /// it for `client_in`/`client_out` transfer events).
    pub fn trace(&self) -> Option<Arc<Tracer>> {
        self.config.trace.clone()
    }

    /// Drain and execute batches until shutdown is requested and the
    /// queues are empty, then drain the lanes. Lane threads are joined
    /// when the engine drops at the end of this call, so a completed
    /// `run` means every accepted request was answered.
    pub fn run(mut self) {
        while self.run_batch() {}
        self.shared.quiesce_lanes();
    }

    /// Block for the next batch and execute it: reads and writes are
    /// dispatched to the lanes (pair with [`EngineHandle::quiesce`] to
    /// wait for their replies). Returns `false` when the engine has
    /// shut down and nothing remains to drain — the dispatcher loop's
    /// exit condition, and the single-step entry point tests use.
    pub fn run_batch(&mut self) -> bool {
        let Some(batch) = self.collect_batch() else {
            return false;
        };
        self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.execute_batch(batch);
        true
    }

    /// Wait until work is pending (or shutdown), then drain up to
    /// `batch_max` requests: priority classes high → low, round-robin
    /// across client queue heads within a class.
    fn collect_batch(&mut self) -> Option<Vec<Submission>> {
        let mut inbox = lock(&self.shared.inbox);
        loop {
            if inbox.pending() > 0 {
                break;
            }
            if inbox.shutdown {
                return None;
            }
            inbox = wait_on(&self.shared.wake, inbox);
        }
        let clients = inbox.queues.len();
        let mut batch = Vec::new();
        'fill: while batch.len() < self.config.batch_max {
            for class in Priority::ALL {
                let mut picked = false;
                for step in 0..clients {
                    let c = (self.rr_cursor + step) % clients;
                    if inbox.queues[c].front().map(|s| s.priority) == Some(class) {
                        batch.push(inbox.queues[c].pop_front().expect("front exists"));
                        self.rr_cursor = c + 1;
                        picked = true;
                        break;
                    }
                }
                if picked {
                    // Restart from the highest class: the pop may have
                    // exposed a higher-priority head elsewhere.
                    continue 'fill;
                }
            }
            break; // no queue head left in any class
        }
        debug_assert!(!batch.is_empty(), "woke with pending work");
        Some(batch)
    }

    /// Execute one batch in submission order: runs of query requests go
    /// through plan resolution and lock-compatibility grouping; each
    /// view request flushes the pending run (so its gate marks are
    /// acquired after every earlier query's) and dispatches on its own.
    fn execute_batch(&mut self, batch: Vec<Submission>) {
        let mut queries: Vec<Submission> = Vec::new();
        for sub in batch {
            if matches!(sub.kind, SubmissionKind::Query) {
                queries.push(sub);
            } else {
                self.execute_queries(std::mem::take(&mut queries));
                self.dispatch_view(sub);
            }
        }
        self.execute_queries(queries);
    }

    /// Plan, group by lock compatibility, and execute one run of query
    /// requests.
    fn execute_queries(&mut self, batch: Vec<Submission>) {
        if batch.is_empty() {
            return;
        }
        let trace = self.config.trace.clone();
        // Resolve each request to a plan (cache hit or parse+optimize);
        // failures are answered immediately and drop out of the batch.
        let mut entries: Vec<(Submission, Plan)> = Vec::with_capacity(batch.len());
        for sub in batch {
            match self.resolve_plan(&sub.text, sub.optimize) {
                Ok(plan) => entries.push((sub, plan)),
                Err(detail) => {
                    self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &trace {
                        t.record(EventKind::QueryDone, sub.client as u32, u32::MAX, 1, 0);
                    }
                    (sub.reply)(Response::Error {
                        id: sub.id,
                        error: ServeError::Parse { detail },
                    });
                }
            }
        }
        // Split into groups of mutually compatible lock requests,
        // preserving submission order among conflicting requests: a
        // request that conflicts with anything already granted waits for
        // a later group, so writes serialize against their readers and
        // against each other.
        let mut remaining = entries;
        while !remaining.is_empty() {
            let mut locks = LockTable::new();
            let mut group = Vec::new();
            let mut rest = Vec::new();
            for (sub, plan) in remaining {
                let request = plan.gate_request();
                if locks.compatible(&request) {
                    locks.grant(group.len(), &request);
                    group.push((sub, plan));
                } else {
                    rest.push((sub, plan));
                }
            }
            self.shared.stats.groups.fetch_add(1, Ordering::Relaxed);
            self.execute_group(group);
            remaining = rest;
        }
    }

    /// Resolve query text to a plan: hit the cache, or parse once (and
    /// optionally optimize) and fill it. The single `parse_query` call —
    /// counted in `ServeStats::parses` — is shared by the
    /// optimizer-failure fallback, which reuses the already-parsed tree
    /// instead of parsing the same text a second time.
    fn resolve_plan(&mut self, text: &str, optimizing: bool) -> Result<Plan, String> {
        let cache_key = (normalize_text(text), optimizing);
        if let Some(plan) = self.plan_cache.get(&cache_key) {
            self.shared
                .stats
                .plan_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        self.shared
            .stats
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        let db = read_lock(&self.shared.db);
        self.shared.stats.parses.fetch_add(1, Ordering::Relaxed);
        let tree = parse_query(&db, text).map_err(|e| e.to_string())?;
        let tree = if optimizing {
            if self.opt_stats.is_none() {
                self.opt_stats = Some(CatalogStats::gather(&db));
            }
            let stats = self.opt_stats.as_ref().expect("just gathered");
            match optimize(&db, &tree, stats) {
                Ok(o) => o.tree,
                // An optimizer failure is not a query failure; run the
                // un-optimized tree (no second parse).
                Err(_) => tree,
            }
        } else {
            tree
        };
        drop(db);
        let plan = Plan::from_tree(tree);
        self.plan_cache.insert(cache_key, plan.clone());
        Ok(plan)
    }

    /// Execute one lock-compatible group: reads deduped, joined against
    /// in-flight twins, and dispatched as one lane task; writes
    /// dispatched as one lane task each. (Within a group, reads and
    /// writes touch disjoint relations by construction, so dispatch
    /// order between them is immaterial.)
    fn execute_group(&mut self, group: Vec<(Submission, Plan)>) {
        let mut reads: Vec<(Submission, Plan)> = Vec::new();
        let mut writes: Vec<(Submission, Plan)> = Vec::new();
        for (sub, plan) in group {
            if plan.writes.is_empty() {
                reads.push((sub, plan));
            } else {
                writes.push((sub, plan));
            }
        }
        self.dispatch_reads(reads);
        self.dispatch_writes(writes);
    }

    /// Dedupe identical read plans on their canonical rendering, join
    /// late twins onto in-flight executions, and hand the remainder to a
    /// lane as one concurrent df-host batch.
    fn dispatch_reads(&mut self, reads: Vec<(Submission, Plan)>) {
        if reads.is_empty() {
            return;
        }
        let trace = self.config.trace.clone();
        self.shared
            .stats
            .reads
            .fetch_add(reads.len() as u64, Ordering::Relaxed);
        // Batch-level fusion: one entry per distinct canonical plan.
        let mut distinct: Vec<(Plan, Vec<Submission>)> = Vec::new();
        let mut index: HashMap<Arc<str>, usize> = HashMap::new();
        for (sub, plan) in reads {
            match index.get(&plan.key) {
                Some(&i) => {
                    self.shared.stats.fused.fetch_add(1, Ordering::Relaxed);
                    distinct[i].1.push(sub);
                }
                None => {
                    index.insert(Arc::clone(&plan.key), distinct.len());
                    distinct.push((plan, vec![sub]));
                }
            }
        }
        // In-flight fusion: a plan whose twin is already queued on or
        // running inside a lane joins that execution's waiter list; the
        // lane's fan-out will include it. Everything else becomes a
        // fresh execution, registered before the task is sent so
        // later twins can find it.
        let mut execs: Vec<ReadExec> = Vec::new();
        let mut read_set: Vec<String> = Vec::new();
        {
            let mut inflight = lock(&self.shared.inflight);
            for (plan, waiters) in distinct {
                if let Some(entry) = inflight.get_mut(&plan.key) {
                    // Only the group leader counts as a join: its
                    // batch-fused twins are already in `fused`, and each
                    // read lands in exactly one of {read_execs, fused,
                    // inflight_joins} so the conservation identity
                    // `read_execs + fused + inflight_joins == reads`
                    // holds.
                    self.shared
                        .stats
                        .inflight_joins
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &trace {
                        // Late joiners get their own admit event aimed at
                        // the execution they joined (`b` = its id).
                        t.record(
                            EventKind::QueryAdmit,
                            waiters[0].client as u32,
                            u32::MAX,
                            waiters.len() as u64,
                            entry.exec_id,
                        );
                    }
                    entry.waiters.extend(waiters);
                    continue;
                }
                let exec_id = self.next_exec;
                self.next_exec += 1;
                if let Some(t) = &trace {
                    // One admit event per distinct execution; `a` =
                    // waiters sharing it at dispatch (> 1 ⟺ fused),
                    // `b` = dense execution id.
                    t.record(
                        EventKind::QueryAdmit,
                        waiters[0].client as u32,
                        u32::MAX,
                        waiters.len() as u64,
                        exec_id,
                    );
                }
                inflight.insert(Arc::clone(&plan.key), Inflight { exec_id, waiters });
                for rel in plan.reads.iter() {
                    if !read_set.contains(rel) {
                        read_set.push(rel.clone());
                    }
                }
                execs.push(ReadExec {
                    key: Arc::clone(&plan.key),
                    tree: plan.tree.as_ref().clone(),
                });
            }
        }
        if execs.is_empty() {
            return;
        }
        self.shared
            .stats
            .executed
            .fetch_add(execs.len() as u64, Ordering::Relaxed);
        self.shared
            .stats
            .read_execs
            .fetch_add(execs.len() as u64, Ordering::Relaxed);
        // Shared marks on every relation the task reads: a conflicting
        // write dispatched later waits for this task's lane to release.
        // May block here if such a write is already in flight — the
        // dispatcher stalls (preserving dispatch order), lanes don't.
        let ticket = self
            .shared
            .gate
            .acquire(&LockRequest::new(read_set, Vec::new()));
        self.send_task(LaneTask::Read(ReadTask { execs, ticket }));
    }

    /// Dispatch write queries to the lanes, one task per write, in
    /// submission order. The gate's exclusive marks on each write's
    /// target relations — acquired here, in dispatch order — are what
    /// serialize conflicting writes (and their readers); writes to
    /// disjoint relations proceed concurrently, which
    /// `concurrent_write_batches` counts. The affected tuples (what
    /// `append`/`delete` touched) are the response payload, assembled by
    /// the lane.
    fn dispatch_writes(&mut self, writes: Vec<(Submission, Plan)>) {
        let trace = self.config.trace.clone();
        for (sub, plan) in writes {
            // Catalog statistics and the cached plans that read the
            // written relations go stale together; everything else in
            // the cache survives.
            self.opt_stats = None;
            let evicted = self.plan_cache.evict_reading(&plan.writes);
            self.shared
                .stats
                .cache_evictions_partial
                .fetch_add(evicted, Ordering::Relaxed);
            self.shared.stats.executed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &trace {
                t.record(
                    EventKind::QueryAdmit,
                    sub.client as u32,
                    u32::MAX,
                    1,
                    self.next_exec,
                );
            }
            self.next_exec += 1;
            let ticket = self.shared.gate.acquire(&self.write_gate_request(&plan));
            if self.shared.writes_in_flight.fetch_add(1, Ordering::Relaxed) > 0 {
                self.shared
                    .stats
                    .concurrent_write_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.send_task(LaneTask::Write(WriteTask {
                sub: Some(sub),
                tree: Arc::clone(&plan.tree),
                ticket,
            }));
        }
    }

    /// A write's gate request: its plan marks plus an exclusive
    /// `view:<name>` mark for every installed view reading one of its
    /// targets — the marks that serialize view maintenance (inside the
    /// write task) against view reads, in dispatch order.
    fn write_gate_request(&self, plan: &Plan) -> LockRequest {
        let mut writes = plan.writes.to_vec();
        for (name, bases) in lock(&self.shared.view_bases).iter() {
            if bases.iter().any(|b| plan.writes.contains(b)) {
                writes.push(view_mark(name));
            }
        }
        LockRequest::new(plan.reads.to_vec(), writes)
    }

    /// Admit one standing-view request: validate it against the
    /// dispatch-time view map (answering duplicate installs and unknown
    /// names immediately), record the map change, acquire the gate
    /// marks, and hand the lane a [`ViewTask`].
    ///
    /// Install parses the definition here — via `parse_query` directly,
    /// not the plan cache, so the `parses == plan_cache_misses` identity
    /// stays a statement about query traffic.
    fn dispatch_view(&mut self, mut sub: Submission) {
        let trace = self.config.trace.clone();
        let kind = std::mem::replace(&mut sub.kind, SubmissionKind::Query);
        let (action, request) = match kind {
            SubmissionKind::Query => unreachable!("execute_batch routes queries elsewhere"),
            SubmissionKind::InstallView { name } => {
                if lock(&self.shared.view_bases).contains_key(&name) {
                    let detail = format!("view `{name}` is already installed");
                    return self
                        .shared
                        .conclude(&trace, sub, Err(ServeError::View { detail }));
                }
                let parsed = {
                    let db = read_lock(&self.shared.db);
                    parse_query(&db, &sub.text)
                };
                let tree = match parsed {
                    Ok(tree) => tree,
                    Err(e) => {
                        let detail = e.to_string();
                        return self.shared.conclude(
                            &trace,
                            sub,
                            Err(ServeError::Parse { detail }),
                        );
                    }
                };
                if !tree.written_relations().is_empty() {
                    let detail = "a view definition must be read-only".to_string();
                    return self
                        .shared
                        .conclude(&trace, sub, Err(ServeError::View { detail }));
                }
                let bases = tree.referenced_relations();
                lock(&self.shared.view_bases).insert(name.clone(), bases.clone());
                // Shared marks on the bases: the from-scratch
                // materialization must not race a base write.
                let request = LockRequest::new(bases, vec![view_mark(&name)]);
                let action = ViewAction::Install {
                    name,
                    text: sub.text.clone(),
                    tree: Box::new(tree),
                };
                (action, request)
            }
            SubmissionKind::DropView { name } => {
                if lock(&self.shared.view_bases).remove(&name).is_none() {
                    let detail = format!("view `{name}` is not installed");
                    return self
                        .shared
                        .conclude(&trace, sub, Err(ServeError::View { detail }));
                }
                let request = LockRequest::new(Vec::new(), vec![view_mark(&name)]);
                (ViewAction::Drop { name }, request)
            }
            SubmissionKind::ReadView { name } => {
                if !lock(&self.shared.view_bases).contains_key(&name) {
                    let detail = format!("view `{name}` is not installed");
                    return self
                        .shared
                        .conclude(&trace, sub, Err(ServeError::View { detail }));
                }
                let request = LockRequest::new(vec![view_mark(&name)], Vec::new());
                (ViewAction::Read { name }, request)
            }
        };
        let ticket = self.shared.gate.acquire(&request);
        self.send_task(LaneTask::View(ViewTask {
            sub: Some(sub),
            action,
            ticket,
        }));
    }

    /// Hand one gated task to the lane pool.
    fn send_task(&mut self, task: LaneTask) {
        *lock(&self.shared.lane_busy) += 1;
        self.lane_tx
            .as_ref()
            .expect("lanes alive while engine runs")
            .send(task)
            .expect("lanes alive while engine runs");
    }
}

impl Drop for Engine {
    /// Close the lane channel and join the lanes: queued tasks finish and
    /// fan out before the engine disappears, so every dispatched task is
    /// answered even on the single-step (`run_batch`) path.
    fn drop(&mut self) {
        drop(self.lane_tx.take());
        for h in self.lane_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One executor lane: pull tasks, run reads against the shared catalog
/// under the read lock (fanning each plan's result out to every waiter
/// registered by then) and writes split-phase (stage under the read
/// lock, apply under the write lock). Task bodies run inside
/// `catch_unwind`: a panic — injected or real — is contained to the
/// task's own waiters, and the epilogue (gate release, busy/write
/// accounting) runs regardless, so the rest of the server keeps flowing.
fn lane_loop(
    lane: usize,
    shared: &Arc<Shared>,
    rx: &Arc<Mutex<Receiver<LaneTask>>>,
    host: &HostParams,
    trace: &Option<Arc<Tracer>>,
    hold: Option<&LaneHold>,
) {
    loop {
        // Hold the receiver lock only for the recv itself, so sibling
        // lanes can pull the next task while this one executes.
        let mut task = match lock(rx).recv() {
            Ok(task) => task,
            Err(_) => return, // channel closed: engine is shutting down
        };
        if let Some(hold) = hold {
            hold.wait();
        }
        let seq = shared.lane_task_seq.fetch_add(1, Ordering::Relaxed);
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            if host.fault.lane_panic_task == Some(seq) {
                panic!("injected lane fault (task {seq})");
            }
            match &mut task {
                LaneTask::Read(read) => run_read_task(lane, shared, read, host, trace),
                LaneTask::Write(write) => run_write_task(lane, shared, write, host, trace),
                LaneTask::View(view) => run_view_task(shared, view, host, trace),
            }
        }))
        .is_err();
        if panicked {
            contain_lane_panic(shared, &mut task, trace, seq);
        }
        // Epilogue — runs on success and after a contained panic alike.
        // Order matters: the in-flight entries are gone by now (removed
        // by the task body or by the containment path), so releasing the
        // gate cannot expose a stale pre-write execution to joiners.
        let (ticket, was_write) = match &task {
            LaneTask::Read(read) => (read.ticket, false),
            LaneTask::Write(write) => (write.ticket, true),
            LaneTask::View(view) => (view.ticket, false),
        };
        if was_write {
            shared.writes_in_flight.fetch_sub(1, Ordering::Relaxed);
        }
        shared.gate.release(ticket);
        let mut busy = lock(&shared.lane_busy);
        *busy -= 1;
        if *busy == 0 {
            shared.lane_idle.notify_all();
        }
    }
}

/// Remove and return a dispatched execution's waiter list.
fn take_waiters(shared: &Shared, key: &Arc<str>) -> Vec<Submission> {
    lock(&shared.inflight)
        .remove(key)
        .expect("dispatched execution is registered")
        .waiters
}

/// Execute one read group as a concurrent df-host batch and fan results
/// out to every waiter.
fn run_read_task(
    lane: usize,
    shared: &Arc<Shared>,
    task: &mut ReadTask,
    host: &HostParams,
    trace: &Option<Arc<Tracer>>,
) {
    let trees: Vec<QueryTree> = task.execs.iter().map(|e| e.tree.clone()).collect();
    let run = {
        let db = read_lock(&shared.db);
        run_host_queries(&db, &trees, host)
    };
    shared.stats.lane_execs[lane].fetch_add(trees.len() as u64, Ordering::Relaxed);
    match run {
        Ok(out) => {
            for (result, exec) in out.results.into_iter().zip(&task.execs) {
                let subs = take_waiters(shared, &exec.key);
                match result {
                    Ok(rel) => {
                        let fan_out = subs.len() as u32;
                        let schema = rel.schema().to_string();
                        let tuples: Vec<Vec<u8>> =
                            rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
                        for sub in subs {
                            shared.conclude(
                                trace,
                                sub,
                                Ok(QueryResult {
                                    id: 0, // filled per waiter in conclude
                                    fan_out,
                                    schema: schema.clone(),
                                    tuples: tuples.clone(),
                                }),
                            );
                        }
                    }
                    Err(e) => {
                        let error = ServeError::host(&e);
                        for sub in subs {
                            shared.conclude(trace, sub, Err(error.clone()));
                        }
                    }
                }
            }
        }
        Err(e) => {
            // Run-level failure (validation, stall): every waiter of
            // the task gets the structured error; the server lives.
            let error = ServeError::host(&e);
            for exec in &task.execs {
                for sub in take_waiters(shared, &exec.key) {
                    shared.conclude(trace, sub, Err(error.clone()));
                }
            }
        }
    }
}

/// Execute one write split-phase: the expensive source evaluation /
/// target partition under the catalog *read* lock (other lanes keep
/// reading), then a brief write lock for the apply. Sound because the
/// dispatcher granted this task exclusive gate marks on its target
/// relations, so no other task can read or write them between the
/// phases.
fn run_write_task(
    lane: usize,
    shared: &Arc<Shared>,
    task: &mut WriteTask,
    host: &HostParams,
    trace: &Option<Arc<Tracer>>,
) {
    let exec = ExecParams {
        page_size: host.page_size,
        ..ExecParams::default()
    };
    let staged = {
        let db = read_lock(&shared.db);
        stage_write(&db, &task.tree, &exec)
    };
    let outcome = staged.and_then(|delta| {
        // The staged delta is consumed by the apply; capture the signed
        // base change first — it is what flows through every standing
        // view reading the target.
        let change = delta.base_change();
        let mut db = write_lock(&shared.db);
        let applied = apply_write(&mut db, delta);
        if applied.is_ok() {
            // Refresh the relation descriptions while still holding the
            // write lock, so `Relations` responses never mix catalogs.
            *lock(&shared.relations) = db.iter().map(|r| r.to_string()).collect();
        }
        applied.map(|rel| (rel, change))
    });
    shared.stats.lane_execs[lane].fetch_add(1, Ordering::Relaxed);
    let sub = task.sub.take().expect("write concluded once");
    match outcome {
        Ok((rel, (inserts, deletes))) => {
            shared.stats.writes_applied.fetch_add(1, Ordering::Relaxed);
            // Maintain standing views before concluding: the gate's
            // exclusive `view:<name>` marks are still held, so a view
            // read dispatched after this write observes the maintained
            // result, never a stale one.
            if let Some(target) = task.tree.written_relations().first() {
                maintain_views(shared, target, &inserts, &deletes);
            }
            let schema = rel.schema().to_string();
            let tuples = rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
            shared.conclude(
                trace,
                sub,
                Ok(QueryResult {
                    id: 0,
                    fan_out: 1,
                    schema,
                    tuples,
                }),
            );
        }
        Err(e) => {
            let error = ServeError::host(&HostError::Data(e));
            shared.conclude(trace, sub, Err(error));
        }
    }
}

/// Replay one applied base write through every installed view that
/// reads `target`. Runs inside the write task, which still holds the
/// gate's exclusive `view:<name>` marks for exactly these views, so
/// maintenance is serialized against view reads and other base writes.
/// A view whose maintenance fails is deregistered (fail-stop): serving
/// a possibly-stale result would break the differential contract.
fn maintain_views(shared: &Arc<Shared>, target: &str, inserts: &[Vec<u8>], deletes: &[Vec<u8>]) {
    let views: Vec<(String, Arc<Mutex<StandingView>>)> = lock(&shared.views)
        .iter()
        .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
        .collect();
    for (name, slot) in views {
        let mut view = lock(&slot);
        if !view.reads(target) {
            continue;
        }
        match view.apply_write(target, inserts, deletes) {
            Ok(update) => {
                shared
                    .stats
                    .delta_pages
                    .fetch_add(update.delta_pages, Ordering::Relaxed);
            }
            Err(_) => {
                drop(view);
                lock(&shared.views).remove(&name);
                lock(&shared.view_bases).remove(&name);
            }
        }
    }
}

/// Execute one standing-view operation. Installs materialize through
/// the normal read path ([`StandingView::install`] runs the per-node
/// oracle executor under the catalog read lock) and then register the
/// standing dataflow; reads serve the maintained multiset without
/// touching the plan cache or a host execution.
fn run_view_task(
    shared: &Arc<Shared>,
    task: &mut ViewTask,
    host: &HostParams,
    trace: &Option<Arc<Tracer>>,
) {
    let sub = task.sub.take().expect("view task concluded once");
    match &task.action {
        ViewAction::Install { name, text, tree } => {
            let installed = {
                let db = read_lock(&shared.db);
                StandingView::install(name, text, &db, tree, host.page_size)
            };
            match installed {
                Ok(view) => {
                    let schema = view.schema().to_string();
                    lock(&shared.views).insert(name.clone(), Arc::new(Mutex::new(view)));
                    shared.stats.views_installed.fetch_add(1, Ordering::Relaxed);
                    shared.conclude(
                        trace,
                        sub,
                        Ok(QueryResult {
                            id: 0,
                            fan_out: 1,
                            schema,
                            tuples: Vec::new(),
                        }),
                    );
                }
                Err(e) => {
                    // The dispatch-time map entry led the registry;
                    // retract it so the name is reusable.
                    lock(&shared.view_bases).remove(name);
                    shared.conclude(
                        trace,
                        sub,
                        Err(ServeError::View {
                            detail: e.to_string(),
                        }),
                    );
                }
            }
        }
        ViewAction::Drop { name } => match lock(&shared.views).remove(name) {
            Some(_) => shared.conclude(
                trace,
                sub,
                Ok(QueryResult {
                    id: 0,
                    fan_out: 1,
                    schema: String::new(),
                    tuples: Vec::new(),
                }),
            ),
            None => shared.conclude(
                trace,
                sub,
                Err(ServeError::View {
                    detail: format!("view `{name}` is not installed"),
                }),
            ),
        },
        ViewAction::Read { name } => {
            let slot = lock(&shared.views).get(name).cloned();
            match slot {
                Some(slot) => {
                    let view = lock(&slot);
                    shared
                        .stats
                        .view_reads_served
                        .fetch_add(1, Ordering::Relaxed);
                    let result = QueryResult {
                        id: 0,
                        fan_out: 1,
                        schema: view.schema().to_string(),
                        tuples: view.tuple_images(),
                    };
                    drop(view);
                    shared.conclude(trace, sub, Ok(result));
                }
                None => shared.conclude(
                    trace,
                    sub,
                    Err(ServeError::View {
                        detail: format!("view `{name}` is not installed"),
                    }),
                ),
            }
        }
    }
}

/// Containment path for a lane panic: answer whatever waiters the task
/// still owes (a read's in-flight entries, a write's un-taken
/// submission) with a structured error, so every accepted request is
/// still answered exactly once and the in-flight registry holds no
/// stale entries when the epilogue releases the gate.
fn contain_lane_panic(
    shared: &Arc<Shared>,
    task: &mut LaneTask,
    trace: &Option<Arc<Tracer>>,
    seq: u64,
) {
    // `UnitPanicked` is the wire shape clients already understand for a
    // contained panic; `op` marks the layer that caught it.
    let error = ServeError::host(&HostError::UnitPanicked {
        query: 0,
        cell: 0,
        op: "serve-lane".into(),
        payload: format!("serve lane panicked while executing task {seq}"),
    });
    match task {
        LaneTask::Read(read) => {
            for exec in &read.execs {
                // `remove` (not expect): a panic mid-fan-out may have
                // already consumed some entries.
                let waiters = lock(&shared.inflight)
                    .remove(&exec.key)
                    .map(|e| e.waiters)
                    .unwrap_or_default();
                for sub in waiters {
                    shared.conclude(trace, sub, Err(error.clone()));
                }
            }
        }
        LaneTask::Write(write) => {
            if let Some(sub) = write.sub.take() {
                shared.conclude(trace, sub, Err(error.clone()));
            }
        }
        LaneTask::View(view) => {
            if let Some(sub) = view.sub.take() {
                // An install that panicked never reached the registry;
                // retract its dispatch-time entry so the name frees up.
                if let ViewAction::Install { name, .. } = &view.action {
                    lock(&shared.view_bases).remove(name);
                }
                shared.conclude(trace, sub, Err(error.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{normalize_text, Plan, PlanCache};
    use std::sync::Arc;

    fn dummy_plan(tag: &str) -> Plan {
        // The cache keys on text, not the tree; a minimal parsed tree of
        // any shape works. The tag only tells entries apart.
        plan_for(tag, "(scan r00)")
    }

    /// A real plan for `text` (so its read-set tags are genuine), keyed
    /// by `tag`.
    fn plan_for(tag: &str, text: &str) -> Plan {
        let db = df_workload::generate_database(&df_workload::DatabaseSpec::scaled(0.01));
        let tree = df_query::parse_query(&db, text).expect("parse");
        Plan {
            key: Arc::from(tag),
            ..Plan::from_tree(tree)
        }
    }

    #[test]
    fn normalize_collapses_whitespace_runs() {
        assert_eq!(
            normalize_text("  (scan\n\t r00)  "),
            "(scan r00)".to_string()
        );
        assert_eq!(normalize_text("(scan r00)"), "(scan r00)");
        assert_eq!(normalize_text(""), "");
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        cache.insert(("a".into(), false), dummy_plan("a"));
        cache.insert(("b".into(), false), dummy_plan("b"));
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        assert!(cache.get(&("a".into(), false)).is_some());
        cache.insert(("c".into(), false), dummy_plan("c"));
        assert!(cache.get(&("a".into(), false)).is_some());
        assert!(cache.get(&("b".into(), false)).is_none(), "b evicted");
        assert!(cache.get(&("c".into(), false)).is_some());
    }

    #[test]
    fn plan_cache_zero_capacity_never_stores() {
        let mut cache = PlanCache::new(0);
        cache.insert(("a".into(), false), dummy_plan("a"));
        assert!(cache.get(&("a".into(), false)).is_none());
    }

    #[test]
    fn plan_cache_keys_on_optimize_flag() {
        let mut cache = PlanCache::new(4);
        cache.insert(("q".into(), false), dummy_plan("plain"));
        assert!(cache.get(&("q".into(), true)).is_none());
        assert!(cache.get(&("q".into(), false)).is_some());
    }

    #[test]
    fn evict_reading_is_relation_scoped() {
        let mut cache = PlanCache::new(8);
        cache.insert(("a".into(), false), plan_for("a", "(scan r00)"));
        cache.insert(("b".into(), false), plan_for("b", "(scan r01)"));
        cache.insert(
            ("j".into(), false),
            plan_for("j", "(join (scan r00) (scan r02) (= key key))"),
        );
        // A write to r01 evicts only the r01 reader.
        assert_eq!(cache.evict_reading(&["r01".to_string()]), 1);
        assert!(cache.get(&("a".into(), false)).is_some());
        assert!(cache.get(&("b".into(), false)).is_none());
        assert!(cache.get(&("j".into(), false)).is_some());
        // A write to a join input evicts the join (and the scan sharing
        // that input).
        assert_eq!(cache.evict_reading(&["r02".to_string()]), 1);
        assert!(cache.get(&("j".into(), false)).is_none());
        assert_eq!(cache.evict_reading(&["r00".to_string()]), 1);
        assert!(cache.get(&("a".into(), false)).is_none());
        // Nothing left to evict.
        assert_eq!(cache.evict_reading(&["r00".to_string()]), 0);
    }
}

//! The admission/execution engine behind the socket front-end.
//!
//! One dispatcher thread (the serve-layer counterpart of the paper's
//! master controller) drains bounded per-client queues in batches,
//! resolves each request to a cached plan, and hands lock-compatible
//! read groups to a pool of executor *lanes* while applying writes
//! itself:
//!
//! * **Backpressure** — each client has a bounded queue; a submission to a
//!   full queue is answered immediately with a typed
//!   [`ServeError::Busy`], never blocking the acceptor or the reader
//!   threads (the queue only shrinks when the dispatcher drains it).
//! * **Priority + fairness** — batch collection walks priority classes
//!   high → normal → low; within a class it round-robins over the *heads*
//!   of the client queues with a cursor that persists across batches, so
//!   a heavy client contributes at most one request per turn and cannot
//!   starve the rest. Each client's own requests stay FIFO.
//! * **Plan cache** — parsed (and optionally optimized) trees are cached
//!   in an LRU keyed by normalized query text, so repeat reads skip
//!   `parse_query` entirely. Any applied write invalidates the whole
//!   cache (and the optimizer statistics): a read admitted after a write
//!   always plans against the post-write catalog.
//! * **Read-batch fusion** — identical concurrent read queries (same
//!   canonical plan, compared via [`df_query::render_tree`] after
//!   optional optimization) collapse to a single execution whose result
//!   is fanned out to every waiter — the Noria read-heavy-web-traffic
//!   trick, applied at batch granularity.
//! * **In-flight fusion** — a read whose twin is *already executing* on a
//!   lane joins that execution's waiter list (the in-flight registry)
//!   and receives the same byte-identical fan-out, instead of waiting
//!   for the next batch. `ServeStats::inflight_joins` counts these late
//!   joiners; per read request exactly one of
//!   executed/fused/inflight_joins accounts for it.
//! * **Parallel read lanes** — read groups are dispatched to `lanes`
//!   executor threads, so independent read batches run concurrently
//!   instead of queueing behind one `run_host_queries` call. Writes
//!   still drain strictly through the dispatcher: before a write group
//!   applies, the dispatcher quiesces every lane, takes the catalog
//!   write lock, and applies the writes in submission order —
//!   preserving the no-lost-update semantics of the single-dispatcher
//!   design.
//! * **Lock-table grouping** — a batch is split into groups of mutually
//!   compatible lock requests ([`df_core::LockTable`]): reads of the same
//!   relations share a group and run concurrently inside one
//!   [`run_host_queries`] call (which re-admits them under the host
//!   scheduler's own relation lock manager), while conflicting writes
//!   land in separate groups and apply strictly serially against the
//!   shared catalog — no lost updates by construction.
//!
//! Failures are contained per request: a query that fails parsing,
//! validation, or execution (any [`HostError`], including a panicking
//! unit injected via [`df_host::FaultPlan`]) produces a structured
//! [`Response::Error`] to exactly that client while the rest of the batch
//! completes normally. Neither the dispatcher nor a lane ever panics on
//! query content.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use df_core::{LockRequest, LockTable};
use df_host::{run_host_queries, HostError, HostParams};
use df_obs::{EventKind, Tracer};
use df_opt::{optimize, CatalogStats};
use df_query::{execute, parse_query, render_tree, ExecParams, QueryTree};
use df_relalg::Catalog;

use crate::proto::{Priority, QueryResult, Response, ServeError};

/// Serve-layer configuration. [`ServeConfig::validate`] is called by
/// [`Engine::new`]; execution itself reuses [`HostParams`] (validated by
/// the executor per batch).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded per-client admission queue depth. A submission past this
    /// is rejected with [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// Most requests drained into one execution batch.
    pub batch_max: usize,
    /// Read executor lanes (≥ 1). Each lock-compatible read group is
    /// dispatched to one lane; with several lanes, independent read
    /// batches execute concurrently while the dispatcher keeps
    /// collecting. Writes always apply on the dispatcher after a lane
    /// quiesce, whatever the lane count.
    pub lanes: usize,
    /// Plan-cache capacity in distinct (normalized text, optimize-flag)
    /// entries; 0 disables the cache. The cache is invalidated wholesale
    /// by every applied write.
    pub plan_cache_capacity: usize,
    /// Executor configuration for read batches. `deterministic` is
    /// forced on so fused waiters receive byte-identical results and
    /// every response is oracle-comparable.
    pub host: HostParams,
    /// Serve-layer tracer: `query_admit`/`query_done` per request (the
    /// `query` field carries the client id) and `client_in`/`client_out`
    /// transfer bytes recorded by the socket layer. Independent of
    /// `host.trace`, which observes the executor's internals.
    pub trace: Option<Arc<Tracer>>,
    /// Test-only gate holding every lane before it executes its next
    /// task. Lets tests park a read execution deterministically so a
    /// twin read provably joins it in flight. Must be released before
    /// the engine is dropped or lane joins hang.
    #[doc(hidden)]
    pub lane_hold: Option<Arc<LaneHold>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 32,
            batch_max: 64,
            lanes: 2,
            plan_cache_capacity: 128,
            host: HostParams::default(),
            trace: None,
            lane_hold: None,
        }
    }
}

impl ServeConfig {
    /// Validate the serve-layer knobs (the executor's are checked by
    /// [`HostParams::validate`]).
    ///
    /// # Errors
    /// Returns a human-readable description of the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("`queue_capacity` must be >= 1".into());
        }
        if self.batch_max == 0 {
            return Err("`batch_max` must be >= 1".into());
        }
        if self.lanes == 0 {
            return Err("`lanes` must be >= 1".into());
        }
        self.host.validate().map_err(|e| e.to_string())
    }
}

/// Test-only gate parking lanes between task receipt and execution.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct LaneHold {
    held: Mutex<bool>,
    released: Condvar,
}

impl LaneHold {
    /// Park every lane before its next task until [`LaneHold::release`].
    pub fn hold(&self) {
        *self.held.lock().expect("hold lock") = true;
    }

    /// Release parked lanes (and stop parking new tasks).
    pub fn release(&self) {
        *self.held.lock().expect("hold lock") = false;
        self.released.notify_all();
    }

    fn wait(&self) {
        let mut held = self.held.lock().expect("hold lock");
        while *held {
            held = self.released.wait(held).expect("hold lock");
        }
    }
}

/// How the engine hands a [`Response`] back to whoever submitted the
/// request — a socket writer on the server, a channel in tests.
pub type Reply = Box<dyn FnOnce(Response) + Send>;

/// One queued query request.
struct Submission {
    client: usize,
    id: u64,
    priority: Priority,
    optimize: bool,
    text: String,
    reply: Reply,
}

/// Cumulative serve-layer counters. All relaxed atomics: they are
/// monotonic tallies, not synchronization.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Query requests accepted into a queue.
    pub submitted: AtomicU64,
    /// Query requests rejected with [`ServeError::Busy`].
    pub busy_rejected: AtomicU64,
    /// Read requests that reached read scheduling (parsed successfully,
    /// no write target). Conservation: `reads == read_execs + fused +
    /// inflight_joins` — every read is executed, batch-fused, or joined
    /// to an in-flight twin, exactly once.
    pub reads: AtomicU64,
    /// Distinct executions dispatched (read groups count each deduped
    /// plan once; every write counts once).
    pub executed: AtomicU64,
    /// Distinct read plans dispatched to a lane (the read share of
    /// `executed`).
    pub read_execs: AtomicU64,
    /// Requests served by another request's execution in the same batch
    /// (fusion followers).
    pub fused: AtomicU64,
    /// Requests that joined an already-executing identical read across a
    /// batch boundary (late fusion joiners).
    pub inflight_joins: AtomicU64,
    /// `parse_query` invocations — at most one per plan-cache miss; the
    /// regression guard for the parse-twice bug the cache subsumed.
    pub parses: AtomicU64,
    /// Requests whose plan came out of the cache.
    pub plan_cache_hits: AtomicU64,
    /// Requests that had to parse (and possibly optimize) from scratch.
    pub plan_cache_misses: AtomicU64,
    /// Update queries applied to the catalog.
    pub writes_applied: AtomicU64,
    /// Requests answered with an error (parse, validation, or executor).
    pub failed: AtomicU64,
    /// Batches drained.
    pub batches: AtomicU64,
    /// Lock-compatibility groups executed.
    pub groups: AtomicU64,
    /// Request bytes read off client sockets (maintained by the server).
    pub bytes_in: AtomicU64,
    /// Response bytes written to client sockets (maintained by the
    /// server).
    pub bytes_out: AtomicU64,
    /// Distinct read plans executed per lane, indexed by lane id.
    pub lane_execs: Vec<AtomicU64>,
}

impl ServeStats {
    /// Counters for an engine with `lanes` read lanes.
    pub fn with_lanes(lanes: usize) -> ServeStats {
        ServeStats {
            lane_execs: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            ..ServeStats::default()
        }
    }

    /// Snapshot as stable `(name, value)` rows — the payload of
    /// [`Response::Stats`].
    pub fn rows(&self) -> Vec<(String, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut rows = vec![
            ("submitted".into(), g(&self.submitted)),
            ("busy_rejected".into(), g(&self.busy_rejected)),
            ("reads".into(), g(&self.reads)),
            ("executed".into(), g(&self.executed)),
            ("read_execs".into(), g(&self.read_execs)),
            ("fused".into(), g(&self.fused)),
            ("inflight_joins".into(), g(&self.inflight_joins)),
            ("parses".into(), g(&self.parses)),
            ("plan_cache_hits".into(), g(&self.plan_cache_hits)),
            ("plan_cache_misses".into(), g(&self.plan_cache_misses)),
            ("writes_applied".into(), g(&self.writes_applied)),
            ("failed".into(), g(&self.failed)),
            ("batches".into(), g(&self.batches)),
            ("groups".into(), g(&self.groups)),
            ("bytes_in".into(), g(&self.bytes_in)),
            ("bytes_out".into(), g(&self.bytes_out)),
            ("lanes".into(), self.lane_execs.len() as u64),
        ];
        for (i, lane) in self.lane_execs.iter().enumerate() {
            rows.push((format!("lane{i}_execs"), g(lane)));
        }
        rows
    }
}

/// A resolved plan: the (possibly optimized) tree and its canonical
/// rendering, shared between the cache, the fusion index, and the
/// in-flight registry.
#[derive(Clone)]
struct Plan {
    tree: Arc<QueryTree>,
    key: Arc<str>,
}

/// Dispatcher-owned LRU of resolved plans, keyed by normalized query
/// text plus the optimize flag. Capacity is small, so eviction is a
/// linear scan for the stalest tick — no extra list to maintain.
struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<(String, bool), (Plan, u64)>,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, key: &(String, bool)) -> Option<Plan> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(plan, used)| {
            *used = tick;
            plan.clone()
        })
    }

    fn insert(&mut self, key: (String, bool), plan: Plan) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(stalest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(key, (plan, self.tick));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Collapse whitespace runs so trivially reformatted repeats of the same
/// query text share a cache entry.
fn normalize_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_gap = true; // leading whitespace is dropped
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !in_gap {
                out.push(' ');
                in_gap = true;
            }
        } else {
            out.push(ch);
            in_gap = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// One read execution currently queued on or running inside a lane. Kept
/// in the in-flight registry from dispatch until the lane fans the
/// result out; late twins append themselves to `waiters`.
struct Inflight {
    exec_id: u64,
    waiters: Vec<Submission>,
}

/// One distinct read plan inside a lane task.
struct ReadExec {
    key: Arc<str>,
    tree: QueryTree,
}

/// One lock-compatible read group, executed by a single lane as one
/// concurrent [`run_host_queries`] batch.
struct ReadTask {
    execs: Vec<ReadExec>,
}

/// State shared between the dispatcher, the lanes, and every submitting
/// thread.
struct Shared {
    inbox: Mutex<Inbox>,
    wake: Condvar,
    stats: ServeStats,
    queue_capacity: usize,
    /// The served catalog. Lanes hold the read lock for the duration of
    /// an execution; the dispatcher takes the write lock (after a lane
    /// quiesce) to apply writes, and the read lock to parse/plan.
    db: RwLock<Catalog>,
    /// Read executions dispatched but not yet fanned out, keyed by
    /// canonical plan rendering. Guards the join-vs-complete race: a
    /// twin read either finds the entry and joins, or misses and
    /// schedules fresh — never both, never neither.
    inflight: Mutex<HashMap<Arc<str>, Inflight>>,
    /// Read tasks dispatched to lanes and not yet completed; the write
    /// barrier waits for zero.
    lane_busy: Mutex<usize>,
    lane_idle: Condvar,
    /// One human-readable description per served relation, refreshed by
    /// the dispatcher after every applied write — lets the front-end
    /// answer `Relations` requests without reaching into the catalog.
    relations: Mutex<Vec<String>>,
}

impl Shared {
    /// Send one request's final answer and record its `query_done` event.
    fn conclude(
        &self,
        trace: &Option<Arc<Tracer>>,
        sub: Submission,
        outcome: Result<QueryResult, ServeError>,
    ) {
        let response = match outcome {
            Ok(mut result) => {
                result.id = sub.id;
                Response::Result(result)
            }
            Err(error) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                Response::Error { id: sub.id, error }
            }
        };
        if let Some(t) = trace {
            let failed = matches!(response, Response::Error { .. });
            t.record(
                EventKind::QueryDone,
                sub.client as u32,
                u32::MAX,
                u64::from(failed),
                0,
            );
        }
        (sub.reply)(response);
    }

    /// Block until no lane task is queued or executing — the write
    /// barrier, and the test/bench drain point.
    fn quiesce_lanes(&self) {
        let mut busy = self.lane_busy.lock().expect("lane busy lock");
        while *busy > 0 {
            busy = self.lane_idle.wait(busy).expect("lane busy lock");
        }
    }
}

struct Inbox {
    queues: Vec<VecDeque<Submission>>,
    /// Closed clients keep their slot (ids are never reused within a
    /// server lifetime) but accept no further submissions.
    open: Vec<bool>,
    shutdown: bool,
}

impl Inbox {
    fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Cloneable submission-side handle to a running [`Engine`].
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl EngineHandle {
    /// Register a new client; returns its id (dense, never reused).
    pub fn register_client(&self) -> usize {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        inbox.queues.push(VecDeque::new());
        inbox.open.push(true);
        inbox.queues.len() - 1
    }

    /// Mark a client disconnected: its queued requests are dropped (their
    /// replies would hit a dead socket) and further submissions refused.
    pub fn close_client(&self, client: usize) {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        if let Some(open) = inbox.open.get_mut(client) {
            *open = false;
        }
        if let Some(q) = inbox.queues.get_mut(client) {
            q.clear();
        }
    }

    /// Submit a query request on behalf of `client`. Admission control
    /// happens here: a full queue or a shutting-down engine answers
    /// through `reply` immediately (with [`ServeError::Busy`] /
    /// [`ServeError::ShuttingDown`]) and the dispatcher never sees the
    /// request.
    pub fn submit(
        &self,
        client: usize,
        id: u64,
        priority: Priority,
        optimize: bool,
        text: String,
        reply: Reply,
    ) {
        let rejection: Option<(ServeError, Reply)> = {
            let mut inbox = self.shared.inbox.lock().expect("inbox lock");
            if inbox.shutdown || !inbox.open.get(client).copied().unwrap_or(false) {
                Some((ServeError::ShuttingDown, reply))
            } else if inbox.queues[client].len() >= self.shared.queue_capacity {
                self.shared
                    .stats
                    .busy_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Some((
                    ServeError::Busy {
                        capacity: self.shared.queue_capacity as u64,
                    },
                    reply,
                ))
            } else {
                inbox.queues[client].push_back(Submission {
                    client,
                    id,
                    priority,
                    optimize,
                    text,
                    reply,
                });
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.shared.wake.notify_one();
                None
            }
        };
        // The rejection reply may write to a socket; invoke it outside
        // the inbox lock so a slow client cannot stall admission.
        if let Some((error, reply)) = rejection {
            reply(Response::Error { id, error });
        }
    }

    /// Ask the dispatcher to finish queued work and exit; subsequent
    /// submissions are refused with [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        inbox.shutdown = true;
        self.shared.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.inbox.lock().expect("inbox lock").shutdown
    }

    /// Block until every dispatched read task has completed and fanned
    /// out its replies. Tests and benchmarks pair this with
    /// [`Engine::run_batch`] — the dispatch itself is asynchronous.
    pub fn quiesce(&self) {
        self.shared.quiesce_lanes();
    }

    /// The cumulative serve-layer counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Current relation descriptions (name, schema, cardinality), as of
    /// the last applied write.
    pub fn relations(&self) -> Vec<String> {
        self.shared
            .relations
            .lock()
            .expect("relations lock")
            .clone()
    }
}

/// The dispatcher: plans every request, owns the write path, and feeds
/// the read lanes.
pub struct Engine {
    shared: Arc<Shared>,
    config: ServeConfig,
    /// Round-robin cursor over clients, persisted across batches.
    rr_cursor: usize,
    /// Catalog statistics for the optimizer, rebuilt lazily after writes.
    opt_stats: Option<CatalogStats>,
    /// Parsed/optimized plans keyed by normalized text, invalidated on
    /// every applied write.
    plan_cache: PlanCache,
    /// Dense id for `query_admit` trace events (one per distinct
    /// execution).
    next_exec: u64,
    /// Sender side of the lane task channel; dropped on engine drop so
    /// lanes drain and exit.
    lane_tx: Option<Sender<ReadTask>>,
    lane_handles: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Build an engine serving `db` under `config`, spawning its read
    /// lanes immediately.
    ///
    /// # Errors
    /// Returns a description of the first invalid configuration knob.
    pub fn new(db: Catalog, mut config: ServeConfig) -> Result<Engine, String> {
        config.validate()?;
        // Fused waiters must receive byte-identical results, and every
        // response must be comparable against the sequential oracle:
        // canonicalize results regardless of what the caller set.
        config.host.deterministic = true;
        let relations = db.iter().map(|r| r.to_string()).collect();
        let shared = Arc::new(Shared {
            inbox: Mutex::new(Inbox {
                queues: Vec::new(),
                open: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            stats: ServeStats::with_lanes(config.lanes),
            queue_capacity: config.queue_capacity,
            db: RwLock::new(db),
            inflight: Mutex::new(HashMap::new()),
            lane_busy: Mutex::new(0),
            lane_idle: Condvar::new(),
            relations: Mutex::new(relations),
        });
        let (lane_tx, lane_rx) = channel::<ReadTask>();
        let lane_rx = Arc::new(Mutex::new(lane_rx));
        let lane_handles = (0..config.lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&lane_rx);
                let host = config.host.clone();
                let trace = config.trace.clone();
                let hold = config.lane_hold.clone();
                std::thread::Builder::new()
                    .name(format!("serve-lane-{lane}"))
                    .spawn(move || lane_loop(lane, &shared, &rx, &host, &trace, hold.as_deref()))
                    .expect("spawn lane")
            })
            .collect();
        let plan_cache = PlanCache::new(config.plan_cache_capacity);
        Ok(Engine {
            shared,
            config,
            rr_cursor: 0,
            opt_stats: None,
            plan_cache,
            next_exec: 0,
            lane_tx: Some(lane_tx),
            lane_handles,
        })
    }

    /// A submission-side handle (cloneable, usable from any thread).
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The serve-layer tracer, if configured (the socket front-end needs
    /// it for `client_in`/`client_out` transfer events).
    pub fn trace(&self) -> Option<Arc<Tracer>> {
        self.config.trace.clone()
    }

    /// Drain and execute batches until shutdown is requested and the
    /// queues are empty, then drain the lanes. Lane threads are joined
    /// when the engine drops at the end of this call, so a completed
    /// `run` means every accepted request was answered.
    pub fn run(mut self) {
        while self.run_batch() {}
        self.shared.quiesce_lanes();
    }

    /// Block for the next batch and execute it: writes synchronously,
    /// reads dispatched to the lanes (pair with [`EngineHandle::quiesce`]
    /// to wait for their replies). Returns `false` when the engine has
    /// shut down and nothing remains to drain — the dispatcher loop's
    /// exit condition, and the single-step entry point tests use.
    pub fn run_batch(&mut self) -> bool {
        let Some(batch) = self.collect_batch() else {
            return false;
        };
        self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.execute_batch(batch);
        true
    }

    /// Wait until work is pending (or shutdown), then drain up to
    /// `batch_max` requests: priority classes high → low, round-robin
    /// across client queue heads within a class.
    fn collect_batch(&mut self) -> Option<Vec<Submission>> {
        let mut inbox = self.shared.inbox.lock().expect("inbox lock");
        loop {
            if inbox.pending() > 0 {
                break;
            }
            if inbox.shutdown {
                return None;
            }
            inbox = self.shared.wake.wait(inbox).expect("inbox lock");
        }
        let clients = inbox.queues.len();
        let mut batch = Vec::new();
        'fill: while batch.len() < self.config.batch_max {
            for class in Priority::ALL {
                let mut picked = false;
                for step in 0..clients {
                    let c = (self.rr_cursor + step) % clients;
                    if inbox.queues[c].front().map(|s| s.priority) == Some(class) {
                        batch.push(inbox.queues[c].pop_front().expect("front exists"));
                        self.rr_cursor = c + 1;
                        picked = true;
                        break;
                    }
                }
                if picked {
                    // Restart from the highest class: the pop may have
                    // exposed a higher-priority head elsewhere.
                    continue 'fill;
                }
            }
            break; // no queue head left in any class
        }
        debug_assert!(!batch.is_empty(), "woke with pending work");
        Some(batch)
    }

    /// Plan, group by lock compatibility, and execute one batch.
    fn execute_batch(&mut self, batch: Vec<Submission>) {
        let trace = self.config.trace.clone();
        // Resolve each request to a plan (cache hit or parse+optimize);
        // failures are answered immediately and drop out of the batch.
        let mut entries: Vec<(Submission, Plan)> = Vec::with_capacity(batch.len());
        for sub in batch {
            match self.resolve_plan(&sub.text, sub.optimize) {
                Ok(plan) => entries.push((sub, plan)),
                Err(detail) => {
                    self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &trace {
                        t.record(EventKind::QueryDone, sub.client as u32, u32::MAX, 1, 0);
                    }
                    (sub.reply)(Response::Error {
                        id: sub.id,
                        error: ServeError::Parse { detail },
                    });
                }
            }
        }
        // Split into groups of mutually compatible lock requests,
        // preserving submission order among conflicting requests: a
        // request that conflicts with anything already granted waits for
        // a later group, so writes serialize against their readers and
        // against each other.
        let mut remaining = entries;
        while !remaining.is_empty() {
            let mut locks = LockTable::new();
            let mut group = Vec::new();
            let mut rest = Vec::new();
            for (sub, plan) in remaining {
                let request = LockRequest::new(
                    plan.tree.referenced_relations(),
                    plan.tree.written_relations(),
                );
                if locks.compatible(&request) {
                    locks.grant(group.len(), &request);
                    group.push((sub, plan));
                } else {
                    rest.push((sub, plan));
                }
            }
            self.shared.stats.groups.fetch_add(1, Ordering::Relaxed);
            self.execute_group(group);
            remaining = rest;
        }
    }

    /// Resolve query text to a plan: hit the cache, or parse once (and
    /// optionally optimize) and fill it. The single `parse_query` call —
    /// counted in `ServeStats::parses` — is shared by the
    /// optimizer-failure fallback, which reuses the already-parsed tree
    /// instead of parsing the same text a second time.
    fn resolve_plan(&mut self, text: &str, optimizing: bool) -> Result<Plan, String> {
        let cache_key = (normalize_text(text), optimizing);
        if let Some(plan) = self.plan_cache.get(&cache_key) {
            self.shared
                .stats
                .plan_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        self.shared
            .stats
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        let db = self.shared.db.read().expect("catalog lock");
        self.shared.stats.parses.fetch_add(1, Ordering::Relaxed);
        let tree = parse_query(&db, text).map_err(|e| e.to_string())?;
        let tree = if optimizing {
            if self.opt_stats.is_none() {
                self.opt_stats = Some(CatalogStats::gather(&db));
            }
            let stats = self.opt_stats.as_ref().expect("just gathered");
            match optimize(&db, &tree, stats) {
                Ok(o) => o.tree,
                // An optimizer failure is not a query failure; run the
                // un-optimized tree (no second parse).
                Err(_) => tree,
            }
        } else {
            tree
        };
        drop(db);
        let plan = Plan {
            key: Arc::from(render_tree(&tree).as_str()),
            tree: Arc::new(tree),
        };
        self.plan_cache.insert(cache_key, plan.clone());
        Ok(plan)
    }

    /// Execute one lock-compatible group: reads dispatched to a lane
    /// (deduped and joined against in-flight twins first), then writes
    /// strictly in order behind a lane quiesce.
    fn execute_group(&mut self, group: Vec<(Submission, Plan)>) {
        let mut reads: Vec<(Submission, Plan)> = Vec::new();
        let mut writes: Vec<(Submission, Plan)> = Vec::new();
        for (sub, plan) in group {
            if plan.tree.written_relations().is_empty() {
                reads.push((sub, plan));
            } else {
                writes.push((sub, plan));
            }
        }
        self.dispatch_reads(reads);
        self.execute_writes(writes);
    }

    /// Dedupe identical read plans on their canonical rendering, join
    /// late twins onto in-flight executions, and hand the remainder to a
    /// lane as one concurrent df-host batch.
    fn dispatch_reads(&mut self, reads: Vec<(Submission, Plan)>) {
        if reads.is_empty() {
            return;
        }
        let trace = self.config.trace.clone();
        self.shared
            .stats
            .reads
            .fetch_add(reads.len() as u64, Ordering::Relaxed);
        // Batch-level fusion: one entry per distinct canonical plan.
        let mut distinct: Vec<(Plan, Vec<Submission>)> = Vec::new();
        let mut index: HashMap<Arc<str>, usize> = HashMap::new();
        for (sub, plan) in reads {
            match index.get(&plan.key) {
                Some(&i) => {
                    self.shared.stats.fused.fetch_add(1, Ordering::Relaxed);
                    distinct[i].1.push(sub);
                }
                None => {
                    index.insert(Arc::clone(&plan.key), distinct.len());
                    distinct.push((plan, vec![sub]));
                }
            }
        }
        // In-flight fusion: a plan whose twin is already queued on or
        // running inside a lane joins that execution's waiter list; the
        // lane's fan-out will include it. Everything else becomes a
        // fresh execution, registered before the task is sent so
        // later twins can find it.
        let mut execs: Vec<ReadExec> = Vec::new();
        {
            let mut inflight = self.shared.inflight.lock().expect("inflight lock");
            for (plan, waiters) in distinct {
                if let Some(entry) = inflight.get_mut(&plan.key) {
                    // Only the group leader counts as a join: its
                    // batch-fused twins are already in `fused`, and each
                    // read lands in exactly one of {read_execs, fused,
                    // inflight_joins} so the conservation identity
                    // `read_execs + fused + inflight_joins == reads`
                    // holds.
                    self.shared
                        .stats
                        .inflight_joins
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &trace {
                        // Late joiners get their own admit event aimed at
                        // the execution they joined (`b` = its id).
                        t.record(
                            EventKind::QueryAdmit,
                            waiters[0].client as u32,
                            u32::MAX,
                            waiters.len() as u64,
                            entry.exec_id,
                        );
                    }
                    entry.waiters.extend(waiters);
                    continue;
                }
                let exec_id = self.next_exec;
                self.next_exec += 1;
                if let Some(t) = &trace {
                    // One admit event per distinct execution; `a` =
                    // waiters sharing it at dispatch (> 1 ⟺ fused),
                    // `b` = dense execution id.
                    t.record(
                        EventKind::QueryAdmit,
                        waiters[0].client as u32,
                        u32::MAX,
                        waiters.len() as u64,
                        exec_id,
                    );
                }
                inflight.insert(Arc::clone(&plan.key), Inflight { exec_id, waiters });
                execs.push(ReadExec {
                    key: Arc::clone(&plan.key),
                    tree: plan.tree.as_ref().clone(),
                });
            }
        }
        if execs.is_empty() {
            return;
        }
        self.shared
            .stats
            .executed
            .fetch_add(execs.len() as u64, Ordering::Relaxed);
        self.shared
            .stats
            .read_execs
            .fetch_add(execs.len() as u64, Ordering::Relaxed);
        *self.shared.lane_busy.lock().expect("lane busy lock") += 1;
        self.lane_tx
            .as_ref()
            .expect("lanes alive while engine runs")
            .send(ReadTask { execs })
            .expect("lanes alive while engine runs");
    }

    /// Apply write queries strictly in submission order against the
    /// shared catalog, behind a full lane quiesce (the serve-layer write
    /// barrier: no read is in flight when the catalog changes, so no
    /// in-flight entry can serve a post-write submission stale bytes).
    /// The affected tuples (what `append`/`delete` touched) are the
    /// response payload.
    fn execute_writes(&mut self, writes: Vec<(Submission, Plan)>) {
        if writes.is_empty() {
            return;
        }
        self.shared.quiesce_lanes();
        let trace = self.config.trace.clone();
        let exec = ExecParams {
            page_size: self.config.host.page_size,
            ..ExecParams::default()
        };
        let mut db = self.shared.db.write().expect("catalog lock");
        for (sub, plan) in writes {
            // Catalog statistics and cached plans go stale together.
            self.opt_stats = None;
            self.plan_cache.clear();
            let outcome = execute(&mut db, &plan.tree, &exec);
            self.shared.stats.executed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &trace {
                t.record(
                    EventKind::QueryAdmit,
                    sub.client as u32,
                    u32::MAX,
                    1,
                    self.next_exec,
                );
            }
            self.next_exec += 1;
            match outcome {
                Ok(rel) => {
                    self.shared
                        .stats
                        .writes_applied
                        .fetch_add(1, Ordering::Relaxed);
                    let schema = rel.schema().to_string();
                    let tuples = rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
                    self.shared.conclude(
                        &trace,
                        sub,
                        Ok(QueryResult {
                            id: 0,
                            fan_out: 1,
                            schema,
                            tuples,
                        }),
                    );
                }
                Err(e) => {
                    let error = ServeError::host(&HostError::Data(e));
                    self.shared.conclude(&trace, sub, Err(error));
                }
            }
        }
        *self.shared.relations.lock().expect("relations lock") =
            db.iter().map(|r| r.to_string()).collect();
    }
}

impl Drop for Engine {
    /// Close the lane channel and join the lanes: queued tasks finish and
    /// fan out before the engine disappears, so every dispatched read is
    /// answered even on the single-step (`run_batch`) path.
    fn drop(&mut self) {
        drop(self.lane_tx.take());
        for h in self.lane_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One executor lane: pull read tasks, run them against the shared
/// catalog under the read lock, and fan each plan's result out to every
/// waiter registered by then (initial batch plus in-flight joiners).
fn lane_loop(
    lane: usize,
    shared: &Arc<Shared>,
    rx: &Arc<Mutex<Receiver<ReadTask>>>,
    host: &HostParams,
    trace: &Option<Arc<Tracer>>,
    hold: Option<&LaneHold>,
) {
    loop {
        // Hold the receiver lock only for the recv itself, so sibling
        // lanes can pull the next task while this one executes.
        let task = match rx.lock().expect("lane rx lock").recv() {
            Ok(task) => task,
            Err(_) => return, // channel closed: engine is shutting down
        };
        if let Some(hold) = hold {
            hold.wait();
        }
        let trees: Vec<QueryTree> = task.execs.iter().map(|e| e.tree.clone()).collect();
        let run = {
            let db = shared.db.read().expect("catalog lock");
            run_host_queries(&db, &trees, host)
        };
        shared.stats.lane_execs[lane].fetch_add(trees.len() as u64, Ordering::Relaxed);
        let take_waiters = |key: &Arc<str>| -> Vec<Submission> {
            shared
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(key)
                .expect("dispatched execution is registered")
                .waiters
        };
        match run {
            Ok(out) => {
                for (result, exec) in out.results.into_iter().zip(&task.execs) {
                    let subs = take_waiters(&exec.key);
                    match result {
                        Ok(rel) => {
                            let fan_out = subs.len() as u32;
                            let schema = rel.schema().to_string();
                            let tuples: Vec<Vec<u8>> =
                                rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
                            for sub in subs {
                                shared.conclude(
                                    trace,
                                    sub,
                                    Ok(QueryResult {
                                        id: 0, // filled per waiter in conclude
                                        fan_out,
                                        schema: schema.clone(),
                                        tuples: tuples.clone(),
                                    }),
                                );
                            }
                        }
                        Err(e) => {
                            let error = ServeError::host(&e);
                            for sub in subs {
                                shared.conclude(trace, sub, Err(error.clone()));
                            }
                        }
                    }
                }
            }
            Err(e) => {
                // Run-level failure (validation, stall): every waiter of
                // the task gets the structured error; the server lives.
                let error = ServeError::host(&e);
                for exec in &task.execs {
                    for sub in take_waiters(&exec.key) {
                        shared.conclude(trace, sub, Err(error.clone()));
                    }
                }
            }
        }
        let mut busy = shared.lane_busy.lock().expect("lane busy lock");
        *busy -= 1;
        if *busy == 0 {
            shared.lane_idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{normalize_text, Plan, PlanCache};
    use std::sync::Arc;

    fn dummy_plan(tag: &str) -> Plan {
        // The cache never inspects the tree; a minimal parsed tree of any
        // shape works. Build one from the tag so entries are told apart.
        let db = df_workload::generate_database(&df_workload::DatabaseSpec::scaled(0.01));
        let tree = df_query::parse_query(&db, "(scan r00)").expect("parse");
        Plan {
            tree: Arc::new(tree),
            key: Arc::from(tag),
        }
    }

    #[test]
    fn normalize_collapses_whitespace_runs() {
        assert_eq!(
            normalize_text("  (scan\n\t r00)  "),
            "(scan r00)".to_string()
        );
        assert_eq!(normalize_text("(scan r00)"), "(scan r00)");
        assert_eq!(normalize_text(""), "");
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        cache.insert(("a".into(), false), dummy_plan("a"));
        cache.insert(("b".into(), false), dummy_plan("b"));
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        assert!(cache.get(&("a".into(), false)).is_some());
        cache.insert(("c".into(), false), dummy_plan("c"));
        assert!(cache.get(&("a".into(), false)).is_some());
        assert!(cache.get(&("b".into(), false)).is_none(), "b evicted");
        assert!(cache.get(&("c".into(), false)).is_some());
    }

    #[test]
    fn plan_cache_zero_capacity_never_stores() {
        let mut cache = PlanCache::new(0);
        cache.insert(("a".into(), false), dummy_plan("a"));
        assert!(cache.get(&("a".into(), false)).is_none());
    }

    #[test]
    fn plan_cache_keys_on_optimize_flag() {
        let mut cache = PlanCache::new(4);
        cache.insert(("q".into(), false), dummy_plan("plain"));
        assert!(cache.get(&("q".into(), true)).is_none());
        assert!(cache.get(&("q".into(), false)).is_some());
    }
}

//! The standing query service: generate the workload database, bind a
//! TCP listener, and serve queries until a client sends `Shutdown` (or
//! the process is killed).
//!
//! ```sh
//! cargo run --release -p df-serve --bin df-serve -- \
//!     --addr 127.0.0.1:7411 --scale 0.05 --workers 8
//! ```
//!
//! Flags (all optional):
//! - `--addr A`            listen address (default `127.0.0.1:7411`;
//!   port 0 picks a free port, printed on stdout)
//! - `--scale F`           database scale factor (default 0.05)
//! - `--workers N`         executor worker threads (default: all cores)
//! - `--page-size B`       page size in bytes
//! - `--alloc S`           allocation strategy (see `host_run`)
//! - `--join A`            join algorithm: `nested` or `hash`
//! - `--transfer T`        transfer mode: `materialize` or `pipeline`
//! - `--queue-capacity N`  per-client admission queue depth (default 32)
//! - `--batch-max N`       max requests drained per batch (default 64)
//! - `--lanes N`           read executor lanes (default 2)
//! - `--plan-cache N`      plan-cache capacity in plans (default 128;
//!   0 disables caching)
//! - `--mux`               service all client sockets from one
//!   poll(2)-based reader thread instead of one thread per connection
//! - `--trace-out FILE`    dump the serve-layer trace snapshot at exit
//!
//! Fault injection (deterministic, for demos and smoke tests):
//! - `--fault-panic N`       panic the kernel of dispatched unit N
//! - `--fault-lane-panic N`  panic the serve lane before lane task N
//!   (proves lane-panic containment: other clients keep being served)
//!
//! The readiness line `df-serve: listening on <addr>` is printed exactly
//! once, after the listener is bound — scripts should wait for it.

use std::sync::Arc;

use df_obs::Tracer;
use df_serve::{Engine, ServeConfig, Server, ServerOptions};
use df_workload::{generate_database, DatabaseSpec};

fn main() {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut scale = 0.05f64;
    let mut config = ServeConfig::default();
    let mut options = ServerOptions::default();
    let mut trace_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--scale" => scale = parse(&value("--scale"), "--scale"),
            "--workers" => config.host.workers = parse(&value("--workers"), "--workers"),
            "--page-size" => {
                config.host.page_size = parse(&value("--page-size"), "--page-size");
            }
            "--alloc" => {
                config.host.strategy = value("--alloc").parse().unwrap_or_else(|e: String| die(&e));
            }
            "--join" => {
                config.host.join = value("--join").parse().unwrap_or_else(|e: String| die(&e));
            }
            "--transfer" => {
                config.host.transfer = value("--transfer")
                    .parse()
                    .unwrap_or_else(|e: String| die(&e));
            }
            "--queue-capacity" => {
                config.queue_capacity = parse(&value("--queue-capacity"), "--queue-capacity");
            }
            "--batch-max" => config.batch_max = parse(&value("--batch-max"), "--batch-max"),
            "--lanes" => config.lanes = parse(&value("--lanes"), "--lanes"),
            "--plan-cache" => {
                config.plan_cache_capacity = parse(&value("--plan-cache"), "--plan-cache");
            }
            "--mux" => options.mux = true,
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--fault-panic" => {
                config.host.fault.panic_on_unit =
                    Some(parse(&value("--fault-panic"), "--fault-panic"));
            }
            "--fault-lane-panic" => {
                config.host.fault.lane_panic_task =
                    Some(parse(&value("--fault-lane-panic"), "--fault-lane-panic"));
            }
            other => die(&format!(
                "unknown flag `{other}` (see --help in the source)"
            )),
        }
    }
    if trace_out.is_some() {
        config.trace = Some(Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY)));
    }
    if config.host.fault.is_active() {
        quiet_worker_panics();
    }

    let db = generate_database(&DatabaseSpec::scaled(scale));
    println!(
        "df-serve: scale {scale} — {} relations, {} KB; {} workers, \
         {} lanes, plan cache {}, queue capacity {}, batch max {}",
        db.len(),
        db.total_bytes() / 1024,
        config.host.workers,
        config.lanes,
        config.plan_cache_capacity,
        config.queue_capacity,
        config.batch_max
    );
    if options.mux {
        println!("df-serve: mux mode — one poll-based reader thread");
    }

    let trace = config.trace.clone();
    let engine = Engine::new(db, config).unwrap_or_else(|e| die(&e));
    let listener = std::net::TcpListener::bind(&addr)
        .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    let server = Server::start_with(listener, engine, options)
        .unwrap_or_else(|e| die(&format!("cannot start: {e}")));
    println!("df-serve: listening on {}", server.local_addr());

    let handle = server.handle();
    server.join();
    let stats = handle.stats();
    println!("df-serve: shut down cleanly");
    for (name, v) in stats.rows() {
        println!("  {name:>14} {v}");
    }
    if let (Some(path), Some(tracer)) = (&trace_out, &trace) {
        let snap = tracer.snapshot();
        let events = snap.events.len();
        std::fs::write(path, snap.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("trace: wrote {path} ({events} events)");
    }
}

/// Injected kernel and serve-lane panics are expected; keep their
/// backtraces quiet.
fn quiet_worker_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let quiet = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("df-host-worker") || n.starts_with("serve-lane"));
        if !quiet {
            default(info);
        }
    }));
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value `{s}` for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("df-serve: {msg}");
    std::process::exit(2);
}

//! Interactive shell against a running df-serve instance — the remote
//! counterpart of the local `repl` example, sharing its command language
//! via [`df_serve::ReplCommand`].
//!
//! ```sh
//! cargo run --release -p df-serve --bin serve_client -- --addr 127.0.0.1:7411
//! df> (restrict (scan r00) (< val 100))
//! df> :priority high
//! df> :stats
//! df> :quit
//! ```
//!
//! Flags:
//! - `--addr A`      server address (default `127.0.0.1:7411`)
//! - `--shutdown`    send a shutdown request and exit (no shell)

use std::io::{BufRead, Write};

use df_serve::proto::{Priority, Request, Response};
use df_serve::{format_stats, ReplCommand, ServeClient};

fn main() {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| die("--addr needs a value"));
            }
            "--shutdown" => shutdown = true,
            other => die(&format!("unknown flag `{other}`")),
        }
    }

    let mut client =
        ServeClient::connect(&addr).unwrap_or_else(|e| die(&format!("cannot connect {addr}: {e}")));
    if shutdown {
        match client.request(&Request::Shutdown) {
            Ok(_) => println!("serve_client: server shutting down"),
            Err(e) => die(&format!("shutdown failed: {e}")),
        }
        return;
    }

    let mut priority = Priority::Normal;
    let mut optimizing = false;
    println!("df-serve shell @ {addr} — :help for commands.");
    let stdin = std::io::stdin();
    loop {
        print!("df> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let command = match ReplCommand::parse(&line) {
            Ok(c) => c,
            Err(e) => {
                println!("{e}");
                continue;
            }
        };
        match command {
            ReplCommand::Empty => {}
            ReplCommand::Quit => break,
            ReplCommand::Help => println!(
                ":priority high|normal|low   class for subsequent queries\n\
                 :optimize on|off            ask the server to run df-opt first\n\
                 :relations                  list served relations\n\
                 :install <name> <query>     materialize a standing view\n\
                 :view <name>                read a maintained view\n\
                 :drop <name>                drop a standing view\n\
                 :stats                      server counters\n\
                 :quit                       exit\n\
                 anything else is sent as a query, e.g.\n\
                 (restrict (scan r00) (< val 100))"
            ),
            ReplCommand::Engine(_) => {
                println!("the server picks the engine; `:engine` only works in the local repl");
            }
            ReplCommand::Optimize(on) => {
                optimizing = on;
                println!("optimizer {}", if on { "on" } else { "off" });
            }
            ReplCommand::Priority(p) => {
                priority = p;
                println!("priority = {p}");
            }
            ReplCommand::Relations => match client.request(&Request::Relations) {
                Ok(Response::Relations(rows)) => {
                    for r in rows {
                        println!("  {r}");
                    }
                }
                Ok(other) => println!("unexpected response: {other:?}"),
                Err(e) => die(&format!("connection lost: {e}")),
            },
            ReplCommand::Stats => match client.request(&Request::Stats) {
                Ok(Response::Stats(rows)) => println!("{}", format_stats(&rows)),
                Ok(other) => println!("unexpected response: {other:?}"),
                Err(e) => die(&format!("connection lost: {e}")),
            },
            ReplCommand::Install(name, text) => match client.install_view(&name, &text) {
                Ok(Response::Result(r)) => println!("view `{name}` installed, schema {}", r.schema),
                Ok(Response::Error { error, .. }) => println!("error: {error}"),
                Ok(other) => println!("unexpected response: {other:?}"),
                Err(e) => die(&format!("connection lost: {e}")),
            },
            ReplCommand::Drop(name) => match client.drop_view(&name) {
                Ok(Response::Result(_)) => println!("view `{name}` dropped"),
                Ok(Response::Error { error, .. }) => println!("error: {error}"),
                Ok(other) => println!("unexpected response: {other:?}"),
                Err(e) => die(&format!("connection lost: {e}")),
            },
            ReplCommand::View(name) => match client.read_view(&name) {
                Ok(Response::Result(r)) => {
                    println!("{} tuples, schema {}", r.tuples.len(), r.schema);
                    for t in r.tuples.iter().take(10) {
                        println!("  {} bytes", t.len());
                    }
                    if r.tuples.len() > 10 {
                        println!("  ... and {} more", r.tuples.len() - 10);
                    }
                }
                Ok(Response::Error { error, .. }) => println!("error: {error}"),
                Ok(other) => println!("unexpected response: {other:?}"),
                Err(e) => die(&format!("connection lost: {e}")),
            },
            ReplCommand::Query(text) => match client.query(&text, priority, optimizing) {
                Ok(Response::Result(r)) => {
                    println!(
                        "{} tuples, schema {} (fan-out {})",
                        r.tuples.len(),
                        r.schema,
                        r.fan_out
                    );
                    for t in r.tuples.iter().take(10) {
                        println!("  {} bytes", t.len());
                    }
                    if r.tuples.len() > 10 {
                        println!("  ... and {} more", r.tuples.len() - 10);
                    }
                }
                Ok(Response::Error { error, .. }) => println!("error: {error}"),
                Ok(other) => println!("unexpected response: {other:?}"),
                Err(e) => die(&format!("connection lost: {e}")),
            },
        }
    }
    println!("bye");
}

fn die(msg: &str) -> ! {
    eprintln!("serve_client: {msg}");
    std::process::exit(2);
}

//! TCP front-end wrapping the [`Engine`]: an acceptor thread plus one
//! reader thread per connected client, speaking the length-prefixed
//! frame protocol of [`crate::proto`].
//!
//! The acceptor never blocks on query execution: a request either lands
//! in the client's bounded queue or is rejected immediately with a typed
//! error by [`EngineHandle::submit`]. Responses are written by whichever
//! thread produced them (the dispatcher for query results, the reader
//! for control requests) under a per-client writer lock, so a query
//! result and a `Stats` reply never interleave mid-frame.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use df_obs::{Path, Tracer};

use crate::engine::{Engine, EngineHandle};
use crate::proto::{read_frame, write_frame, Request, Response, ServeError};

/// State shared by the acceptor, the reader threads, and shutdown.
struct ServerShared {
    handle: EngineHandle,
    trace: Option<Arc<Tracer>>,
    stopping: AtomicBool,
    addr: SocketAddr,
}

impl ServerShared {
    /// Encode and write one response frame, tallying outbound bytes.
    /// Write errors mean the client vanished; the reader thread will
    /// notice on its side, so they are swallowed here.
    fn send(&self, writer: &Mutex<TcpStream>, client: usize, response: &Response) {
        let payload = response.encode();
        self.handle
            .stats()
            .bytes_out
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.transfer(Path::ClientOut, client as u32, payload.len() as u64);
        }
        let mut w = writer.lock().expect("writer lock");
        let _ = write_frame(&mut *w, &payload);
    }

    /// Begin server shutdown: stop admitting, wake the acceptor, let the
    /// dispatcher drain what is queued.
    fn begin_shutdown(&self) {
        self.handle.shutdown();
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept()` with a throwaway
        // connection; if connecting fails the listener is already gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running df-serve instance: engine dispatcher + acceptor + per-client
/// readers. Dropping the struct does not stop it; call [`Server::join`]
/// after a shutdown request, or [`Server::shutdown`] to initiate one.
pub struct Server {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Start serving `engine` on `listener`. The listener may be bound to
    /// port 0; [`Server::local_addr`] reports the resolved address.
    ///
    /// # Errors
    /// Propagates listener address lookup failures.
    pub fn start(listener: TcpListener, engine: Engine) -> io::Result<Server> {
        let shared = Arc::new(ServerShared {
            handle: engine.handle(),
            trace: engine.trace(),
            stopping: AtomicBool::new(false),
            addr: listener.local_addr()?,
        });
        let dispatcher = thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || engine.run())
            .expect("spawn dispatcher");
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A submission-side handle to the engine (stats, shutdown).
    pub fn handle(&self) -> EngineHandle {
        self.shared.handle.clone()
    }

    /// Initiate shutdown from the host process (equivalent to a client
    /// sending [`Request::Shutdown`]).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the acceptor and dispatcher to exit. Reader threads for
    /// still-connected clients are detached; they exit when their client
    /// hangs up or on the next request (answered `ShuttingDown`).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client); drop it.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        // Results are latency-sensitive small frames; never let Nagle
        // batch them behind the peer's delayed ACK.
        stream.set_nodelay(true).ok();
        let client = shared.handle.register_client();
        let shared = Arc::clone(shared);
        // Detached on purpose: the thread exits when the client hangs up.
        let _ = thread::Builder::new()
            .name(format!("serve-client-{client}"))
            .spawn(move || client_loop(stream, client, &shared));
    }
}

/// One reader thread: decode frames, dispatch requests, reply. Exits on
/// client EOF or an unreadable stream.
fn client_loop(stream: TcpStream, client: usize, shared: &Arc<ServerShared>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => {
            shared.handle.close_client(client);
            return;
        }
    };
    let mut reader = io::BufReader::new(stream);
    // Clean EOF and a torn connection end the loop alike: either way the
    // client is gone and its queued work is dropped.
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        shared
            .handle
            .stats()
            .bytes_in
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if let Some(t) = &shared.trace {
            t.transfer(Path::ClientIn, client as u32, payload.len() as u64);
        }
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Framing is still intact (length prefix), so answer the
                // malformed request and keep serving the connection.
                shared.send(
                    &writer,
                    client,
                    &Response::Error {
                        id: 0,
                        error: ServeError::Protocol {
                            detail: e.to_string(),
                        },
                    },
                );
                continue;
            }
        };
        match request {
            Request::Query {
                id,
                priority,
                optimize,
                text,
            } => {
                let cb_shared = Arc::clone(shared);
                let cb_writer = Arc::clone(&writer);
                shared.handle.submit(
                    client,
                    id,
                    priority,
                    optimize,
                    text,
                    Box::new(move |response| cb_shared.send(&cb_writer, client, &response)),
                );
            }
            Request::Stats => {
                let rows = shared.handle.stats().rows();
                shared.send(&writer, client, &Response::Stats(rows));
            }
            Request::Relations => {
                let rows = shared.handle.relations();
                shared.send(&writer, client, &Response::Relations(rows));
            }
            Request::Ping => {
                shared.send(&writer, client, &Response::Ok);
            }
            Request::Shutdown => {
                shared.send(&writer, client, &Response::Ok);
                shared.begin_shutdown();
            }
        }
    }
    shared.handle.close_client(client);
}

//! TCP front-end wrapping the [`Engine`]: an acceptor thread plus client
//! readers, speaking the length-prefixed frame protocol of
//! [`crate::proto`].
//!
//! Two reader topologies share one request-dispatch path:
//!
//! * **Thread-per-connection** (the default) — one blocking reader
//!   thread per client, simple and fair at small client counts.
//! * **Poll-based multiplexing** ([`ServerOptions::mux`]) — *one* reader
//!   thread services every client socket via `poll(2)` (the
//!   [`crate::sys`] shim), so client counts can outgrow the thread
//!   budget. Sockets are non-blocking; inbound bytes accumulate in a
//!   per-connection buffer from which complete frames are peeled.
//!
//! The acceptor never blocks on query execution: a request either lands
//! in the client's bounded queue or is rejected immediately with a typed
//! error by [`EngineHandle::submit`]. Responses are written by whichever
//! thread produced them (a lane for query results, the reader for
//! control requests) under a per-client writer lock, so a query result
//! and a `Stats` reply never interleave mid-frame; the lock recovers
//! from poisoning ([`crate::engine`]'s fault-containment argument), and
//! the writer rides out `WouldBlock` on the mux path's non-blocking
//! sockets by waiting for `POLLOUT`.
//!
//! Shutdown wakes the blocked `accept(2)` by shutting down the listening
//! socket itself — the previous design connected to its own port, which
//! raced real clients (the wake-up could be consumed by a concurrent
//! connect, leaving the acceptor blocked, or admit a client post-drain).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use df_obs::{Path, Tracer};

use crate::engine::{Engine, EngineHandle};
use crate::proto::{read_frame, Request, Response, ServeError, MAX_FRAME};
#[cfg(unix)]
use crate::sys;

/// How long the mux reader sleeps in `poll(2)` before re-checking for
/// newly accepted clients and the stopping flag.
const MUX_POLL_MS: i32 = 25;

/// Front-end topology options for [`Server::start_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    /// Service all client sockets from one poll-based reader thread
    /// instead of one blocking thread per connection (Unix only).
    pub mux: bool,
}

/// The write half of one client connection. Frames are written whole
/// under the surrounding mutex; on a non-blocking socket (mux mode) a
/// short write parks on `POLLOUT` until the send buffer drains.
struct ClientWriter {
    stream: TcpStream,
}

impl ClientWriter {
    /// Write one length-prefixed frame, riding out partial writes.
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        // One coalesced buffer for the same Nagle/delayed-ACK reason as
        // `proto::write_frame`.
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        let mut off = 0;
        while off < frame.len() {
            match self.stream.write(&frame[off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => off += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                #[cfg(unix)]
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    sys::wait_writable(self.stream.as_raw_fd())?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// State shared by the acceptor, the reader threads, and shutdown.
struct ServerShared {
    handle: EngineHandle,
    trace: Option<Arc<Tracer>>,
    stopping: AtomicBool,
    addr: SocketAddr,
    /// A dup of the acceptor's listener (same open file description),
    /// kept so shutdown can fail a blocked `accept()` without racing the
    /// acceptor thread's own handle.
    listener: TcpListener,
}

impl ServerShared {
    /// Encode and write one response frame, tallying outbound bytes.
    /// Write errors mean the client vanished; the reader thread will
    /// notice on its side, so they are swallowed here.
    fn send(&self, writer: &Mutex<ClientWriter>, client: usize, response: &Response) {
        let payload = response.encode();
        self.handle
            .stats()
            .bytes_out
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.transfer(Path::ClientOut, client as u32, payload.len() as u64);
        }
        // Poison recovery: a panicking writer leaves at worst a torn
        // frame on one client's socket (that client's reader then drops
        // the connection); other threads keep answering their clients.
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.send_frame(&payload);
    }

    /// Begin server shutdown: stop admitting, wake the acceptor, let the
    /// dispatcher drain what is queued.
    fn begin_shutdown(&self) {
        self.handle.shutdown();
        if self.stopping.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        // Fail the blocked `accept()` by shutting down the listening
        // socket — race-free, unlike the old self-connect wake-up (a
        // real client could consume the wake, or the connect could fail
        // and leave the acceptor blocked forever).
        #[cfg(unix)]
        let _ = sys::shutdown_socket(self.listener.as_raw_fd());
        #[cfg(not(unix))]
        let _ = TcpStream::connect(self.addr);
    }

    /// Decode and dispatch one inbound frame payload for `client`,
    /// answering on `writer`. Shared by both reader topologies.
    fn handle_payload(
        self: &Arc<Self>,
        client: usize,
        writer: &Arc<Mutex<ClientWriter>>,
        payload: &[u8],
    ) {
        self.handle
            .stats()
            .bytes_in
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.transfer(Path::ClientIn, client as u32, payload.len() as u64);
        }
        let request = match Request::decode(payload) {
            Ok(r) => r,
            Err(e) => {
                // Framing is still intact (length prefix), so answer the
                // malformed request and keep serving the connection.
                self.send(
                    writer,
                    client,
                    &Response::Error {
                        id: 0,
                        error: ServeError::Protocol {
                            detail: e.to_string(),
                        },
                    },
                );
                return;
            }
        };
        match request {
            Request::Query {
                id,
                priority,
                optimize,
                text,
            } => {
                let cb_shared = Arc::clone(self);
                let cb_writer = Arc::clone(writer);
                self.handle.submit(
                    client,
                    id,
                    priority,
                    optimize,
                    text,
                    Box::new(move |response| cb_shared.send(&cb_writer, client, &response)),
                );
            }
            Request::InstallView { id, name, text } => {
                let cb_shared = Arc::clone(self);
                let cb_writer = Arc::clone(writer);
                self.handle.install_view(
                    client,
                    id,
                    name,
                    text,
                    Box::new(move |response| cb_shared.send(&cb_writer, client, &response)),
                );
            }
            Request::DropView { id, name } => {
                let cb_shared = Arc::clone(self);
                let cb_writer = Arc::clone(writer);
                self.handle.drop_view(
                    client,
                    id,
                    name,
                    Box::new(move |response| cb_shared.send(&cb_writer, client, &response)),
                );
            }
            Request::ReadView { id, name } => {
                let cb_shared = Arc::clone(self);
                let cb_writer = Arc::clone(writer);
                self.handle.read_view(
                    client,
                    id,
                    name,
                    Box::new(move |response| cb_shared.send(&cb_writer, client, &response)),
                );
            }
            Request::Stats => {
                let rows = self.handle.stats().rows();
                self.send(writer, client, &Response::Stats(rows));
            }
            Request::Relations => {
                let rows = self.handle.relations();
                self.send(writer, client, &Response::Relations(rows));
            }
            Request::Ping => {
                self.send(writer, client, &Response::Ok);
            }
            Request::Shutdown => {
                self.send(writer, client, &Response::Ok);
                self.begin_shutdown();
            }
        }
    }
}

/// A running df-serve instance: engine dispatcher + acceptor + client
/// readers. Dropping the struct does not stop it; call [`Server::join`]
/// after a shutdown request, or [`Server::shutdown`] to initiate one.
pub struct Server {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Start serving `engine` on `listener` with one blocking reader
    /// thread per connection. The listener may be bound to port 0;
    /// [`Server::local_addr`] reports the resolved address.
    ///
    /// # Errors
    /// Propagates listener address lookup failures.
    pub fn start(listener: TcpListener, engine: Engine) -> io::Result<Server> {
        Server::start_with(listener, engine, ServerOptions::default())
    }

    /// [`Server::start`] with an explicit front-end topology.
    ///
    /// # Errors
    /// Propagates listener address/dup failures; rejects
    /// [`ServerOptions::mux`] on non-Unix platforms.
    pub fn start_with(
        listener: TcpListener,
        engine: Engine,
        options: ServerOptions,
    ) -> io::Result<Server> {
        if options.mux && cfg!(not(unix)) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "--mux requires poll(2) (unix only)",
            ));
        }
        let shared = Arc::new(ServerShared {
            handle: engine.handle(),
            trace: engine.trace(),
            stopping: AtomicBool::new(false),
            addr: listener.local_addr()?,
            listener: listener.try_clone()?,
        });
        let dispatcher = thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || engine.run())
            .expect("spawn dispatcher");
        let mux_tx = if options.mux {
            let (tx, rx) = std::sync::mpsc::channel();
            let shared = Arc::clone(&shared);
            // Detached like the per-client readers: exits when the
            // acceptor is gone and the last client hangs up.
            let _ = thread::Builder::new()
                .name("serve-mux".into())
                .spawn(move || mux_loop(&rx, &shared));
            Some(tx)
        } else {
            None
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, mux_tx))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A submission-side handle to the engine (stats, shutdown).
    pub fn handle(&self) -> EngineHandle {
        self.shared.handle.clone()
    }

    /// Initiate shutdown from the host process (equivalent to a client
    /// sending [`Request::Shutdown`]).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the acceptor and dispatcher to exit. Reader threads for
    /// still-connected clients are detached; they exit when their client
    /// hangs up or on the next request (answered `ShuttingDown`).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    mux_tx: Option<Sender<MuxConn>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // `begin_shutdown` shut the listening socket down, or a
                // transient per-connection error (ECONNABORTED) fired.
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            // A client racing shutdown; drop it unserved.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        // Results are latency-sensitive small frames; never let Nagle
        // batch them behind the peer's delayed ACK.
        stream.set_nodelay(true).ok();
        let client = shared.handle.register_client();
        match &mux_tx {
            Some(tx) => {
                // Hand the socket to the mux reader. Non-blocking: the
                // reader and any writer (lane fan-out) share the file
                // description, so neither may ever block in the kernel.
                if stream.set_nonblocking(true).is_err() {
                    shared.handle.close_client(client);
                    continue;
                }
                match MuxConn::new(stream, client) {
                    Some(conn) => {
                        if tx.send(conn).is_err() {
                            shared.handle.close_client(client);
                        }
                    }
                    None => shared.handle.close_client(client),
                }
            }
            None => {
                let shared = Arc::clone(shared);
                // Detached on purpose: the thread exits when the client
                // hangs up.
                let _ = thread::Builder::new()
                    .name(format!("serve-client-{client}"))
                    .spawn(move || client_loop(stream, client, &shared));
            }
        }
    }
}

/// One reader thread: decode frames, dispatch requests, reply. Exits on
/// client EOF or an unreadable stream.
fn client_loop(stream: TcpStream, client: usize, shared: &Arc<ServerShared>) {
    let writer = match stream.try_clone() {
        Ok(stream) => Arc::new(Mutex::new(ClientWriter { stream })),
        Err(_) => {
            shared.handle.close_client(client);
            return;
        }
    };
    let mut reader = io::BufReader::new(stream);
    // Clean EOF and a torn connection end the loop alike: either way the
    // client is gone and its queued work is dropped.
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        shared.handle_payload(client, &writer, &payload);
    }
    shared.handle.close_client(client);
}

// ------------------------------------------------------------------- mux

/// One multiplexed connection: the non-blocking read half plus the
/// frame-reassembly buffer, and the shared write half.
struct MuxConn {
    stream: TcpStream,
    client: usize,
    writer: Arc<Mutex<ClientWriter>>,
    /// Inbound bytes not yet forming a complete frame.
    inbound: VecDeque<u8>,
}

impl MuxConn {
    fn new(stream: TcpStream, client: usize) -> Option<MuxConn> {
        let writer = stream.try_clone().ok()?;
        Some(MuxConn {
            stream,
            client,
            writer: Arc::new(Mutex::new(ClientWriter { stream: writer })),
            inbound: VecDeque::new(),
        })
    }

    /// Pop one complete frame payload off the head of `inbound`.
    /// `Err(())` means the peer sent an oversized length prefix — the
    /// connection is unrecoverable (framing is lost).
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, ()> {
        if self.inbound.len() < 4 {
            return Ok(None);
        }
        let mut len = [0u8; 4];
        for (i, b) in self.inbound.iter().take(4).enumerate() {
            len[i] = *b;
        }
        let len = u32::from_be_bytes(len) as usize;
        if len > MAX_FRAME {
            return Err(());
        }
        if self.inbound.len() < 4 + len {
            return Ok(None);
        }
        self.inbound.drain(..4);
        Ok(Some(self.inbound.drain(..len).collect()))
    }
}

/// The single mux reader: `poll(2)` over every connected client, drain
/// readable sockets, peel complete frames, dispatch. Exits once the
/// acceptor is gone (shutdown) and the last client has hung up.
#[cfg_attr(not(unix), allow(unused_variables, unreachable_code))]
fn mux_loop(rx: &Receiver<MuxConn>, shared: &Arc<ServerShared>) {
    #[cfg(not(unix))]
    return; // start_with rejects mux off-unix; nothing to do.
    #[cfg(unix)]
    {
        let mut conns: Vec<MuxConn> = Vec::new();
        let mut acceptor_gone = false;
        loop {
            // Admit newly accepted clients without blocking the served ones.
            loop {
                match rx.try_recv() {
                    Ok(conn) => {
                        shared
                            .handle
                            .stats()
                            .mux_clients
                            .fetch_add(1, Ordering::Relaxed);
                        conns.push(conn);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        acceptor_gone = true;
                        break;
                    }
                }
            }
            if conns.is_empty() {
                if acceptor_gone {
                    return;
                }
                // Idle: park on the channel instead of spinning in poll.
                match rx.recv_timeout(Duration::from_millis(MUX_POLL_MS as u64)) {
                    Ok(conn) => {
                        shared
                            .handle
                            .stats()
                            .mux_clients
                            .fetch_add(1, Ordering::Relaxed);
                        conns.push(conn);
                    }
                    Err(_) => continue,
                }
            }
            let mut fds: Vec<sys::PollFd> = conns
                .iter()
                .map(|c| sys::PollFd::new(c.stream.as_raw_fd(), sys::POLLIN))
                .collect();
            let ready = match sys::poll_fds(&mut fds, MUX_POLL_MS) {
                Ok(n) => n,
                Err(_) => continue,
            };
            if ready == 0 {
                continue;
            }
            let mut closed: Vec<usize> = Vec::new();
            for (i, pfd) in fds.iter().enumerate() {
                if pfd.revents == 0 {
                    continue;
                }
                if !drain_mux_conn(&mut conns[i], shared) {
                    closed.push(i);
                }
            }
            // Remove back-to-front so earlier indices stay valid.
            for &i in closed.iter().rev() {
                let conn = conns.swap_remove(i);
                shared.handle.close_client(conn.client);
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Drain every byte currently readable on `conn`, dispatching complete
/// frames. Returns `false` once the connection is finished (EOF, error,
/// or lost framing).
fn drain_mux_conn(conn: &mut MuxConn, shared: &Arc<ServerShared>) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    let open = loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => break false, // EOF
            Ok(n) => conn.inbound.extend(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break false,
        }
    };
    loop {
        match conn.take_frame() {
            Ok(Some(payload)) => shared.handle_payload(conn.client, &conn.writer, &payload),
            Ok(None) => break,
            Err(()) => return false,
        }
    }
    open
}

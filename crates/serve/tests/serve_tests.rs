//! Integration tests for the serving layer: admission semantics (lock
//! serialization, fusion, backpressure, priority, fairness), the plan
//! cache, cross-batch in-flight fusion, multi-lane execution, structured
//! error propagation under fault injection, and the socket front-end
//! end to end.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use df_obs::{EventKind, Tracer};
use df_query::{execute_readonly, parse_query, ExecParams};
use df_relalg::Catalog;
use df_serve::engine::LaneHold;
use df_serve::proto::{HostErrorKind, Priority, QueryResult, Request, Response, ServeError};
use df_serve::{Engine, ServeClient, ServeConfig, Server, ServerOptions};
use df_workload::{generate_database, DatabaseSpec};

fn small_db() -> Catalog {
    generate_database(&DatabaseSpec::scaled(0.01))
}

fn test_config() -> ServeConfig {
    let mut config = ServeConfig::default();
    config.host.workers = 4;
    config
}

/// Collects replies as `(client, response)` in arrival order.
#[derive(Clone, Default)]
struct Replies(Arc<Mutex<Vec<(usize, Response)>>>);

impl Replies {
    fn reply_for(&self, client: usize) -> df_serve::engine::Reply {
        let sink = Arc::clone(&self.0);
        Box::new(move |response| {
            sink.lock().expect("replies lock").push((client, response));
        })
    }

    fn take(&self) -> Vec<(usize, Response)> {
        std::mem::take(&mut self.0.lock().expect("replies lock"))
    }
}

/// The sequential-oracle tuple images for a read query, sorted (the
/// engine runs deterministic mode, which canonicalizes result order).
fn oracle_tuples(db: &Catalog, text: &str, page_size: usize) -> Vec<Vec<u8>> {
    let tree = parse_query(db, text).expect("oracle parse");
    let params = ExecParams {
        page_size,
        ..ExecParams::default()
    };
    let rel = execute_readonly(db, &tree, &params).expect("oracle run");
    let mut tuples: Vec<Vec<u8>> = rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
    tuples.sort();
    tuples
}

fn result(response: &Response) -> &QueryResult {
    match response {
        Response::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

/// Keep expected injected worker and serve-lane panics out of the test
/// output.
fn quiet_worker_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("df-host-worker") || n.starts_with("serve-lane"));
            if !quiet {
                default(info);
            }
        }));
    });
}

#[test]
fn identical_concurrent_reads_fuse_to_one_execution() {
    let db = small_db();
    let mut config = test_config();
    let trace = Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY));
    config.trace = Some(Arc::clone(&trace));
    let page_size = config.host.page_size;
    let text = "(restrict (scan r02) (< val 600))";
    let want = oracle_tuples(&db, text, page_size);

    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let clients: Vec<usize> = (0..6).map(|_| handle.register_client()).collect();
    for &c in &clients {
        handle.submit(
            c,
            c as u64,
            Priority::Normal,
            false,
            text.to_string(),
            replies.reply_for(c),
        );
    }
    assert!(engine.run_batch());
    handle.quiesce();

    // One execution, five fused followers.
    let stats = handle.stats();
    assert_eq!(stats.submitted.load(Ordering::Relaxed), 6);
    assert_eq!(stats.executed.load(Ordering::Relaxed), 1);
    assert_eq!(stats.fused.load(Ordering::Relaxed), 5);
    assert_eq!(stats.inflight_joins.load(Ordering::Relaxed), 0);

    // The `query_admit` trace event shows one admission carrying all six
    // waiters.
    let admits: Vec<_> = trace
        .snapshot()
        .events
        .iter()
        .filter(|e| e.kind == EventKind::QueryAdmit)
        .map(|e| e.a)
        .collect();
    assert_eq!(admits, vec![6]);

    // Every waiter gets the result, byte-identical to the oracle (and
    // therefore to each other), with the shared fan-out stamped on it.
    let got = replies.take();
    assert_eq!(got.len(), 6);
    for (client, response) in got {
        let r = result(&response);
        assert_eq!(r.id, client as u64, "responses correlate by request id");
        assert_eq!(r.fan_out, 6);
        let mut tuples = r.tuples.clone();
        tuples.sort();
        assert_eq!(tuples, want, "client {client} diverged from the oracle");
    }
}

#[test]
fn distinct_reads_do_not_fuse() {
    let db = small_db();
    let mut engine = Engine::new(db, test_config()).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let c = handle.register_client();
    for (i, text) in ["(restrict (scan r02) (< val 100))", "(scan r03)"]
        .iter()
        .enumerate()
    {
        handle.submit(
            c,
            i as u64,
            Priority::Normal,
            false,
            text.to_string(),
            replies.reply_for(c),
        );
    }
    assert!(engine.run_batch());
    handle.quiesce();
    assert_eq!(handle.stats().executed.load(Ordering::Relaxed), 2);
    assert_eq!(handle.stats().fused.load(Ordering::Relaxed), 0);
    assert_eq!(replies.take().len(), 2);
}

#[test]
fn conflicting_writes_serialize_without_lost_updates() {
    let db = small_db();
    let config = test_config();
    let page_size = config.host.page_size;
    let baseline = oracle_tuples(&db, "(scan r01)", page_size).len();

    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    // Two clients race appends into the same target relation; each
    // restriction selects exactly one tuple (keys are unique).
    let a = handle.register_client();
    let b = handle.register_client();
    let per_client = 4usize;
    for i in 0..per_client {
        for &c in &[a, b] {
            let key = c * per_client + i; // distinct keys per request
            handle.submit(
                c,
                (c * 100 + i) as u64,
                Priority::Normal,
                false,
                format!("(append (restrict (scan r00) (= key {key})) r01)"),
                replies.reply_for(c),
            );
        }
    }
    while handle.stats().executed.load(Ordering::Relaxed) < 2 * per_client as u64 {
        assert!(engine.run_batch());
    }
    // Writes are lane tasks now: wait for them to apply and fan out.
    handle.quiesce();
    let got = replies.take();
    assert_eq!(got.len(), 2 * per_client);
    for (client, response) in &got {
        let r = result(response);
        assert_eq!(r.tuples.len(), 1, "client {client}: append touched 1 tuple");
    }
    // Writes conflict pairwise (same read source, same write target), so
    // they must have split into one lock group each.
    assert_eq!(
        handle.stats().groups.load(Ordering::Relaxed),
        2 * per_client as u64
    );
    assert_eq!(
        handle.stats().writes_applied.load(Ordering::Relaxed),
        2 * per_client as u64
    );

    // No lost updates: the target grew by exactly one tuple per append.
    let check = handle.register_client();
    handle.submit(
        check,
        999,
        Priority::Normal,
        false,
        "(scan r01)".to_string(),
        replies.reply_for(check),
    );
    assert!(engine.run_batch());
    handle.quiesce();
    let got = replies.take();
    assert_eq!(result(&got[0].1).tuples.len(), baseline + 2 * per_client);
}

#[test]
fn full_queue_rejects_with_busy_immediately() {
    let db = small_db();
    let mut config = test_config();
    config.queue_capacity = 2;
    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let c = handle.register_client();
    // Nothing drains the queue (the dispatcher is not running), so the
    // third submission must bounce without blocking.
    for i in 0..4u64 {
        handle.submit(
            c,
            i,
            Priority::Normal,
            false,
            "(scan r02)".to_string(),
            replies.reply_for(c),
        );
    }
    let got = replies.take();
    assert_eq!(got.len(), 2, "two submissions rejected synchronously");
    for (_, response) in &got {
        match response {
            Response::Error {
                error: ServeError::Busy { capacity },
                ..
            } => assert_eq!(*capacity, 2),
            other => panic!("expected Busy, got {other:?}"),
        }
    }
    assert_eq!(handle.stats().busy_rejected.load(Ordering::Relaxed), 2);
    assert_eq!(handle.stats().submitted.load(Ordering::Relaxed), 2);
    // The queued pair still executes normally.
    assert!(engine.run_batch());
    handle.quiesce();
    assert_eq!(replies.take().len(), 2);
}

#[test]
fn priority_classes_drain_high_to_low() {
    let db = small_db();
    let mut engine = Engine::new(db, test_config()).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    // One client per request so queue-front collection sees all three.
    let submit = |priority, id: u64, text: &str| {
        let c = handle.register_client();
        handle.submit(
            c,
            id,
            priority,
            false,
            text.to_string(),
            replies.reply_for(c),
        );
    };
    submit(Priority::Low, 0, "(restrict (scan r02) (< val 100))");
    submit(Priority::Normal, 1, "(restrict (scan r03) (< val 100))");
    submit(Priority::High, 2, "(restrict (scan r04) (< val 100))");
    assert!(engine.run_batch());
    handle.quiesce();
    let order: Vec<u64> = replies.take().iter().map(|(_, r)| result(r).id).collect();
    assert_eq!(order, vec![2, 1, 0], "high drains first, low last");
}

#[test]
fn round_robin_interleaves_clients_within_a_class() {
    let db = small_db();
    let mut engine = Engine::new(db, test_config()).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let a = handle.register_client();
    let b = handle.register_client();
    // Client A floods three requests before B's arrive; collection must
    // still alternate queue fronts, not drain A first.
    for (c, ids) in [(a, [0u64, 1, 2]), (b, [10, 11, 12])] {
        for id in ids {
            handle.submit(
                c,
                id,
                Priority::Normal,
                false,
                format!("(restrict (scan r{:02}) (< val {}))", 2 + c, 100 + id),
                replies.reply_for(c),
            );
        }
    }
    assert!(engine.run_batch());
    handle.quiesce();
    let order: Vec<u64> = replies.take().iter().map(|(_, r)| result(r).id).collect();
    assert_eq!(order, vec![0, 10, 1, 11, 2, 12]);
}

#[test]
fn injected_fault_fails_exactly_that_query_with_structured_error() {
    quiet_worker_panics();
    let db = small_db();
    let mut config = test_config();
    // Panic the very first dispatched unit: the batch's first read dies,
    // the other keeps running.
    config.host.fault.panic_on_unit = Some(0);
    let page_size = config.host.page_size;
    let queries = [
        "(restrict (scan r02) (< val 400))",
        "(restrict (scan r03) (< val 700))",
    ];
    let oracles: Vec<_> = queries
        .iter()
        .map(|q| oracle_tuples(&db, q, page_size))
        .collect();

    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    for (i, text) in queries.iter().enumerate() {
        let c = handle.register_client();
        handle.submit(
            c,
            i as u64,
            Priority::Normal,
            false,
            text.to_string(),
            replies.reply_for(c),
        );
    }
    assert!(engine.run_batch());
    handle.quiesce();
    let got = replies.take();
    assert_eq!(got.len(), 2, "every client hears back");
    let mut failed = 0;
    for (_, response) in &got {
        match response {
            Response::Error {
                id,
                error: ServeError::Host { kind, detail },
            } => {
                failed += 1;
                assert_eq!(*kind, HostErrorKind::UnitPanicked);
                assert!(detail.contains("panicked"), "detail: {detail}");
                assert!(*id < 2);
            }
            Response::Result(r) => {
                let mut tuples = r.tuples.clone();
                tuples.sort();
                assert_eq!(
                    tuples, oracles[r.id as usize],
                    "survivor diverged from the oracle"
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(failed, 1, "exactly one query dies");
    assert_eq!(handle.stats().failed.load(Ordering::Relaxed), 1);
}

#[test]
fn parse_errors_answer_only_the_offender() {
    let db = small_db();
    let mut engine = Engine::new(db, test_config()).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let a = handle.register_client();
    let b = handle.register_client();
    handle.submit(
        a,
        0,
        Priority::Normal,
        false,
        "(restrict (scan r99) (< val 1))".to_string(),
        replies.reply_for(a),
    );
    handle.submit(
        b,
        1,
        Priority::Normal,
        false,
        "(scan r02)".to_string(),
        replies.reply_for(b),
    );
    assert!(engine.run_batch());
    handle.quiesce();
    let got = replies.take();
    assert_eq!(got.len(), 2);
    for (client, response) in got {
        if client == a {
            assert!(
                matches!(
                    response,
                    Response::Error {
                        id: 0,
                        error: ServeError::Parse { .. }
                    }
                ),
                "bad query gets a parse error, got {response:?}"
            );
        } else {
            assert_eq!(result(&response).fan_out, 1, "good query still runs");
        }
    }
}

#[test]
fn cross_batch_inflight_fusion_is_byte_identical() {
    let db = small_db();
    let mut config = test_config();
    let trace = Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY));
    config.trace = Some(Arc::clone(&trace));
    let hold = Arc::new(LaneHold::default());
    config.lane_hold = Some(Arc::clone(&hold));
    let page_size = config.host.page_size;
    let text = "(restrict (scan r04) (< val 800))";
    let want = oracle_tuples(&db, text, page_size);

    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let a = handle.register_client();
    let b = handle.register_client();

    // Batch 1: the read dispatches to a lane, which is parked by the
    // hold — the execution stays in flight.
    hold.hold();
    handle.submit(
        a,
        7,
        Priority::Normal,
        false,
        text.to_string(),
        replies.reply_for(a),
    );
    assert!(engine.run_batch());

    // Batch 2: the twin arrives while batch 1 executes; it must join the
    // in-flight execution instead of scheduling a second one.
    handle.submit(
        b,
        8,
        Priority::Normal,
        false,
        text.to_string(),
        replies.reply_for(b),
    );
    assert!(engine.run_batch());
    hold.release();
    handle.quiesce();

    let stats = handle.stats();
    assert_eq!(stats.reads.load(Ordering::Relaxed), 2);
    assert_eq!(stats.read_execs.load(Ordering::Relaxed), 1, "one execution");
    assert_eq!(stats.fused.load(Ordering::Relaxed), 0, "not same-batch");
    assert_eq!(stats.inflight_joins.load(Ordering::Relaxed), 1);
    // Conservation: every read is executed, fused, or joined — once.
    assert_eq!(
        stats.reads.load(Ordering::Relaxed),
        stats.read_execs.load(Ordering::Relaxed)
            + stats.fused.load(Ordering::Relaxed)
            + stats.inflight_joins.load(Ordering::Relaxed)
    );

    // Both the original admit and the late join are traced against the
    // same execution id.
    let admits: Vec<(u64, u64)> = trace
        .snapshot()
        .events
        .iter()
        .filter(|e| e.kind == EventKind::QueryAdmit)
        .map(|e| (e.a, e.b))
        .collect();
    assert_eq!(admits, vec![(1, 0), (1, 0)], "admit then join, same exec");

    // The late joiner's bytes equal the first waiter's and the oracle's,
    // and the fan-out covers both.
    let got = replies.take();
    assert_eq!(got.len(), 2);
    let first = result(&got[0].1);
    let second = result(&got[1].1);
    assert_eq!(first.fan_out, 2);
    assert_eq!(second.fan_out, 2);
    assert_eq!(first.tuples, second.tuples, "fan-out is byte-identical");
    let mut tuples = second.tuples.clone();
    tuples.sort();
    assert_eq!(tuples, want, "late joiner matches the oracle");
}

#[test]
fn plan_cache_hits_skip_parsing_and_writes_invalidate() {
    let db = small_db();
    let config = test_config();
    let page_size = config.host.page_size;
    let baseline = oracle_tuples(&db, "(scan r01)", page_size).len();

    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let c = handle.register_client();
    let read = "(scan r01)";
    let mut run_one = |text: &str| {
        handle.submit(
            c,
            0,
            Priority::Normal,
            false,
            text.to_string(),
            replies.reply_for(c),
        );
        assert!(engine.run_batch());
        handle.quiesce();
        replies.take()
    };

    // Cold read parses; an immediate repeat (with different whitespace)
    // hits the cache and does not parse again.
    run_one(read);
    run_one("  (scan\n r01)  ");
    let stats = handle.stats();
    assert_eq!(stats.plan_cache_hits.load(Ordering::Relaxed), 1);
    assert_eq!(stats.plan_cache_misses.load(Ordering::Relaxed), 1);
    assert_eq!(
        stats.parses.load(Ordering::Relaxed),
        stats.plan_cache_misses.load(Ordering::Relaxed),
        "exactly one parse per cache miss, never two"
    );

    // A write invalidates the cached plan; the next read re-plans
    // against the post-write catalog and sees the appended row.
    run_one("(append (restrict (scan r00) (= key 3)) r01)");
    let got = run_one(read);
    assert_eq!(result(&got[0].1).tuples.len(), baseline + 1);
    assert_eq!(
        stats.plan_cache_hits.load(Ordering::Relaxed),
        1,
        "post-write read is a miss: the cache was invalidated"
    );
    assert_eq!(stats.plan_cache_misses.load(Ordering::Relaxed), 3);
    assert_eq!(
        stats.parses.load(Ordering::Relaxed),
        stats.plan_cache_misses.load(Ordering::Relaxed)
    );
}

#[test]
fn multi_lane_execution_matches_sequential_oracle() {
    let queries: Vec<String> = (0..10)
        .map(|i| {
            format!(
                "(restrict (scan r{:02}) (< val {}))",
                2 + i % 5,
                300 + 50 * i
            )
        })
        .collect();
    let db = small_db();
    let page_size = test_config().host.page_size;
    let oracles: Vec<_> = queries
        .iter()
        .map(|q| oracle_tuples(&db, q, page_size))
        .collect();

    for lanes in [1, 2, 4] {
        let mut config = test_config();
        config.lanes = lanes;
        // Small batches force several concurrent lane tasks.
        config.batch_max = 3;
        let mut engine = Engine::new(small_db(), config).expect("engine");
        let handle = engine.handle();
        let replies = Replies::default();
        for (i, text) in queries.iter().enumerate() {
            let c = handle.register_client();
            handle.submit(
                c,
                i as u64,
                Priority::Normal,
                false,
                text.clone(),
                replies.reply_for(c),
            );
        }
        let mut batches = 0;
        while replies.0.lock().expect("replies lock").len() < queries.len() {
            assert!(engine.run_batch());
            batches += 1;
            assert!(
                batches <= queries.len(),
                "dispatcher stopped making progress"
            );
            handle.quiesce();
        }
        assert!(batches >= 4, "batch_max=3 splits ten requests");
        for (_, response) in replies.take() {
            let r = result(&response);
            let mut tuples = r.tuples.clone();
            tuples.sort();
            assert_eq!(
                tuples, oracles[r.id as usize],
                "lanes={lanes}: query {} diverged from the oracle",
                r.id
            );
        }
        // Per-lane counters cover every distinct execution.
        let stats = handle.stats();
        let lane_total: u64 = stats
            .lane_execs
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .sum();
        assert_eq!(stats.lane_execs.len(), lanes);
        assert_eq!(lane_total, stats.read_execs.load(Ordering::Relaxed));
    }
}

#[test]
fn priorities_drain_in_order_with_many_lanes() {
    let mut config = test_config();
    config.lanes = 4;
    let mut engine = Engine::new(small_db(), config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let priorities = [
        Priority::Low,
        Priority::High,
        Priority::Normal,
        Priority::High,
        Priority::Low,
        Priority::Normal,
    ];
    for (i, &priority) in priorities.iter().enumerate() {
        let c = handle.register_client();
        handle.submit(
            c,
            i as u64,
            priority,
            false,
            format!("(restrict (scan r{:02}) (< val 100))", 2 + i),
            replies.reply_for(c),
        );
    }
    // One batch → one compatible read group → one in-order fan-out, so
    // reply order equals collection order even with four lanes racing.
    assert!(engine.run_batch());
    handle.quiesce();
    let order: Vec<u64> = replies.take().iter().map(|(_, r)| result(r).id).collect();
    assert_eq!(order, vec![1, 3, 5, 2, 4, 0], "high, then normal, then low");
}

#[test]
fn socket_round_trip_with_concurrent_clients() {
    let db = small_db();
    let config = test_config();
    let page_size = config.host.page_size;
    let text = "(restrict (scan r05) (< val 500))";
    let want = oracle_tuples(&db, text, page_size);
    let engine = Engine::new(db, config).expect("engine");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::start(listener, engine).expect("server");
    let addr = server.local_addr();

    let results: Vec<Vec<Vec<u8>>> = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                s.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    match client.query(text, Priority::Normal, false).expect("query") {
                        Response::Result(r) => {
                            let mut tuples = r.tuples;
                            tuples.sort();
                            tuples
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for tuples in &results {
        assert_eq!(tuples, &want, "socket results match the oracle");
    }

    let mut control = ServeClient::connect(addr).expect("connect");
    assert!(matches!(
        control.request(&Request::Ping).expect("ping"),
        Response::Ok
    ));
    match control.request(&Request::Relations).expect("relations") {
        Response::Relations(rows) => assert_eq!(rows.len(), 15),
        other => panic!("unexpected {other:?}"),
    }
    match control.request(&Request::Stats).expect("stats") {
        Response::Stats(rows) => {
            let get = |k: &str| {
                rows.iter()
                    .find(|(name, _)| name == k)
                    .map(|(_, v)| *v)
                    .expect("counter present")
            };
            assert_eq!(get("submitted"), 4);
            assert!(get("bytes_in") > 0 && get("bytes_out") > 0);
            // The new counters ride the same open key-value stats frame.
            assert_eq!(get("lanes"), 2);
            assert_eq!(get("reads"), 4);
            assert_eq!(
                get("reads"),
                get("read_execs") + get("fused") + get("inflight_joins"),
                "read conservation identity over the wire"
            );
            assert_eq!(get("parses"), get("plan_cache_misses"));
        }
        other => panic!("unexpected {other:?}"),
    }

    // Clean shutdown: Ok now, ShuttingDown for late queries, and both
    // service threads exit.
    assert!(matches!(
        control.request(&Request::Shutdown).expect("shutdown"),
        Response::Ok
    ));
    match control
        .query("(scan r02)", Priority::Normal, false)
        .expect("late query")
    {
        Response::Error {
            error: ServeError::ShuttingDown,
            ..
        } => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    server.join();
}

#[test]
fn closed_client_queue_is_dropped() {
    let db = small_db();
    let mut engine = Engine::new(db, test_config()).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let a = handle.register_client();
    let b = handle.register_client();
    handle.submit(
        a,
        0,
        Priority::Normal,
        false,
        "(scan r02)".to_string(),
        replies.reply_for(a),
    );
    handle.submit(
        b,
        1,
        Priority::Normal,
        false,
        "(scan r03)".to_string(),
        replies.reply_for(b),
    );
    handle.close_client(a);
    assert!(engine.run_batch());
    handle.quiesce();
    let got = replies.take();
    // Only the live client's query ran; the disconnected one's queued
    // request was discarded, and new submissions bounce.
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, b);
    handle.submit(
        a,
        2,
        Priority::Normal,
        false,
        "(scan r02)".to_string(),
        replies.reply_for(a),
    );
    assert!(matches!(
        replies.take()[0].1,
        Response::Error {
            error: ServeError::ShuttingDown,
            ..
        }
    ));
}

#[test]
fn relation_scoped_invalidation_spares_unrelated_plans() {
    let db = small_db();
    let config = test_config();
    let page_size = config.host.page_size;
    let r01_baseline = oracle_tuples(&db, "(scan r01)", page_size).len();

    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let c = handle.register_client();
    let mut run_one = |text: &str| {
        handle.submit(
            c,
            0,
            Priority::Normal,
            false,
            text.to_string(),
            replies.reply_for(c),
        );
        assert!(engine.run_batch());
        handle.quiesce();
        replies.take()
    };
    let stats = handle.stats();
    let misses = || stats.plan_cache_misses.load(Ordering::Relaxed);
    let hits = || stats.plan_cache_hits.load(Ordering::Relaxed);
    let evicted = || stats.cache_evictions_partial.load(Ordering::Relaxed);

    let join = "(join (scan r00) (scan r02) (= key key))";
    run_one("(scan r01)");
    run_one("(scan r02)");
    run_one(join);
    assert_eq!((misses(), hits()), (3, 0), "three cold plans");

    // A write to r01 evicts exactly the plans whose read-set includes
    // r01: the r01 scan and the write plan itself (an append's read-set
    // includes its target).
    run_one("(append (restrict (scan r00) (= key 0)) r01)");
    assert_eq!(misses(), 4, "the write itself parses once");
    assert_eq!(evicted(), 2, "r01 scan + the write plan");

    // Differential: plans reading only r02 (and the r00⋈r02 join)
    // survive the r01 write...
    run_one("(scan r02)");
    run_one(join);
    assert_eq!(hits(), 2, "unrelated plans stayed cached");
    // ...while the r01 reader re-plans against the post-write catalog.
    let got = run_one("(scan r01)");
    assert_eq!(result(&got[0].1).tuples.len(), r01_baseline + 1);
    assert_eq!(misses(), 5, "the evicted r01 plan re-parses");

    // A write to a join *input* (r02) evicts plans over either side of
    // the join: the r02 scan and the join itself.
    run_one("(append (restrict (scan r00) (= key 1)) r02)");
    assert_eq!(
        evicted(),
        5,
        "r02 scan + the join over it + the write plan itself"
    );
    run_one("(scan r01)");
    assert_eq!(hits(), 3, "the r01 plan survives the r02 write");
    run_one("(scan r02)");
    run_one(join);
    assert_eq!(misses(), 8, "both r02 readers re-parse");

    // The per-relation invariant holds throughout.
    assert_eq!(stats.parses.load(Ordering::Relaxed), misses());
}

#[test]
fn disjoint_writes_overlap_and_match_sequential_oracle() {
    // Five clients append to five distinct targets (r10..r14) from a
    // shared read source; the per-relation gate lets them all overlap.
    let writers = 5usize;
    let per_writer = 3usize;
    let write_text = |w: usize, i: usize| {
        format!(
            "(append (restrict (scan r00) (= key {})) r{})",
            w * per_writer + i,
            10 + w
        )
    };

    // Sequential oracle: the same writes applied one at a time.
    let mut oracle_db = small_db();
    for i in 0..per_writer {
        for w in 0..writers {
            let tree = parse_query(&oracle_db, &write_text(w, i)).expect("oracle parse");
            df_query::execute(&mut oracle_db, &tree, &ExecParams::default()).expect("oracle write");
        }
    }

    for lanes in [1usize, 2, 4] {
        let mut config = test_config();
        config.lanes = lanes;
        let hold = Arc::new(LaneHold::default());
        config.lane_hold = Some(Arc::clone(&hold));
        let page_size = config.host.page_size;
        let mut engine = Engine::new(small_db(), config).expect("engine");
        let handle = engine.handle();
        let replies = Replies::default();
        let clients: Vec<usize> = (0..writers).map(|_| handle.register_client()).collect();

        // Round 0 rides a lane hold: all five disjoint writes are
        // dispatched while the previous ones are still parked in flight,
        // so the overlap counter fires deterministically. (Only one
        // write per target — a second write to a *held* target would
        // rightly block the dispatcher at the gate.)
        hold.hold();
        for (w, &c) in clients.iter().enumerate() {
            handle.submit(
                c,
                (w * 100) as u64,
                Priority::Normal,
                false,
                write_text(w, 0),
                replies.reply_for(c),
            );
        }
        while handle.stats().executed.load(Ordering::Relaxed) < writers as u64 {
            assert!(engine.run_batch());
        }
        hold.release();
        handle.quiesce();
        assert_eq!(
            handle
                .stats()
                .concurrent_write_batches
                .load(Ordering::Relaxed),
            writers as u64 - 1,
            "lanes={lanes}: every round-0 write after the first was \
             dispatched while its predecessors were in flight"
        );

        // Remaining rounds run free: writes to the same target serialize
        // through the gate, disjoint targets keep overlapping.
        for i in 1..per_writer {
            for (w, &c) in clients.iter().enumerate() {
                handle.submit(
                    c,
                    (w * 100 + i) as u64,
                    Priority::Normal,
                    false,
                    write_text(w, i),
                    replies.reply_for(c),
                );
            }
        }
        let total = (writers * per_writer) as u64;
        while handle.stats().executed.load(Ordering::Relaxed) < total {
            assert!(engine.run_batch());
        }
        handle.quiesce();

        let stats = handle.stats();
        assert_eq!(stats.writes_applied.load(Ordering::Relaxed), total);
        assert!(
            stats.concurrent_write_batches.load(Ordering::Relaxed) > 0,
            "lanes={lanes}: disjoint writes were dispatched while others \
             were still in flight"
        );
        assert_eq!(replies.take().len(), writers * per_writer);

        // Byte-identity with the sequential oracle, per target relation.
        for w in 0..writers {
            let target = format!("(scan r{})", 10 + w);
            let want = oracle_tuples(&oracle_db, &target, page_size);
            let c = handle.register_client();
            handle.submit(
                c,
                999,
                Priority::Normal,
                false,
                target.clone(),
                replies.reply_for(c),
            );
            assert!(engine.run_batch());
            handle.quiesce();
            let got = replies.take();
            let mut tuples = result(&got[0].1).tuples.clone();
            tuples.sort();
            assert_eq!(tuples, want, "lanes={lanes}: {target} diverged");
        }
    }
}

#[test]
fn lane_panic_is_contained_to_its_task() {
    quiet_worker_panics();
    let mut config = test_config();
    // Panic the serve lane itself (not a host worker) on lane task 0.
    config.host.fault.lane_panic_task = Some(0);
    let db = small_db();
    let page_size = config.host.page_size;
    let survivor = "(restrict (scan r03) (< val 500))";
    let want = oracle_tuples(&db, survivor, page_size);

    let mut engine = Engine::new(db, config).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let a = handle.register_client();
    let b = handle.register_client();

    // Task 0: this read dies inside the lane.
    handle.submit(
        a,
        0,
        Priority::Normal,
        false,
        "(restrict (scan r02) (< val 400))".to_string(),
        replies.reply_for(a),
    );
    assert!(engine.run_batch());
    handle.quiesce();
    let got = replies.take();
    assert_eq!(got.len(), 1, "the victim still hears back");
    match &got[0].1 {
        Response::Error {
            error: ServeError::Host { kind, detail },
            ..
        } => {
            assert_eq!(*kind, HostErrorKind::UnitPanicked);
            assert!(detail.contains("serve lane"), "detail: {detail}");
        }
        other => panic!("expected a contained lane panic, got {other:?}"),
    }
    assert_eq!(handle.stats().failed.load(Ordering::Relaxed), 1);

    // The gate marks and the lane were recovered: a read of the same
    // relation, a different read, and a write all still work.
    for text in [
        "(restrict (scan r02) (< val 400))",
        survivor,
        "(append (restrict (scan r00) (= key 0)) r01)",
    ] {
        handle.submit(
            b,
            1,
            Priority::Normal,
            false,
            text.to_string(),
            replies.reply_for(b),
        );
        assert!(engine.run_batch());
        handle.quiesce();
    }
    let got = replies.take();
    assert_eq!(got.len(), 3, "the server keeps serving after the panic");
    let mut tuples = result(&got[1].1).tuples.clone();
    tuples.sort();
    assert_eq!(tuples, want, "survivor is oracle-identical");
    assert_eq!(handle.stats().writes_applied.load(Ordering::Relaxed), 1);
}

#[test]
fn shutdown_with_zero_clients_does_not_hang() {
    // The old implementation woke the acceptor by connecting to itself —
    // racy with real clients and dependent on the connect succeeding.
    // Shutting the listening socket down must work with nobody
    // connected at all.
    let engine = Engine::new(small_db(), test_config()).expect("engine");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::start(listener, engine).expect("server");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        server.join();
        tx.send(()).expect("send");
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("shutdown with zero clients completed");
}

#[test]
fn standing_views_stay_byte_identical_under_writes() {
    // The IVM differential contract, end to end through the engine: after
    // every write batch, a maintained view must be byte-identical to
    // re-running its defining query from scratch against the current
    // catalog — at every lane count.
    let views = [
        ("vjoin", "(join (scan r00) (scan r01) (= key key))"),
        ("vset", "(union (scan r02) (scan r03))"),
    ];
    for lanes in [1usize, 2, 4] {
        let mut config = test_config();
        config.lanes = lanes;
        let mut engine = Engine::new(small_db(), config).expect("engine");
        let handle = engine.handle();
        let replies = Replies::default();
        let c = handle.register_client();
        for (name, text) in views {
            handle.install_view(
                c,
                0,
                name.to_string(),
                text.to_string(),
                replies.reply_for(c),
            );
        }
        assert!(engine.run_batch());
        handle.quiesce();
        let got = replies.take();
        assert_eq!(got.len(), 2);
        for (_, response) in &got {
            assert!(
                !result(response).schema.is_empty(),
                "install acks with the view schema"
            );
        }
        assert_eq!(handle.stats().views_installed.load(Ordering::Relaxed), 2);

        // Write batches touching every base relation: appends (inserts,
        // duplicate-heavy keys) and deletes, interleaved.
        let writes = [
            "(append (restrict (scan r00) (< key 4)) r01)",
            "(append (restrict (scan r00) (< key 6)) r02)",
            "(delete r03 (< key 8))",
            "(append (restrict (scan r00) (= key 2)) r01)",
            "(delete r01 (= key 2))",
            "(append (restrict (scan r00) (< key 3)) r03)",
        ];
        for (i, text) in writes.iter().enumerate() {
            handle.submit(
                c,
                i as u64,
                Priority::Normal,
                false,
                text.to_string(),
                replies.reply_for(c),
            );
            assert!(engine.run_batch());
            handle.quiesce();
            replies.take();

            for (name, text) in views {
                handle.read_view(c, 100, name.to_string(), replies.reply_for(c));
                handle.submit(
                    c,
                    200,
                    Priority::Normal,
                    false,
                    text.to_string(),
                    replies.reply_for(c),
                );
                assert!(engine.run_batch());
                handle.quiesce();
                let got = replies.take();
                assert_eq!(got.len(), 2);
                let by_id = |id: u64| {
                    got.iter()
                        .map(|(_, r)| result(r))
                        .find(|r| r.id == id)
                        .expect("reply present")
                };
                let maintained = by_id(100).tuples.clone();
                let mut fresh = by_id(200).tuples.clone();
                fresh.sort();
                assert_eq!(
                    maintained, fresh,
                    "lanes={lanes}: view {name} diverged after write {i}"
                );
            }
        }

        let stats = handle.stats();
        assert!(
            stats.delta_pages.load(Ordering::Relaxed) > 0,
            "lanes={lanes}: maintenance moved delta pages"
        );
        assert_eq!(
            stats.view_reads_served.load(Ordering::Relaxed),
            (writes.len() * views.len()) as u64
        );
        // View traffic must not disturb the query-path conservation
        // identities: every read is executed, fused, or joined — view
        // reads are none of those — and parsing stays a statement about
        // query traffic only.
        assert_eq!(
            stats.reads.load(Ordering::Relaxed),
            stats.read_execs.load(Ordering::Relaxed)
                + stats.fused.load(Ordering::Relaxed)
                + stats.inflight_joins.load(Ordering::Relaxed)
        );
        assert_eq!(
            stats.parses.load(Ordering::Relaxed),
            stats.plan_cache_misses.load(Ordering::Relaxed)
        );

        // Drop both views; reads now answer "not installed".
        for (name, _) in views {
            handle.drop_view(c, 300, name.to_string(), replies.reply_for(c));
        }
        assert!(engine.run_batch());
        handle.quiesce();
        assert_eq!(replies.take().len(), 2);
        handle.read_view(c, 301, "vjoin".to_string(), replies.reply_for(c));
        assert!(engine.run_batch());
        handle.quiesce();
        let got = replies.take();
        assert!(
            matches!(
                &got[0].1,
                Response::Error {
                    error: ServeError::View { .. },
                    ..
                }
            ),
            "read of a dropped view fails, got {:?}",
            got[0].1
        );
    }
}

#[test]
fn view_install_rejects_duplicates_updates_and_bad_queries() {
    let mut engine = Engine::new(small_db(), test_config()).expect("engine");
    let handle = engine.handle();
    let replies = Replies::default();
    let c = handle.register_client();
    let view_error = |response: &Response| -> String {
        match response {
            Response::Error {
                error: ServeError::View { detail },
                ..
            } => detail.clone(),
            other => panic!("expected a view error, got {other:?}"),
        }
    };

    handle.install_view(
        c,
        0,
        "v".to_string(),
        "(scan r02)".to_string(),
        replies.reply_for(c),
    );
    // Same batch: the duplicate is refused at dispatch, before the first
    // install even materializes.
    handle.install_view(
        c,
        1,
        "v".to_string(),
        "(scan r03)".to_string(),
        replies.reply_for(c),
    );
    // A view definition must be read-only.
    handle.install_view(
        c,
        2,
        "w".to_string(),
        "(append (scan r00) r01)".to_string(),
        replies.reply_for(c),
    );
    // Unknown relations are a parse error, not a view error.
    handle.install_view(
        c,
        3,
        "x".to_string(),
        "(scan r99)".to_string(),
        replies.reply_for(c),
    );
    // Dropping / reading names never installed.
    handle.drop_view(c, 4, "nope".to_string(), replies.reply_for(c));
    handle.read_view(c, 5, "nope".to_string(), replies.reply_for(c));
    assert!(engine.run_batch());
    handle.quiesce();

    let got = replies.take();
    assert_eq!(got.len(), 6);
    for (_, response) in &got {
        match response {
            Response::Result(r) => assert_eq!(r.id, 0, "only the first install succeeds"),
            Response::Error { id: 1, error, .. } => {
                assert!(error.to_string().contains("already installed"), "{error}");
            }
            Response::Error { id: 2, .. } => {
                assert!(view_error(response).contains("read-only"));
            }
            Response::Error { id: 3, error, .. } => {
                assert!(matches!(error, ServeError::Parse { .. }), "{error}");
            }
            Response::Error { id: 4 | 5, .. } => {
                assert!(view_error(response).contains("not installed"));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(handle.stats().views_installed.load(Ordering::Relaxed), 1);
    // Failed installs retracted their name: `x` is installable now.
    handle.install_view(
        c,
        6,
        "x".to_string(),
        "(scan r03)".to_string(),
        replies.reply_for(c),
    );
    assert!(engine.run_batch());
    handle.quiesce();
    let got = replies.take();
    assert_eq!(result(&got[0].1).id, 6, "name freed after a failed install");
}

#[test]
fn socket_view_round_trip_maintains_across_writes() {
    let db = small_db();
    let config = test_config();
    let engine = Engine::new(db, config).expect("engine");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::start(listener, engine).expect("server");
    let addr = server.local_addr();
    let text = "(join (scan r00) (scan r01) (= key key))";

    let mut client = ServeClient::connect(addr).expect("connect");
    match client.install_view("v", text).expect("install") {
        Response::Result(r) => assert!(!r.schema.is_empty()),
        other => panic!("install failed: {other:?}"),
    }
    for key in 0..4 {
        let write = format!("(append (restrict (scan r00) (= key {key})) r01)");
        match client
            .query(&write, Priority::Normal, false)
            .expect("write")
        {
            Response::Result(_) => {}
            other => panic!("write failed: {other:?}"),
        }
    }
    let maintained = match client.read_view("v").expect("read view") {
        Response::Result(r) => r.tuples,
        other => panic!("read failed: {other:?}"),
    };
    let mut fresh = match client.query(text, Priority::Normal, false).expect("query") {
        Response::Result(r) => r.tuples,
        other => panic!("query failed: {other:?}"),
    };
    fresh.sort();
    assert_eq!(maintained, fresh, "socket view read matches fresh run");

    match client.request(&Request::Stats).expect("stats") {
        Response::Stats(rows) => {
            let get = |k: &str| {
                rows.iter()
                    .find(|(name, _)| name == k)
                    .map(|(_, v)| *v)
                    .expect("counter present")
            };
            assert_eq!(get("views_installed"), 1);
            assert!(get("delta_pages") > 0);
            assert_eq!(get("view_reads_served"), 1);
        }
        other => panic!("unexpected {other:?}"),
    }
    match client.drop_view("v").expect("drop") {
        Response::Result(_) => {}
        other => panic!("drop failed: {other:?}"),
    }
    assert!(matches!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::Ok
    ));
    server.join();
}

#[test]
fn mux_mode_serves_many_clients_from_one_reader() {
    let db = small_db();
    let config = test_config();
    let page_size = config.host.page_size;
    let text = "(restrict (scan r06) (< val 500))";
    let want = oracle_tuples(&db, text, page_size);
    let engine = Engine::new(db, config).expect("engine");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::start_with(listener, engine, ServerOptions { mux: true }).expect("server");
    let addr = server.local_addr();

    // Eight concurrent clients, one poll-based reader thread.
    let results: Vec<Vec<Vec<u8>>> = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    match client.query(text, Priority::Normal, false).expect("query") {
                        Response::Result(r) => {
                            let mut tuples = r.tuples;
                            tuples.sort();
                            tuples
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for tuples in &results {
        assert_eq!(tuples, &want, "mux results match the oracle");
    }

    let mut control = ServeClient::connect(addr).expect("connect");
    match control.request(&Request::Stats).expect("stats") {
        Response::Stats(rows) => {
            let get = |k: &str| {
                rows.iter()
                    .find(|(name, _)| name == k)
                    .map(|(_, v)| *v)
                    .expect("counter present")
            };
            assert!(get("mux_clients") >= 9, "all clients went through the mux");
            assert_eq!(get("submitted"), 8);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(matches!(
        control.request(&Request::Shutdown).expect("shutdown"),
        Response::Ok
    ));
    match control
        .query("(scan r02)", Priority::Normal, false)
        .expect("late query")
    {
        Response::Error {
            error: ServeError::ShuttingDown,
            ..
        } => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    server.join();
}

//! Deterministic fault injection for the host executor.
//!
//! The stream-processing literature treats worker loss and reassignment as
//! the baseline operating condition, not an abort; a fault-tolerance claim
//! is only as good as the harness that exercises it. A [`FaultPlan`] lets
//! tests (and `host_run --fault-*`) inject three failure modes on demand,
//! all derived deterministically from the plan and each unit's global
//! dispatch sequence number:
//!
//! * **kernel panics** — a chosen unit (`panic_on_unit`) or a seeded
//!   fraction of all units (`panic_rate` drawn from `seed`) panics inside
//!   the kernel; the executor must contain it to the owning query;
//! * **delays** — every `delay_every`-th unit sleeps for `delay` before
//!   running, stressing interleavings and the stall detector;
//! * **dead workers** — the listed worker threads exit before receiving
//!   any work, simulating an IP that never comes up; the scheduler must
//!   shrink the pool and requeue anything routed to them.

use std::time::Duration;

/// What the scheduler injects into one dispatched work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InjectedFault {
    /// The kernel panics instead of running.
    Panic,
    /// The kernel sleeps this long before running.
    Delay(Duration),
}

/// A deterministic fault-injection plan. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Panic the kernel of the unit with this global dispatch sequence
    /// number (units are numbered from 0 in dispatch order).
    pub panic_on_unit: Option<u64>,
    /// Panic each unit's kernel with this probability (0.0 disables). The
    /// draw is a pure function of `seed` and the unit's sequence number,
    /// so a given plan faults the same unit numbers on every run.
    pub panic_rate: f64,
    /// Seed for the `panic_rate` draws.
    pub seed: u64,
    /// Delay the kernel of every `delay_every`-th unit (sequence numbers
    /// divisible by it) by [`FaultPlan::delay`].
    pub delay_every: Option<u64>,
    /// The injected delay duration.
    pub delay: Duration,
    /// Worker ids that die before receiving any work.
    pub dead_workers: Vec<usize>,
    /// Panic the **serve lane** (df-serve's batch-caller thread, one layer
    /// above this executor) before it runs the lane task with this
    /// sequence number (lane tasks are numbered from 0 in dispatch
    /// order). Ignored by the host executor itself; df-serve uses it to
    /// prove a lane panic is contained to the affected queries.
    pub lane_panic_task: Option<u64>,
}

#[allow(clippy::derivable_impls)] // an explicit Default documents "no faults"
impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            panic_on_unit: None,
            panic_rate: 0.0,
            seed: 0,
            delay_every: None,
            delay: Duration::ZERO,
            dead_workers: Vec::new(),
            lane_panic_task: None,
        }
    }
}

impl FaultPlan {
    /// True when the plan injects at least one fault kind.
    pub fn is_active(&self) -> bool {
        self.panic_on_unit.is_some()
            || self.panic_rate > 0.0
            || self.delay_every.is_some()
            || !self.dead_workers.is_empty()
            || self.lane_panic_task.is_some()
    }

    /// The fault (if any) injected into the unit with dispatch sequence
    /// number `seq`. Panics take precedence over delays.
    pub(crate) fn fault_for(&self, seq: u64) -> Option<InjectedFault> {
        if self.panic_on_unit == Some(seq) {
            return Some(InjectedFault::Panic);
        }
        if self.panic_rate > 0.0 && unit_draw(self.seed, seq) < self.panic_rate {
            return Some(InjectedFault::Panic);
        }
        if let Some(n) = self.delay_every {
            if seq % n == 0 {
                return Some(InjectedFault::Delay(self.delay));
            }
        }
        None
    }

    /// True when worker `id` is planned to die at start.
    pub(crate) fn worker_dead_at_start(&self, id: usize) -> bool {
        self.dead_workers.contains(&id)
    }
}

/// A uniform draw in `[0, 1)` that depends only on `(seed, seq)` — a
/// splitmix64 finalizer, the same mixer `df-sim`'s RNG builds on.
fn unit_draw(seed: u64, seq: u64) -> f64 {
    let mut z = seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        for seq in 0..1000 {
            assert_eq!(p.fault_for(seq), None);
        }
        assert!(!p.worker_dead_at_start(0));
    }

    #[test]
    fn targeted_panic_hits_exactly_one_unit() {
        let p = FaultPlan {
            panic_on_unit: Some(7),
            ..FaultPlan::default()
        };
        assert!(p.is_active());
        let hits: Vec<u64> = (0..100)
            .filter(|&s| p.fault_for(s) == Some(InjectedFault::Panic))
            .collect();
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn seeded_rate_is_deterministic_and_roughly_calibrated() {
        let p = FaultPlan {
            panic_rate: 0.25,
            seed: 42,
            ..FaultPlan::default()
        };
        let hits = |plan: &FaultPlan| -> Vec<u64> {
            (0..4000)
                .filter(|&s| plan.fault_for(s) == Some(InjectedFault::Panic))
                .collect()
        };
        let first = hits(&p);
        assert_eq!(first, hits(&p), "same plan, same faults");
        let frac = first.len() as f64 / 4000.0;
        assert!((0.2..0.3).contains(&frac), "rate 0.25 drew {frac}");
        let other = FaultPlan { seed: 43, ..p };
        assert_ne!(first, hits(&other), "different seed, different faults");
    }

    #[test]
    fn delays_hit_every_nth_unit_and_lose_to_panics() {
        let p = FaultPlan {
            panic_on_unit: Some(4),
            delay_every: Some(2),
            delay: Duration::from_millis(5),
            ..FaultPlan::default()
        };
        assert_eq!(
            p.fault_for(2),
            Some(InjectedFault::Delay(Duration::from_millis(5)))
        );
        assert_eq!(p.fault_for(3), None);
        assert_eq!(p.fault_for(4), Some(InjectedFault::Panic));
    }

    #[test]
    fn dead_worker_lookup() {
        let p = FaultPlan {
            dead_workers: vec![0, 2],
            ..FaultPlan::default()
        };
        assert!(p.worker_dead_at_start(0));
        assert!(!p.worker_dead_at_start(1));
        assert!(p.worker_dead_at_start(2));
    }
}

//! Host-executor configuration.

use df_core::{AllocationStrategy, JoinAlgo};

/// Configuration of the real-threads executor.
#[derive(Debug, Clone)]
pub struct HostParams {
    /// Number of worker threads playing the IPs (≥ 1).
    pub workers: usize,
    /// Page size (bytes, header included) for intermediate and result
    /// pages. Cells whose output tuples do not fit (deep join chains widen
    /// tuples) grow their own page size to hold at least one tuple.
    pub page_size: usize,
    /// Which instruction's ready work a freed worker picks up — the same
    /// four policies the simulated machines use.
    pub strategy: AllocationStrategy,
    /// Join algorithm for pair-sweep cells. Under [`JoinAlgo::Hash`] each
    /// operand page carries a lazily built raw-byte key index
    /// ([`df_relalg::PageKeyIndex`]), so an equi-join pair unit probes in
    /// O(outer + inner) instead of sweeping outer × inner. The index is
    /// built once per page by whichever worker first needs it and shared
    /// via `Arc` thereafter. Non-equi θ-joins silently fall back to the
    /// nested-loops sweep; results are multiset-identical either way.
    pub join: JoinAlgo,
    /// Capacity of the result channel (the "arbitration network" carrying
    /// completions back to the scheduler). Workers block producing past it,
    /// which bounds memory for pathological fan-outs.
    pub completion_capacity: usize,
    /// When set, every query's result relation is canonicalized (tuple
    /// images sorted lexicographically, pages repacked full) so repeated
    /// runs are byte-identical regardless of thread interleaving. The
    /// executor has no RNG: interleaving is its only nondeterminism, and it
    /// only affects result *order*, never the result multiset.
    pub deterministic: bool,
}

impl Default for HostParams {
    fn default() -> HostParams {
        HostParams {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            page_size: 1016,
            strategy: AllocationStrategy::default(),
            join: JoinAlgo::default(),
            completion_capacity: 256,
            deterministic: false,
        }
    }
}

impl HostParams {
    /// Default parameters with an explicit worker count.
    pub fn with_workers(workers: usize) -> HostParams {
        HostParams {
            workers,
            ..HostParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = HostParams::default();
        assert!(p.workers >= 1);
        assert!(p.page_size >= 116); // header + one 100-byte tuple
        assert!(p.completion_capacity >= 1);
        assert_eq!(p.join, JoinAlgo::Nested);
        assert_eq!(HostParams::with_workers(3).workers, 3);
    }
}

//! Host-executor configuration.

use std::sync::Arc;
use std::time::Duration;

use df_core::{AllocationStrategy, JoinAlgo, TransferMode};
use df_obs::Tracer;

use crate::error::{HostError, HostResult};
use crate::fault::FaultPlan;

/// Configuration of the real-threads executor.
#[derive(Debug, Clone)]
pub struct HostParams {
    /// Number of worker threads playing the IPs (≥ 1).
    pub workers: usize,
    /// Page size (bytes, header included) for intermediate and result
    /// pages. Cells whose output tuples do not fit (deep join chains widen
    /// tuples) grow their own page size to hold at least one tuple.
    pub page_size: usize,
    /// Which instruction's ready work a freed worker picks up — the same
    /// four policies the simulated machines use.
    pub strategy: AllocationStrategy,
    /// Join algorithm for pair-sweep cells. Under [`JoinAlgo::Hash`] each
    /// operand page carries a lazily built raw-byte key index
    /// ([`df_relalg::PageKeyIndex`]), so an equi-join pair unit probes in
    /// O(outer + inner) instead of sweeping outer × inner. The index is
    /// built once per page by whichever worker first needs it and shared
    /// via `Arc` thereafter. Non-equi θ-joins silently fall back to the
    /// nested-loops sweep; results are multiset-identical either way.
    pub join: JoinAlgo,
    /// How chained unary operators exchange results. Under
    /// [`TransferMode::Materialize`] (the paper's design) every
    /// restrict/project cell packs its survivors into its own output pages
    /// and ships them to the parent cell. Under [`TransferMode::Pipeline`]
    /// the planner fuses maximal restrict→project chains into a single
    /// span cell: one work unit evaluates the whole chain per operand page
    /// and only the final survivors are paged, so the intermediate pages
    /// (and their distribution/arbitration bytes) never exist. Results are
    /// byte-identical either way.
    pub transfer: TransferMode,
    /// Capacity of the result channel (the "arbitration network" carrying
    /// completions back to the scheduler). Workers block producing past it,
    /// which bounds memory for pathological fan-outs. Must be ≥ 1.
    pub completion_capacity: usize,
    /// When set, every query's result relation is canonicalized (tuple
    /// images sorted lexicographically, pages repacked full) so repeated
    /// runs are byte-identical regardless of thread interleaving. The
    /// executor has no RNG: interleaving is its only nondeterminism, and it
    /// only affects result *order*, never the result multiset.
    pub deterministic: bool,
    /// How long the scheduler waits for a completion while units are in
    /// flight before declaring the run stalled ([`HostError::Stalled`])
    /// instead of hanging on a wedged kernel. Must comfortably exceed the
    /// worst-case single-unit kernel time; the generous default only
    /// trips on genuine wedges.
    pub stall_timeout: Duration,
    /// Deterministic fault injection (inert by default) — see
    /// [`FaultPlan`].
    pub fault: FaultPlan,
    /// Structured event tracer (see [`df_obs::Tracer`]). `None` — the
    /// default — costs one branch per would-be event; an installed tracer
    /// records the packet-level lifecycle (cell fires, dispatches, kernel
    /// spans, page-transfer bytes, queue depths, faults) shared by the
    /// scheduler and every worker thread.
    pub trace: Option<Arc<Tracer>>,
}

impl Default for HostParams {
    fn default() -> HostParams {
        HostParams {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            page_size: 1016,
            strategy: AllocationStrategy::default(),
            join: JoinAlgo::default(),
            transfer: TransferMode::default(),
            completion_capacity: 256,
            deterministic: false,
            stall_timeout: Duration::from_secs(60),
            fault: FaultPlan::default(),
            trace: None,
        }
    }
}

impl HostParams {
    /// Default parameters with an explicit worker count.
    pub fn with_workers(workers: usize) -> HostParams {
        HostParams {
            workers,
            ..HostParams::default()
        }
    }

    /// Validate the configuration up front, so misconfiguration surfaces
    /// as a structured [`HostError::InvalidParams`] before any thread is
    /// spawned — never as a panic deep inside the scheduler.
    ///
    /// # Errors
    /// Returns [`HostError::InvalidParams`] on zero workers, a zero
    /// completion-channel capacity, a zero stall timeout, or an
    /// out-of-range fault plan (`panic_rate` outside `[0, 1]`,
    /// `delay_every == 0`, a dead-worker id ≥ `workers`).
    pub fn validate(&self) -> HostResult<()> {
        let invalid = |detail: String| Err(HostError::InvalidParams { detail });
        if self.workers == 0 {
            return invalid("`workers` must be >= 1".into());
        }
        if self.completion_capacity == 0 {
            return invalid("`completion_capacity` must be >= 1".into());
        }
        if self.stall_timeout.is_zero() {
            return invalid("`stall_timeout` must be nonzero".into());
        }
        if !(0.0..=1.0).contains(&self.fault.panic_rate) {
            return invalid(format!(
                "`fault.panic_rate` must be in [0, 1], got {}",
                self.fault.panic_rate
            ));
        }
        if self.fault.delay_every == Some(0) {
            return invalid("`fault.delay_every` must be >= 1".into());
        }
        if let Some(&w) = self.fault.dead_workers.iter().find(|&&w| w >= self.workers) {
            return invalid(format!(
                "`fault.dead_workers` names worker {w}, but only {} exist",
                self.workers
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = HostParams::default();
        assert!(p.workers >= 1);
        assert!(p.page_size >= 116); // header + one 100-byte tuple
        assert!(p.completion_capacity >= 1);
        assert_eq!(p.join, JoinAlgo::Nested);
        assert_eq!(p.transfer, TransferMode::Materialize);
        assert!(!p.fault.is_active());
        assert!(p.validate().is_ok());
        assert_eq!(HostParams::with_workers(3).workers, 3);
    }

    #[test]
    fn zero_workers_is_rejected_up_front() {
        let err = HostParams::with_workers(0).validate().unwrap_err();
        assert!(matches!(err, HostError::InvalidParams { .. }));
        assert!(err.to_string().contains("workers"));
    }

    #[test]
    fn bad_fault_plans_are_rejected() {
        let mut p = HostParams::with_workers(2);
        p.fault.panic_rate = 1.5;
        assert!(p.validate().is_err());

        let mut p = HostParams::with_workers(2);
        p.fault.delay_every = Some(0);
        assert!(p.validate().is_err());

        let mut p = HostParams::with_workers(2);
        p.fault.dead_workers = vec![2];
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("worker 2"));

        // Killing every *existing* worker is a legal plan (the all-dead
        // containment tests rely on it).
        let mut p = HostParams::with_workers(2);
        p.fault.dead_workers = vec![0, 1];
        assert!(p.validate().is_ok());
    }

    #[test]
    fn zero_capacity_and_timeout_are_rejected() {
        let mut p = HostParams::with_workers(1);
        p.completion_capacity = 0;
        assert!(p.validate().is_err());
        let mut p = HostParams::with_workers(1);
        p.stall_timeout = Duration::ZERO;
        assert!(p.validate().is_err());
    }
}

//! Host-executor metrics: real (wall-clock) time, not simulated time.

use std::time::Duration;

/// What one worker thread did over the run.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Work units executed, panicked ones included.
    pub units: usize,
    /// Logical kernel spans executed. Equal to `units` in materialize
    /// mode; in pipeline mode a fused span unit contributes one span per
    /// chained operator, so this stays comparable across transfer modes
    /// (and equals the worker's traced `KernelStart`/`KernelEnd` count).
    pub kernel_spans: usize,
    /// Work units whose kernel panicked (caught and reported, never
    /// propagated — the thread keeps serving).
    pub panics: usize,
    /// Bytes of operand pages received (wire bytes, header included).
    pub bytes_in: u64,
    /// Bytes of result pages produced.
    pub bytes_out: u64,
    /// Time spent inside operator kernels (building output pages
    /// included), successful or panicked.
    pub busy: Duration,
    /// Time spent blocked sending completions into the arbitration
    /// channel (back-pressure from the scheduler), separate from `busy`.
    pub send_wait: Duration,
    /// Thread lifetime, spawn to shutdown — nonzero even for a worker
    /// that never received a unit. `wall - busy - send_wait` is idle +
    /// dispatch-channel time.
    pub wall: Duration,
    /// The worker died mid-run (its thread exited before shutdown); the
    /// scheduler shrank the pool and requeued its in-flight unit.
    pub lost: bool,
}

impl WorkerStats {
    /// Fraction of the thread's lifetime spent executing kernels.
    pub fn utilization(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }

    /// One human-readable summary row for worker `id` — the per-worker
    /// line `host_run` prints. Every accumulated duration is surfaced,
    /// `send_wait` (arbitration back-pressure) included.
    pub fn summary_row(&self, id: usize) -> String {
        format!(
            "worker {id:>2}: {:>6} units ({:>6} spans), busy {:>10.2?}, send_wait {:>9.2?}, wall {:>10.2?} ({:>4.1}%){}",
            self.units,
            self.kernel_spans,
            self.busy,
            self.send_wait,
            self.wall,
            self.utilization() * 100.0,
            if self.lost { "  [lost]" } else { "" }
        )
    }
}

/// What one query cost.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Work units fired across all of the query's instruction cells,
    /// including units that ended in a contained panic.
    pub units_fired: usize,
    /// Units whose kernel panicked — nonzero only for queries whose
    /// result is a [`crate::HostError::UnitPanicked`].
    pub failed_units: usize,
    /// Units requeued because the worker holding them died; they were
    /// re-dispatched to a surviving worker.
    pub requeued_units: usize,
    /// Pair-sweep units whose every page pair went through the hash-index
    /// probe path (`JoinAlgo::Hash` on an applicable equi-join).
    pub probe_units: usize,
    /// Pair-sweep units that ran a nested-loops or cross-product sweep
    /// (the nested algorithm, a non-equi θ-join fallback, or a cross
    /// product). `probe_units + sweep_units` is the pair-unit total.
    pub sweep_units: usize,
    /// Pages that crossed the distribution network for this query
    /// (operand pages dispatched to workers plus result pages returned).
    pub pages_moved: usize,
    /// Bytes those pages carried.
    pub bytes_moved: u64,
    /// Tuples in the query's result relation (0 for a failed query).
    pub result_tuples: usize,
    /// Sum of the result tuples' image lengths in bytes. Unlike
    /// `bytes_moved` this is packing-independent (no page headers, no
    /// partially filled pages), so it is directly comparable to the
    /// sequential oracle's relation payload — the `trace_invariants`
    /// differential tests rely on that.
    pub result_payload_bytes: u64,
    /// Admission-to-completion wall time (admission-to-failure for a
    /// failed query).
    pub elapsed: Duration,
}

/// Metrics of one [`crate::run_host_queries`] call.
#[derive(Debug, Clone, Default)]
pub struct HostMetrics {
    /// Wall time of the whole batch (admission of the first query to
    /// completion of the last).
    pub elapsed: Duration,
    /// Per-query costs, in input order.
    pub per_query: Vec<QueryStats>,
    /// Per-worker activity, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
}

impl HostMetrics {
    /// Total work units executed by all workers.
    pub fn total_units(&self) -> usize {
        self.per_worker.iter().map(|w| w.units).sum()
    }

    /// Total logical kernel spans executed by all workers (≥
    /// [`HostMetrics::total_units`]; strictly greater when pipeline mode
    /// fused any chain).
    pub fn total_kernel_spans(&self) -> usize {
        self.per_worker.iter().map(|w| w.kernel_spans).sum()
    }

    /// Total kernel panics contained across all workers.
    pub fn total_panics(&self) -> usize {
        self.per_worker.iter().map(|w| w.panics).sum()
    }

    /// Workers that died mid-run (pool shrinkage).
    pub fn workers_lost(&self) -> usize {
        self.per_worker.iter().filter(|w| w.lost).count()
    }

    /// Total bytes moved through workers (in + out).
    pub fn total_bytes(&self) -> u64 {
        self.per_worker
            .iter()
            .map(|w| w.bytes_in + w.bytes_out)
            .sum()
    }

    /// Mean worker utilization (busy / wall), 0.0 with no workers.
    pub fn worker_utilization(&self) -> f64 {
        if self.per_worker.is_empty() {
            0.0
        } else {
            self.per_worker
                .iter()
                .map(WorkerStats::utilization)
                .sum::<f64>()
                / self.per_worker.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let w = WorkerStats {
            units: 4,
            bytes_in: 100,
            bytes_out: 50,
            busy: Duration::from_millis(25),
            wall: Duration::from_millis(100),
            ..WorkerStats::default()
        };
        assert!((w.utilization() - 0.25).abs() < 1e-9);
        assert_eq!(WorkerStats::default().utilization(), 0.0);

        let m = HostMetrics {
            elapsed: Duration::from_millis(100),
            per_query: vec![],
            per_worker: vec![w.clone(), WorkerStats::default()],
        };
        assert_eq!(m.total_units(), 4);
        assert_eq!(m.total_bytes(), 150);
        assert!((m.worker_utilization() - 0.125).abs() < 1e-9);
        assert_eq!(HostMetrics::default().worker_utilization(), 0.0);
    }

    #[test]
    fn summary_row_surfaces_send_wait() {
        let w = WorkerStats {
            units: 7,
            busy: Duration::from_millis(40),
            send_wait: Duration::from_millis(15),
            wall: Duration::from_millis(100),
            ..WorkerStats::default()
        };
        let row = w.summary_row(3);
        assert!(row.contains("worker  3"), "{row}");
        assert!(row.contains("7 units"), "{row}");
        assert!(row.contains("send_wait"), "{row}");
        assert!(row.contains("15.00ms"), "send_wait value rendered: {row}");
        assert!(!row.contains("[lost]"), "{row}");
        let lost = WorkerStats {
            lost: true,
            ..WorkerStats::default()
        };
        assert!(lost.summary_row(0).contains("[lost]"));
    }

    #[test]
    fn fault_counters() {
        let lost = WorkerStats {
            lost: true,
            ..WorkerStats::default()
        };
        let panicky = WorkerStats {
            units: 3,
            panics: 2,
            ..WorkerStats::default()
        };
        let m = HostMetrics {
            elapsed: Duration::from_millis(1),
            per_query: vec![],
            per_worker: vec![lost, panicky, WorkerStats::default()],
        };
        assert_eq!(m.total_panics(), 2);
        assert_eq!(m.workers_lost(), 1);
        assert_eq!(m.total_units(), 3);
    }
}

//! The host executor's error taxonomy.
//!
//! The paper's §4 argument for *distributed* control is that no single
//! component failure should stall the machine. The host executor honours
//! that by reporting anomalies as structured values instead of panicking
//! the scheduler: bad configuration and scheduler-level breakdowns surface
//! as run-level errors from [`crate::run_host_queries`], while a worker
//! panic or the loss of the whole worker pool fails only the affected
//! queries (per-query `Err` entries in [`crate::HostRunOutput::results`])
//! and the survivors keep draining.

use std::fmt;
use std::time::Duration;

/// Convenience alias for host-executor results.
pub type HostResult<T> = std::result::Result<T, HostError>;

/// Everything that can go wrong running queries on the host executor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HostError {
    /// [`crate::HostParams`] failed up-front validation (zero workers,
    /// out-of-range fault plan, …).
    InvalidParams {
        /// Human-readable detail.
        detail: String,
    },
    /// The query uses an update operator; the host executor is read-only.
    ReadOnlyExecutor {
        /// Name of the offending operator.
        op: String,
    },
    /// A work unit's kernel panicked on a worker thread. The panic was
    /// contained: the worker survives and only the owning query fails.
    UnitPanicked {
        /// Index of the victim query in the input batch.
        query: usize,
        /// Instruction cell whose unit panicked.
        cell: usize,
        /// Operator name of that cell.
        op: String,
        /// The panic payload, stringified.
        payload: String,
    },
    /// Every worker thread died before this query could finish; its
    /// remaining work units are unexecutable.
    WorkersExhausted {
        /// Size of the worker pool at start.
        workers: usize,
    },
    /// The scheduler made no progress for [`crate::HostParams::stall_timeout`]
    /// while units were in flight (a wedged kernel), or its bookkeeping
    /// broke (queries unfinished with nothing in flight and nothing
    /// dispatchable). Replaces the old `expect("scheduler stuck")` abort.
    Stalled {
        /// Units dispatched but unaccounted for when the stall was declared.
        in_flight: usize,
        /// How long the scheduler waited for a completion.
        waited: Duration,
        /// Diagnostic state dump.
        detail: String,
    },
    /// An error from the relational layer (validation, catalog lookup,
    /// page construction).
    Data(df_relalg::Error),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::InvalidParams { detail } => {
                write!(f, "invalid host parameters: {detail}")
            }
            HostError::ReadOnlyExecutor { op } => write!(
                f,
                "df-host executes read-only queries; `{op}` is an update operator"
            ),
            HostError::UnitPanicked {
                query,
                cell,
                op,
                payload,
            } => write!(
                f,
                "work unit of query {query}, cell {cell} (`{op}`) panicked: {payload}"
            ),
            HostError::WorkersExhausted { workers } => {
                write!(f, "all {workers} worker threads died; query unexecutable")
            }
            HostError::Stalled {
                in_flight,
                waited,
                detail,
            } => write!(
                f,
                "scheduler stalled after {waited:?} with {in_flight} units in flight: {detail}"
            ),
            HostError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<df_relalg::Error> for HostError {
    fn from(e: df_relalg::Error) -> HostError {
        HostError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HostError::UnitPanicked {
            query: 3,
            cell: 1,
            op: "join".into(),
            payload: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("query 3") && s.contains("join") && s.contains("boom"));

        let e = HostError::WorkersExhausted { workers: 4 };
        assert!(e.to_string().contains("all 4 worker"));

        let e = HostError::Stalled {
            in_flight: 2,
            waited: Duration::from_secs(1),
            detail: "x".into(),
        };
        assert!(e.to_string().contains("2 units in flight"));
    }

    #[test]
    fn wraps_relalg_errors() {
        let e: HostError = df_relalg::Error::EmptySchema.into();
        assert_eq!(e.to_string(), df_relalg::Error::EmptySchema.to_string());
        assert!(std::error::Error::source(&e).is_some());
    }
}

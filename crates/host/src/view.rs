//! Standing views: incremental maintenance of an installed query tree.
//!
//! A [`StandingView`] keeps a read-only query resident after one normal
//! materializing execution and thereafter updates its result from
//! base-relation write deltas, never re-running the tree. The design
//! promotes the machine's transient execution state to owned view state:
//! during a normal run, a join cell accumulates its operands' pages-so-far
//! tables and throws them away at completion — here those operand
//! multisets are *retained*, so the bag-algebra product rule
//!
//! ```text
//! Δ(L ⋈ R) = ΔL ⋈ R  +  (L + ΔL) ⋈ ΔR
//! ```
//!
//! fires the very same page-at-a-time join kernel over delta pages
//! against the retained side. Deltas are signed counted multisets of raw
//! tuple images (insert = +n, delete = −n):
//!
//! * **linear** operators (restrict, bag project) run the unchanged raw
//!   kernels over packed delta pages — signs pass through untouched;
//! * **product** operators (join, cross) fire delta pages against the
//!   retained opposite operand, output sign = input sign;
//! * **counted** operators (union, difference, dedup project) keep
//!   per-port counts and emit a delta only on a 0 ↔ positive transition
//!   of their set-semantics indicator function.
//!
//! The maintained result is itself a counted multiset; reads expand it
//! in lexicographic image order, which is exactly the canonical order
//! deterministic mode sorts results into — so a maintained view is
//! byte-identical on the wire to a from-scratch re-execution.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use df_query::{execute_read_nodes, ops, DeltaKind, DeltaPlan, ExecParams, Op, QueryTree};
use df_relalg::{Catalog, Page, Relation, Result, Schema, TupleBuf, PAGE_HEADER_BYTES};

/// A signed counted multiset of raw tuple images. `BTreeMap` keeps every
/// iteration (packing order, result expansion) deterministic.
type Counts = BTreeMap<Vec<u8>, i64>;

/// Add `n` to an image's count, removing the entry when it hits zero.
fn add(counts: &mut Counts, image: &[u8], n: i64) {
    if n == 0 {
        return;
    }
    let slot = counts.entry(image.to_vec()).or_insert(0);
    *slot += n;
    if *slot == 0 {
        counts.remove(image);
    }
}

/// Fold a whole delta into `counts`.
fn fold(counts: &mut Counts, delta: &Counts) {
    for (image, &n) in delta {
        add(counts, image, n);
    }
}

/// The counted multiset of a materialized relation's images.
fn counts_of(rel: &Relation) -> Counts {
    let mut counts = Counts::new();
    for p in rel.pages() {
        for t in p.tuple_refs() {
            add(&mut counts, t.raw(), 1);
        }
    }
    counts
}

/// A page size that is guaranteed to hold at least one tuple of `schema`
/// (delta trees can concatenate schemas past the configured page size).
fn effective_page_size(schema: &Schema, page_size: usize) -> usize {
    page_size.max(PAGE_HEADER_BYTES + schema.tuple_width())
}

/// Pack `(image, repeat)` pairs into delta pages of `schema`.
fn pack_images<'a>(
    schema: &Schema,
    page_size: usize,
    images: impl Iterator<Item = (&'a [u8], i64)>,
) -> Result<Vec<Page>> {
    let mut buf = TupleBuf::new(schema.clone());
    for (image, n) in images {
        for _ in 0..n {
            buf.push_raw(image);
        }
    }
    let size = effective_page_size(schema, page_size);
    let mut pages = Vec::new();
    while !buf.is_empty() {
        let mut page = Page::new(schema.clone(), size)?;
        buf.drain_into(&mut page);
        pages.push(page);
    }
    Ok(pages)
}

/// Pack each *distinct* image of a delta once (multiplicities are
/// re-applied after the kernel runs — linear kernels are per-tuple, so
/// one representative per image is enough).
fn pack_distinct(schema: &Schema, page_size: usize, delta: &Counts) -> Result<Vec<Page>> {
    pack_images(schema, page_size, delta.keys().map(|k| (k.as_slice(), 1)))
}

/// How many delta pages a multiset of `n` images of `schema` occupies
/// (the page accounting for source injections, which never run a kernel).
fn pages_needed(n: usize, schema: &Schema, page_size: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let cap = (effective_page_size(schema, page_size) - PAGE_HEADER_BYTES) / schema.tuple_width();
    n.div_ceil(cap) as u64
}

/// One retained operand of a product (join/cross) node: the counted
/// multiset plus its packed page image, rebuilt lazily after a delta
/// lands on this side (the other side's cache survives untouched).
#[derive(Debug)]
struct SideState {
    counts: Counts,
    /// `Arc`-shared with the catalog pages that seeded it, exactly like
    /// the transient operand tables during a normal execution.
    pages: Option<Vec<Arc<Page>>>,
}

impl SideState {
    /// Seed from the install-time materialization of this operand —
    /// the node result the transient execution would have discarded.
    fn seed(rel: &Relation) -> SideState {
        SideState {
            counts: counts_of(rel),
            pages: Some(rel.pages().to_vec()),
        }
    }

    /// The packed multiset (each image repeated by its count).
    fn pages(&mut self, schema: &Schema, page_size: usize) -> Result<&[Arc<Page>]> {
        if self.pages.is_none() {
            self.pages = Some(
                pack_images(
                    schema,
                    page_size,
                    self.counts.iter().map(|(k, &n)| (k.as_slice(), n)),
                )?
                .into_iter()
                .map(Arc::new)
                .collect(),
            );
        }
        Ok(self.pages.as_ref().expect("just built"))
    }

    /// Fold a delta into this side, invalidating the packed cache.
    fn fold(&mut self, delta: &Counts) {
        if delta.is_empty() {
            return;
        }
        fold(&mut self.counts, delta);
        debug_assert!(
            self.counts.values().all(|&n| n > 0),
            "operand went negative"
        );
        self.pages = None;
    }
}

/// Per-node retained state, indexed like the tree's arena.
#[derive(Debug)]
enum NodeState {
    /// Source and linear nodes hold nothing.
    Stateless,
    /// Join/cross: both operand multisets, promoted from the transient
    /// pages-so-far tables.
    Product { left: SideState, right: SideState },
    /// Union/difference: per-port counts for the indicator function.
    Ports { left: Counts, right: Counts },
    /// Deduplicating project: counts of *projected* input images.
    Dedup { counts: Counts },
}

/// What one write did to a standing view.
#[derive(Debug, Clone, Copy, Default)]
pub struct ViewUpdate {
    /// Delta pages that flowed through the standing dataflow (source
    /// injections plus every packed kernel input).
    pub delta_pages: u64,
    /// Whether the maintained result changed at all.
    pub result_changed: bool,
}

/// An installed standing query: a compiled [`DeltaPlan`], the retained
/// per-node operand state, and the maintained result multiset.
#[derive(Debug)]
pub struct StandingView {
    name: String,
    text: String,
    plan: DeltaPlan,
    page_size: usize,
    states: Vec<NodeState>,
    result: Counts,
}

impl StandingView {
    /// Install `tree` (parsed from `text`) as a standing view:
    /// materialize every node once through the normal read path, seed
    /// the retained operand state from the per-node results, and keep
    /// the root's multiset as the maintained result.
    ///
    /// # Errors
    /// Fails on validation errors or if the tree is not read-only.
    pub fn install(
        name: &str,
        text: &str,
        db: &Catalog,
        tree: &QueryTree,
        page_size: usize,
    ) -> Result<StandingView> {
        let plan = DeltaPlan::compile(db, tree)?;
        let params = ExecParams {
            page_size,
            ..ExecParams::default()
        };
        let nodes = execute_read_nodes(db, tree, &params)?;
        let mut states = Vec::with_capacity(tree.len());
        for id in tree.topo_order() {
            let node = tree.node(id);
            let child = |i: usize| -> &Relation { &nodes[node.children[i].0] };
            let state = match plan.kind(id) {
                DeltaKind::Source | DeltaKind::Linear => NodeState::Stateless,
                DeltaKind::Retained => NodeState::Product {
                    left: SideState::seed(child(0)),
                    right: SideState::seed(child(1)),
                },
                DeltaKind::Counted => match &node.op {
                    Op::Project { projection, .. } => NodeState::Dedup {
                        counts: projected_counts(child(0), projection.indices()),
                    },
                    _ => NodeState::Ports {
                        left: counts_of(child(0)),
                        right: counts_of(child(1)),
                    },
                },
            };
            states.push(state);
        }
        let result = counts_of(&nodes[tree.root().0]);
        Ok(StandingView {
            name: name.to_string(),
            text: text.to_string(),
            plan,
            page_size,
            states,
            result,
        })
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defining query text (the differential oracle re-executes it).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The view's output schema.
    pub fn schema(&self) -> &Schema {
        self.plan.output_schema()
    }

    /// Sorted, deduplicated base relations the view depends on.
    pub fn base_relations(&self) -> &[String] {
        self.plan.base_relations()
    }

    /// Whether a write to `relation` must be replayed through this view.
    pub fn reads(&self, relation: &str) -> bool {
        self.plan.reads(relation)
    }

    /// Current number of result tuples (multiset cardinality).
    pub fn num_tuples(&self) -> usize {
        self.result.values().map(|&n| n as usize).sum()
    }

    /// The maintained result as raw tuple images in canonical
    /// (lexicographic) order — the order deterministic mode serves.
    pub fn tuple_images(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(self.num_tuples());
        for (image, &n) in &self.result {
            for _ in 0..n {
                out.push(image.clone());
            }
        }
        out
    }

    /// Replay one base-relation write through the standing dataflow.
    /// `inserts` and `deletes` are raw tuple images in the target's
    /// encoding, exactly as [`df_query::WriteDelta::base_change`]
    /// reports them. A write to a relation the view does not read is a
    /// no-op.
    ///
    /// # Errors
    /// Fails only on page-packing errors (which indicate a schema bug,
    /// not a data condition).
    pub fn apply_write(
        &mut self,
        target: &str,
        inserts: &[Vec<u8>],
        deletes: &[Vec<u8>],
    ) -> Result<ViewUpdate> {
        if !self.plan.reads(target) || (inserts.is_empty() && deletes.is_empty()) {
            return Ok(ViewUpdate::default());
        }
        let plan = &self.plan;
        let states = &mut self.states;
        let tree = plan.tree();
        let mut delta_pages = 0u64;
        let mut deltas: Vec<Counts> = Vec::with_capacity(tree.len());
        for id in tree.topo_order() {
            let node = tree.node(id);
            let delta = match &node.op {
                Op::Scan { relation } => {
                    if relation == target {
                        let schema = plan.schema(id);
                        delta_pages += pages_needed(inserts.len(), schema, self.page_size)
                            + pages_needed(deletes.len(), schema, self.page_size);
                        let mut d = Counts::new();
                        for image in inserts {
                            add(&mut d, image, 1);
                        }
                        for image in deletes {
                            add(&mut d, image, -1);
                        }
                        d
                    } else {
                        Counts::new()
                    }
                }
                Op::Restrict { predicate } => {
                    let input = &deltas[node.children[0].0];
                    if input.is_empty() {
                        Counts::new()
                    } else {
                        let schema = plan.schema(node.children[0]);
                        let pages = pack_distinct(schema, self.page_size, input)?;
                        delta_pages += pages.len() as u64;
                        let survivors: HashSet<Vec<u8>> = pages
                            .iter()
                            .flat_map(|p| {
                                let buf = ops::restrict_page_raw(p, predicate);
                                buf.refs().map(|t| t.raw().to_vec()).collect::<Vec<_>>()
                            })
                            .collect();
                        input
                            .iter()
                            .filter(|(image, _)| survivors.contains(image.as_slice()))
                            .map(|(image, &n)| (image.clone(), n))
                            .collect()
                    }
                }
                Op::Project { projection, dedup } => {
                    let input = &deltas[node.children[0].0];
                    let mut projected = Counts::new();
                    if !input.is_empty() {
                        let schema = plan.schema(node.children[0]);
                        let out_schema = plan.schema(id);
                        let pages = pack_distinct(schema, self.page_size, input)?;
                        delta_pages += pages.len() as u64;
                        // The kernel is 1:1 and order-preserving, so the
                        // i-th output image projects the i-th input.
                        for page in &pages {
                            let buf = ops::project_page_raw(page, projection, out_schema);
                            for (t_in, t_out) in page.tuple_refs().zip(buf.refs()) {
                                add(&mut projected, t_out.raw(), input[t_in.raw()]);
                            }
                        }
                    }
                    if *dedup {
                        let NodeState::Dedup { counts } = &mut states[id.0] else {
                            unreachable!("dedup project retains counts");
                        };
                        indicator_delta(counts, &projected)
                    } else {
                        projected
                    }
                }
                Op::Join { .. } | Op::CrossProduct => {
                    let (c0, c1) = (node.children[0], node.children[1]);
                    // Split borrow: earlier deltas are read-only here.
                    let (dl, dr) = (&deltas[c0.0], &deltas[c1.0]);
                    if dl.is_empty() && dr.is_empty() {
                        Counts::new()
                    } else {
                        let NodeState::Product { left, right } = &mut states[id.0] else {
                            unreachable!("product node retains operands");
                        };
                        fire_product(
                            &node.op,
                            plan.schema(c0),
                            plan.schema(c1),
                            plan.schema(id),
                            self.page_size,
                            left,
                            right,
                            dl,
                            dr,
                            &mut delta_pages,
                        )?
                    }
                }
                Op::Union | Op::Difference => {
                    let (c0, c1) = (node.children[0], node.children[1]);
                    let (dl, dr) = (&deltas[c0.0], &deltas[c1.0]);
                    if dl.is_empty() && dr.is_empty() {
                        Counts::new()
                    } else {
                        let NodeState::Ports { left, right } = &mut states[id.0] else {
                            unreachable!("set-op node retains port counts");
                        };
                        set_op_delta(&node.op, left, right, dl, dr)
                    }
                }
                Op::Append { .. } | Op::Delete { .. } => {
                    unreachable!("DeltaPlan rejects updating trees")
                }
            };
            deltas.push(delta);
        }
        let root_delta = &deltas[tree.root().0];
        let result_changed = !root_delta.is_empty();
        fold(&mut self.result, root_delta);
        debug_assert!(
            self.result.values().all(|&n| n > 0),
            "maintained result went negative"
        );
        Ok(ViewUpdate {
            delta_pages,
            result_changed,
        })
    }
}

/// The projected multiset of a relation's images (with multiplicities —
/// the node's own deduped output would lose them).
fn projected_counts(rel: &Relation, indices: &[usize]) -> Counts {
    let mut counts = Counts::new();
    let mut image = Vec::new();
    for p in rel.pages() {
        for t in p.tuple_refs() {
            image.clear();
            for &i in indices {
                image.extend_from_slice(t.attr_bytes(i));
            }
            add(&mut counts, &image, 1);
        }
    }
    counts
}

/// Fold `delta` into retained `counts` and emit the 0 ↔ positive
/// transitions of the presence indicator (set semantics: output
/// multiplicity is always 1).
fn indicator_delta(counts: &mut Counts, delta: &Counts) -> Counts {
    let mut out = Counts::new();
    for (image, &n) in delta {
        let old = counts.get(image).copied().unwrap_or(0);
        let new = old + n;
        debug_assert!(new >= 0, "dedup count went negative");
        add(counts, image, n);
        let transition = i64::from(new > 0) - i64::from(old > 0);
        add(&mut out, image, transition);
    }
    out
}

/// The counted-transition delta of a set-semantics binary operator:
/// union is present iff either port count is positive, difference iff
/// the left is positive and the right is zero.
fn set_op_delta(
    op: &Op,
    left: &mut Counts,
    right: &mut Counts,
    dl: &Counts,
    dr: &Counts,
) -> Counts {
    let present = |l: i64, r: i64| -> bool {
        match op {
            Op::Union => l > 0 || r > 0,
            Op::Difference => l > 0 && r == 0,
            _ => unreachable!("set_op_delta on a non-set-op"),
        }
    };
    let mut out = Counts::new();
    let affected: HashSet<&Vec<u8>> = dl.keys().chain(dr.keys()).collect();
    for image in affected {
        let (ol, or) = (
            left.get(image).copied().unwrap_or(0),
            right.get(image).copied().unwrap_or(0),
        );
        let (nl, nr) = (
            ol + dl.get(image).copied().unwrap_or(0),
            or + dr.get(image).copied().unwrap_or(0),
        );
        debug_assert!(nl >= 0 && nr >= 0, "set-op port count went negative");
        let transition = i64::from(present(nl, nr)) - i64::from(present(ol, or));
        add(&mut out, image, transition);
    }
    fold(left, dl);
    fold(right, dr);
    out
}

/// Fire the product rule for a join or cross node: delta pages against
/// the retained opposite operand, folding each side's delta into its
/// retained multiset between the two half-rules so a self-join's
/// simultaneous deltas compose exactly (ΔL ⋈ R, then (L + ΔL) ⋈ ΔR).
#[allow(clippy::too_many_arguments)]
fn fire_product(
    op: &Op,
    left_schema: &Schema,
    right_schema: &Schema,
    out_schema: &Schema,
    page_size: usize,
    left: &mut SideState,
    right: &mut SideState,
    dl: &Counts,
    dr: &Counts,
    delta_pages: &mut u64,
) -> Result<Counts> {
    let w_left = left_schema.tuple_width();
    let kernel = |outer: &Page, inner: &Page| -> TupleBuf {
        match op {
            Op::Join { condition } => ops::hash_join_pages_raw(outer, inner, condition, out_schema),
            Op::CrossProduct => ops::cross_pages_raw(outer, inner, out_schema),
            _ => unreachable!("fire_product on a non-product op"),
        }
    };
    let mut out = Counts::new();
    // ΔL ⋈ R_old: distinct ΔL images fire against the retained right
    // multiset; each emitted row carries its left image's signed count.
    if !dl.is_empty() {
        let dl_pages = pack_distinct(left_schema, page_size, dl)?;
        *delta_pages += dl_pages.len() as u64;
        for dp in &dl_pages {
            for rp in right.pages(right_schema, page_size)? {
                let buf = kernel(dp, rp.as_ref());
                for t in buf.refs() {
                    add(&mut out, t.raw(), dl[&t.raw()[..w_left]]);
                }
            }
        }
        left.fold(dl);
    }
    // (L + ΔL) ⋈ ΔR: the updated left multiset against distinct ΔR
    // images; each emitted row carries its right image's signed count.
    if !dr.is_empty() {
        let dr_pages = pack_distinct(right_schema, page_size, dr)?;
        *delta_pages += dr_pages.len() as u64;
        for lp in left.pages(left_schema, page_size)? {
            for dp in &dr_pages {
                let buf = kernel(lp.as_ref(), dp);
                for t in buf.refs() {
                    add(&mut out, t.raw(), dr[&t.raw()[w_left..]]);
                }
            }
        }
        right.fold(dr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_query::{execute_readonly, parse_query};
    use df_relalg::{DataType, Tuple, Value};

    fn kv_schema() -> Schema {
        Schema::build()
            .attr("key", DataType::Int)
            .attr("val", DataType::Int)
            .finish()
            .unwrap()
    }

    fn image(key: i64, val: i64) -> Vec<u8> {
        let mut buf = Vec::new();
        Tuple::new(vec![Value::Int(key), Value::Int(val)])
            .encode(&kv_schema(), &mut buf)
            .unwrap();
        buf
    }

    fn db() -> Catalog {
        let mut db = Catalog::new();
        for (name, n) in [("a", 8i64), ("b", 6i64)] {
            db.insert(
                Relation::from_tuples(
                    name,
                    kv_schema(),
                    128,
                    (0..n).map(|i| Tuple::new(vec![Value::Int(i % 4), Value::Int(i * 10)])),
                )
                .unwrap(),
            )
            .unwrap();
        }
        db
    }

    /// The from-scratch oracle: sorted raw images of a fresh execution.
    fn oracle(db: &Catalog, text: &str) -> Vec<Vec<u8>> {
        let tree = parse_query(db, text).unwrap();
        let rel = execute_readonly(db, &tree, &ExecParams::default()).unwrap();
        let mut images: Vec<Vec<u8>> = rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
        images.sort();
        images
    }

    /// A write batch against one target: (target, inserts, deletes).
    type WriteBatch<'a> = (&'a str, Vec<Vec<u8>>, Vec<Vec<u8>>);

    /// Install over `db`, apply `writes` both to the view and the
    /// catalog, and check byte-identity with the oracle after each one.
    fn check_maintenance(mut db: Catalog, text: &str, writes: &[WriteBatch<'_>]) {
        let tree = parse_query(&db, text).unwrap();
        let mut view = StandingView::install("v", text, &db, &tree, 1024).unwrap();
        assert_eq!(view.tuple_images(), oracle(&db, text), "install mismatch");
        for (i, (target, inserts, deletes)) in writes.iter().enumerate() {
            view.apply_write(target, inserts, deletes).unwrap();
            apply_to_catalog(&mut db, target, inserts, deletes);
            assert_eq!(
                view.tuple_images(),
                oracle(&db, text),
                "write {i} to {target} diverged"
            );
        }
    }

    /// Mirror a raw-image write into the catalog the slow way.
    fn apply_to_catalog(db: &mut Catalog, target: &str, inserts: &[Vec<u8>], deletes: &[Vec<u8>]) {
        let rel = db.get(target).unwrap();
        let schema = rel.schema().clone();
        let page_size = rel.page_size();
        let mut images: Vec<Vec<u8>> = rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
        for d in deletes {
            let pos = images.iter().position(|i| i == d).expect("delete exists");
            images.remove(pos);
        }
        images.extend(inserts.iter().cloned());
        let tuples: Vec<Tuple> = images
            .iter()
            .map(|i| df_relalg::TupleRef::new(&schema, i).unwrap().to_tuple())
            .collect();
        db.insert_or_replace(Relation::from_tuples(target, schema, page_size, tuples).unwrap());
    }

    #[test]
    fn restrict_view_tracks_inserts_and_deletes() {
        check_maintenance(
            db(),
            "(restrict (scan a) (< val 35))",
            &[
                ("a", vec![image(9, 5), image(9, 99)], vec![]),
                ("a", vec![], vec![image(0, 0), image(9, 5)]),
                ("b", vec![image(1, 1)], vec![]), // unrelated: no-op
            ],
        );
    }

    #[test]
    fn join_view_uses_retained_operands() {
        check_maintenance(
            db(),
            "(join (scan a) (scan b) (= key key))",
            &[
                ("a", vec![image(2, 77)], vec![]),
                ("b", vec![image(2, 88), image(2, 88)], vec![]),
                ("a", vec![], vec![image(2, 77)]),
                ("b", vec![], vec![image(2, 88)]),
            ],
        );
    }

    #[test]
    fn self_join_composes_simultaneous_deltas() {
        check_maintenance(
            db(),
            "(join (scan a) (scan a) (= key key))",
            &[
                ("a", vec![image(5, 50)], vec![]),
                ("a", vec![image(5, 51), image(6, 60)], vec![image(5, 50)]),
            ],
        );
    }

    #[test]
    fn union_and_difference_follow_indicator_transitions() {
        for text in [
            "(union (scan a) (scan b))",
            "(difference (scan a) (scan b))",
        ] {
            check_maintenance(
                db(),
                text,
                &[
                    ("a", vec![image(7, 70)], vec![]),
                    ("b", vec![image(7, 70)], vec![]),
                    ("b", vec![], vec![image(7, 70)]),
                    ("a", vec![image(0, 0)], vec![]), // duplicate of an existing image
                    ("a", vec![], vec![image(0, 0)]), // still present once: no transition
                ],
            );
        }
    }

    #[test]
    fn dedup_project_counts_multiplicities() {
        check_maintenance(
            db(),
            "(project-distinct (scan a) (key))",
            &[
                ("a", vec![image(4, 1)], vec![]),
                ("a", vec![image(4, 2)], vec![]),
                ("a", vec![], vec![image(4, 1)]), // key 4 still present via (4, 2)
                ("a", vec![], vec![image(4, 2)]), // now it disappears
            ],
        );
    }

    #[test]
    fn delta_pages_flow_and_noops_are_free() {
        let db = db();
        let text = "(restrict (scan a) (> val 10))";
        let tree = parse_query(&db, text).unwrap();
        let mut view = StandingView::install("v", text, &db, &tree, 1024).unwrap();
        let up = view.apply_write("a", &[image(1, 100)], &[]).unwrap();
        assert!(up.delta_pages > 0, "delta pages counted");
        assert!(up.result_changed);
        let up = view.apply_write("zzz", &[image(1, 100)], &[]).unwrap();
        assert_eq!(up.delta_pages, 0, "unrelated target is a no-op");
        let up = view.apply_write("a", &[image(1, 3)], &[]).unwrap();
        assert!(up.delta_pages > 0, "pages flowed");
        assert!(!up.result_changed, "filtered out before the root");
    }

    #[test]
    fn install_rejects_updating_definitions() {
        let db = db();
        let tree = parse_query(&db, "(append (scan a) b)").unwrap();
        assert!(StandingView::install("v", "q", &db, &tree, 1024).is_err());
    }
}

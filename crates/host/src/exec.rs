//! The real-threads data-flow executor.
//!
//! One scheduler (the calling thread) plays the paper's MC/IC layer: it
//! admits queries under the shared relation-granularity lock manager
//! ([`df_core::LockTable`]), tracks each instruction cell's operand page
//! tables, applies the §2 firing rule as pages arrive, and picks which
//! ready instruction a freed worker serves next via a
//! [`df_core::WorkPicker`]. A pool of worker threads plays the IPs: each
//! receives work units over a bounded channel (the distribution network),
//! runs the zero-copy `df_query::ops::*_raw` kernels, drains the resulting
//! [`TupleBuf`] into output pages, and sends them back over a bounded MPSC
//! channel (the arbitration network). Pages flow cell → parent cell → query
//! result with `Arc` sharing — never copied.
//!
//! # Fault containment
//!
//! The paper's §4 case for *distributed* control is that no single
//! component failure stalls the machine; the executor holds itself to the
//! same standard. A kernel panic is caught on the worker
//! (`catch_unwind`), reported as a [`Completion::Failed`], and fails only
//! the owning query — the worker thread and every other in-flight query
//! survive. A worker thread that dies outright (simulated by
//! [`crate::FaultPlan::dead_workers`], or a panic escaping the kernel
//! guard) announces itself through a drop guard; the scheduler shrinks
//! the pool, requeues the unit that worker held, and keeps draining with
//! the survivors. Only when *every* worker is gone do the still-unfinished
//! queries fail, each with a structured [`HostError::WorkersExhausted`] —
//! never a hang: the completion wait is bounded by
//! [`crate::HostParams::stall_timeout`], after which a wedged run returns
//! [`HostError::Stalled`] with a diagnostic instead of blocking forever.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use df_core::{JoinAlgo, LockRequest, LockTable, StrategyPicker, WorkCandidate, WorkPicker};
use df_obs::{EventKind, Path, Tracer};
use df_query::ops::{
    cross_pages_raw, dedup_pages_raw, difference_pages_raw, hash_join_applicable, hash_join_probe,
    join_pages_raw, project_page_raw, restrict_page_raw, span_page_raw, union_pages_raw,
};
use df_query::{Op, QueryTree};
use df_relalg::{Catalog, Page, PageKeyIndex, Relation, Schema, TupleBuf};

use crate::error::{HostError, HostResult};
use crate::fault::InjectedFault;
use crate::metrics::{HostMetrics, QueryStats, WorkerStats};
use crate::params::HostParams;
use crate::plan::{Firing, QueryPlan};

/// One page in a pair-sweep cell's operand page table, bundled with its
/// lazily built raw-byte key index (the hash-accelerated equi-join path).
///
/// The index is per *cell*, not per base page: the same `Arc<Page>` of a
/// base relation can feed several join cells keyed on different
/// attributes, so each cell's table wraps the page in its own
/// `OperandPage`. The first worker whose probe needs the index builds it
/// (`OnceLock`); every later pair unit touching this page — on any worker
/// — reuses it through the shared `Arc`.
#[derive(Debug)]
struct OperandPage {
    page: Arc<Page>,
    index: OnceLock<PageKeyIndex>,
}

impl OperandPage {
    fn new(page: Arc<Page>) -> OperandPage {
        OperandPage {
            page,
            index: OnceLock::new(),
        }
    }

    /// The page's key index over attribute `key`, built on first use.
    fn index_for(&self, key: usize) -> &PageKeyIndex {
        let idx = self
            .index
            .get_or_init(|| PageKeyIndex::build(&self.page, key));
        // A pair-sweep cell has exactly one join condition, so every probe
        // of this page asks for the same key attribute.
        debug_assert_eq!(idx.key(), key, "one cell, one join key");
        idx
    }
}

/// The operand payload of one work unit. `Clone` is cheap (`Arc`s only)
/// and lets the scheduler keep a copy of each dispatched unit so it can
/// requeue the unit if the worker holding it dies.
#[derive(Debug, Clone)]
enum WorkKind {
    /// One operand page (restrict, non-dedup project).
    Page(Arc<Page>),
    /// A pair sweep: the newly arrived page against every page of the
    /// opposite operand received so far (join, cross product).
    Sweep {
        new_page: Arc<OperandPage>,
        opposite: Vec<Arc<OperandPage>>,
        new_is_outer: bool,
    },
    /// Complete operands of a blocking operator (union, difference,
    /// dedup project — `right` is empty for unary operators).
    Complete {
        left: Vec<Arc<Page>>,
        right: Vec<Arc<Page>>,
    },
}

/// One instruction firing, dispatched to a worker.
#[derive(Debug)]
struct WorkUnit {
    plan: Arc<QueryPlan>,
    query: usize,
    cell: usize,
    kind: WorkKind,
    /// Global dispatch sequence number (the fault plan's unit key).
    seq: u64,
    /// Fault injected into this unit, if the plan says so.
    fault: Option<InjectedFault>,
}

/// How a pair-sweep unit was served, for the probe/sweep metrics split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitClass {
    /// Every page pair of the unit went through the hash-index probe.
    Probe,
    /// Nested-loops or cross-product sweep (incl. θ-join fallback).
    Sweep,
    /// Not a pair unit (restrict, project, union, …).
    Other,
}

/// What a worker sends back over the arbitration channel.
#[derive(Debug)]
enum Completion {
    /// A unit's kernel ran to completion.
    Done {
        worker: usize,
        query: usize,
        cell: usize,
        pages: Vec<Arc<Page>>,
        pages_in: usize,
        bytes_in: u64,
        bytes_out: u64,
        class: UnitClass,
    },
    /// A unit's kernel panicked; the panic was caught and the worker
    /// survives, but the unit produced nothing.
    Failed {
        worker: usize,
        query: usize,
        cell: usize,
        /// The panic payload, stringified.
        payload: String,
    },
    /// The worker thread itself died (sent by its drop guard). Whatever
    /// unit it held must be requeued and the pool shrunk.
    WorkerDied { worker: usize },
}

/// Output of [`run_host_queries`].
#[derive(Debug)]
pub struct HostRunOutput {
    /// One outcome per query, in input order: the result relation (named
    /// `"result"`), or the structured error that killed that query while
    /// the rest of the batch kept running.
    pub results: Vec<Result<Relation, HostError>>,
    /// Wall-clock metrics.
    pub metrics: HostMetrics,
}

/// Execute a batch of read-only queries on real threads, admitting them
/// concurrently under relation-granularity locking.
///
/// Results are multiset-identical to [`df_query::execute_readonly`] for
/// every worker count and allocation strategy (asserted by the
/// `host_vs_oracle` differential tests).
///
/// # Errors
/// A run-level `Err` means nothing useful happened: invalid parameters
/// ([`HostError::InvalidParams`]), a query that fails validation or uses
/// an update operator, or a stalled scheduler ([`HostError::Stalled`]).
/// Worker faults do **not** fail the run: a kernel panic or the loss of
/// the whole pool is contained to per-query `Err` entries in
/// [`HostRunOutput::results`] while every other query completes normally.
pub fn run_host_queries(
    db: &Catalog,
    queries: &[QueryTree],
    params: &HostParams,
) -> HostResult<HostRunOutput> {
    params.validate()?;
    let plans: Vec<Arc<QueryPlan>> = queries
        .iter()
        .map(|q| {
            QueryPlan::build(db, q, params.page_size, params.join, params.transfer).map(Arc::new)
        })
        .collect::<HostResult<_>>()?;

    let started = Instant::now();
    let poisoned = Arc::new(AtomicBool::new(false));

    // The networks: one bounded SPSC channel per worker for dispatch, one
    // shared bounded MPSC channel for completions.
    let (done_tx, done_rx) = sync_channel::<Completion>(params.completion_capacity);
    let mut work_txs = Vec::with_capacity(params.workers);
    let mut handles = Vec::with_capacity(params.workers);
    for id in 0..params.workers {
        let (tx, rx) = sync_channel::<WorkUnit>(1);
        work_txs.push(tx);
        let done = done_tx.clone();
        let poisoned = Arc::clone(&poisoned);
        let dead_at_start = params.fault.worker_dead_at_start(id);
        let trace = params.trace.clone();
        handles.push(
            thread::Builder::new()
                .name(format!("df-host-worker-{id}"))
                .spawn(move || worker_loop(id, rx, done, poisoned, dead_at_start, trace))
                .expect("spawning worker thread"),
        );
    }
    drop(done_tx);

    let scheduler = Scheduler::new(db, queries, plans, params, work_txs, done_rx);
    let outcome = match scheduler.run() {
        Ok(outcome) => outcome,
        Err(e) => {
            // Run-level failure. The scheduler (and with it every channel
            // endpoint) is already dropped, so workers wake and exit on
            // their own; `poisoned` makes them skip any still-buffered
            // unit. We deliberately do not join: a genuinely wedged kernel
            // (the `Stalled` case) would block the caller forever.
            poisoned.store(true, Ordering::Relaxed);
            drop(handles);
            return Err(e);
        }
    };

    // Workers exit when their dispatch channel closes (`Scheduler::run`
    // drops the senders); collect their stats. A thread that died is a
    // contained fault, not a reason to kill the caller.
    let mut per_worker = Vec::with_capacity(params.workers);
    for (id, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(mut stats) => {
                stats.lost = outcome.dead[id];
                per_worker.push(stats);
            }
            Err(_panic) => {
                // The thread unwound outside the kernel guard; its stats
                // are gone but the run survived without it.
                per_worker.push(WorkerStats {
                    lost: true,
                    ..WorkerStats::default()
                });
            }
        }
    }

    Ok(HostRunOutput {
        results: outcome.results,
        metrics: HostMetrics {
            elapsed: started.elapsed(),
            per_query: outcome.per_query,
            per_worker,
        },
    })
}

/// Single-query convenience wrapper around [`run_host_queries`].
///
/// # Errors
/// See [`run_host_queries`]; the single query's own fault (e.g.
/// [`HostError::UnitPanicked`]) is flattened into the returned `Err`.
pub fn run_host_query(
    db: &Catalog,
    query: &QueryTree,
    params: &HostParams,
) -> HostResult<(Relation, HostMetrics)> {
    let mut out = run_host_queries(db, std::slice::from_ref(query), params)?;
    let rel = out.results.remove(0)?;
    Ok((rel, out.metrics))
}

// ---------------------------------------------------------------------------
// Scheduler (the MC/IC layer)
// ---------------------------------------------------------------------------

/// Scheduler-side state of one instruction cell.
#[derive(Debug, Default)]
struct CellState {
    /// Operand page table, one list per port. Pair-sweep cells read the
    /// cached per-page key index off these entries; other firings only
    /// use the wrapped page.
    received: Vec<Vec<Arc<OperandPage>>>,
    /// Which operand streams are complete.
    port_done: Vec<bool>,
    /// Work units created but not yet dispatched.
    pending: VecDeque<WorkKind>,
    /// Work units dispatched but not yet completed.
    in_flight: usize,
    /// A blocking cell's single unit has been created.
    fired_blocking: bool,
    /// All operands done and no work outstanding.
    complete: bool,
}

/// Scheduler-side state of one admitted query.
struct QueryState {
    plan: Arc<QueryPlan>,
    cells: Vec<CellState>,
    /// Base for globally unique instruction ids (`base + cell index`).
    base: usize,
    admitted_at: Instant,
    result_pages: Vec<Arc<Page>>,
    stats: QueryStats,
    /// Units dispatched and not yet accounted for, across all cells.
    in_flight_total: usize,
    /// Set when the query is doomed (a unit panicked, or the pool died);
    /// its pending work is discarded and it concludes once the last
    /// in-flight unit drains.
    failed: Option<HostError>,
}

/// What [`Scheduler::run`] hands back on a (possibly partially failed,
/// but orderly) run.
struct SchedulerOutcome {
    results: Vec<Result<Relation, HostError>>,
    per_query: Vec<QueryStats>,
    /// Which workers died mid-run, by id.
    dead: Vec<bool>,
}

struct Scheduler<'a> {
    db: &'a Catalog,
    queries: &'a [QueryTree],
    plans: Vec<Arc<QueryPlan>>,
    params: &'a HostParams,
    work_txs: Vec<SyncSender<WorkUnit>>,
    done_rx: Receiver<Completion>,
    picker: StrategyPicker,
    locks: LockTable,
    waiting: VecDeque<usize>,
    active: Vec<Option<QueryState>>,
    results: Vec<Option<Result<Relation, HostError>>>,
    per_query: Vec<QueryStats>,
    idle: Vec<usize>,
    /// Which workers have died (dispatch channel refused, or their drop
    /// guard reported in). Dead workers never rejoin the idle pool.
    dead: Vec<bool>,
    /// The unit each busy worker currently holds, kept so a dead worker's
    /// unit can be requeued.
    assigned: Vec<Option<(usize, usize, WorkKind)>>,
    next_base: usize,
    /// Global dispatch sequence number (the fault plan's unit key).
    next_seq: u64,
    finished: usize,
    dispatched: usize,
}

impl<'a> Scheduler<'a> {
    fn new(
        db: &'a Catalog,
        queries: &'a [QueryTree],
        plans: Vec<Arc<QueryPlan>>,
        params: &'a HostParams,
        work_txs: Vec<SyncSender<WorkUnit>>,
        done_rx: Receiver<Completion>,
    ) -> Scheduler<'a> {
        let n = queries.len();
        Scheduler {
            db,
            queries,
            plans,
            params,
            work_txs,
            done_rx,
            picker: StrategyPicker::new(params.strategy),
            locks: LockTable::new(),
            waiting: (0..n).collect(),
            active: (0..n).map(|_| None).collect(),
            results: (0..n).map(|_| None).collect(),
            per_query: vec![QueryStats::default(); n],
            idle: (0..params.workers).collect(),
            dead: vec![false; params.workers],
            assigned: (0..params.workers).map(|_| None).collect(),
            next_base: 0,
            next_seq: 0,
            finished: 0,
            dispatched: 0,
        }
    }

    /// Workers still able to serve units.
    fn alive(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// The installed tracer, if any. Borrows only the (shared) params
    /// reference, so it composes with mutable borrows of scheduler state.
    fn trace(&self) -> Option<&'a Tracer> {
        self.params.trace.as_deref()
    }

    fn run(mut self) -> HostResult<SchedulerOutcome> {
        self.admit_compatible()?;
        while self.finished < self.queries.len() {
            self.dispatch_ready();
            if self.finished == self.queries.len() {
                break;
            }
            if self.alive() == 0 {
                // The pool is gone. Drain completions that made it out
                // before the last death, then fail whatever still needs a
                // worker — a structured per-query error, never a hang.
                while let Ok(completion) = self.done_rx.try_recv() {
                    self.on_completion(completion)?;
                }
                if self.finished < self.queries.len() {
                    self.fail_survivorless_queries()?;
                }
                continue;
            }
            if self.dispatched == 0 {
                // Workers are alive and idle, yet nothing is in flight and
                // nothing was dispatchable: the firing bookkeeping broke.
                // The old scheduler `expect()`ed here; report instead.
                return Err(HostError::Stalled {
                    in_flight: 0,
                    waited: Duration::ZERO,
                    detail: self.stall_detail(),
                });
            }
            match self.done_rx.recv_timeout(self.params.stall_timeout) {
                Ok(completion) => self.on_completion(completion)?,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(HostError::Stalled {
                        in_flight: self.dispatched,
                        waited: self.params.stall_timeout,
                        detail: self.stall_detail(),
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every worker (and its death guard) is gone without a
                    // report — treat them all as dead; the next iteration
                    // fails the remaining queries.
                    for worker in 0..self.work_txs.len() {
                        self.on_worker_died(worker)?;
                    }
                }
            }
        }
        // Closing the dispatch channels shuts the workers down.
        self.work_txs.clear();
        let results = self
            .results
            .into_iter()
            .map(|r| r.expect("every query concluded"))
            .collect();
        Ok(SchedulerOutcome {
            results,
            per_query: self.per_query,
            dead: self.dead,
        })
    }

    /// One-line state dump for [`HostError::Stalled`].
    fn stall_detail(&self) -> String {
        let mut active = 0usize;
        let mut pending = 0usize;
        let mut in_flight = 0usize;
        for state in self.active.iter().flatten() {
            active += 1;
            in_flight += state.in_flight_total;
            pending += state.cells.iter().map(|c| c.pending.len()).sum::<usize>();
        }
        format!(
            "{}/{} queries finished, {active} active ({pending} pending units, \
             {in_flight} in flight), {} waiting on locks, {}/{} workers alive",
            self.finished,
            self.queries.len(),
            self.waiting.len(),
            self.alive(),
            self.work_txs.len()
        )
    }

    /// Admit every waiting query whose lock request is compatible, in
    /// arrival order (a non-conflicting younger query may overtake a
    /// blocked older one, like the ring MC).
    fn admit_compatible(&mut self) -> HostResult<()> {
        let mut still_waiting = VecDeque::new();
        while let Some(q) = self.waiting.pop_front() {
            let tree = &self.queries[q];
            let request = LockRequest::new(tree.referenced_relations(), tree.written_relations());
            if !self.locks.compatible(&request) {
                still_waiting.push_back(q);
                continue;
            }
            self.locks.grant(q, &request);
            self.admit(q)?;
        }
        self.waiting = still_waiting;
        Ok(())
    }

    /// Turn query `q` active: instantiate cell state and feed every scan
    /// cell's pages from the page store (the "disk" of the host machine —
    /// base relations are memory-resident `Arc` pages, shared not copied).
    fn admit(&mut self, q: usize) -> HostResult<()> {
        let plan = Arc::clone(&self.plans[q]);
        let cells = plan
            .cells
            .iter()
            .map(|spec| CellState {
                received: vec![Vec::new(); spec.arity],
                port_done: vec![false; spec.arity],
                ..CellState::default()
            })
            .collect();
        self.active[q] = Some(QueryState {
            plan: Arc::clone(&plan),
            cells,
            base: self.next_base,
            admitted_at: Instant::now(),
            result_pages: Vec::new(),
            stats: QueryStats::default(),
            in_flight_total: 0,
            failed: None,
        });
        self.next_base += plan.cells.len();
        if let Some(t) = self.trace() {
            t.record(
                EventKind::QueryAdmit,
                q as u32,
                u32::MAX,
                plan.cells.len() as u64,
                0,
            );
        }

        for (idx, spec) in plan.cells.iter().enumerate() {
            if spec.firing != Firing::Source {
                continue;
            }
            let Op::Scan { relation } = &spec.op else {
                unreachable!("source cells are scans");
            };
            let pages: Vec<Arc<Page>> = self.db.require(relation)?.pages().to_vec();
            self.route_output(q, idx, pages)?;
            self.complete_cell(q, idx)?;
        }
        Ok(())
    }

    /// Deliver `pages` produced by cell `from` to its parent (or the query
    /// result if `from` is the root).
    fn route_output(&mut self, q: usize, from: usize, pages: Vec<Arc<Page>>) -> HostResult<()> {
        if pages.is_empty() {
            return Ok(());
        }
        let state = self.active[q].as_mut().expect("query is active");
        match state.plan.cells[from].parent {
            None => state.result_pages.extend(pages),
            Some((parent, port)) => self.on_pages(q, parent, port, pages),
        }
        Ok(())
    }

    /// The §2 firing rule: operand pages arrived at `cell`'s `port`.
    fn on_pages(&mut self, q: usize, cell: usize, port: usize, pages: Vec<Arc<Page>>) {
        let trace = self.params.trace.as_deref();
        let state = self.active[q].as_mut().expect("query is active");
        let firing = state.plan.cells[cell].firing;
        let cs = &mut state.cells[cell];
        let mut fired = 0u64;
        match firing {
            Firing::Source => unreachable!("scan cells have no operands"),
            Firing::PerPage => {
                for p in pages {
                    cs.pending.push_back(WorkKind::Page(p));
                    fired += 1;
                }
            }
            Firing::PairSweep => {
                // Pair each new page with every opposite page received so
                // far; later opposite arrivals will pick this page up, so
                // each page pair is swept exactly once. The `OperandPage`
                // wrapper gives each page a per-cell key-index slot shared
                // by every pair unit that touches it.
                for p in pages {
                    let new_page = Arc::new(OperandPage::new(p));
                    let opposite = cs.received[1 - port].clone();
                    if !opposite.is_empty() {
                        cs.pending.push_back(WorkKind::Sweep {
                            new_page: Arc::clone(&new_page),
                            opposite,
                            new_is_outer: port == 0,
                        });
                        fired += 1;
                    }
                    cs.received[port].push(new_page);
                }
            }
            Firing::Complete => {
                cs.received[port].extend(pages.into_iter().map(|p| Arc::new(OperandPage::new(p))))
            }
        }
        if fired > 0 {
            if let Some(t) = trace {
                t.record(
                    EventKind::CellFire,
                    q as u32,
                    cell as u32,
                    cs.pending.len() as u64,
                    fired,
                );
            }
        }
    }

    /// Cell `cell` finished all its work: propagate completion upward.
    fn complete_cell(&mut self, q: usize, cell: usize) -> HostResult<()> {
        let state = self.active[q].as_mut().expect("query is active");
        debug_assert!(!state.cells[cell].complete);
        state.cells[cell].complete = true;
        let parent = state.plan.cells[cell].parent;
        match parent {
            None => self.finish_query(q)?,
            Some((parent, port)) => {
                let state = self.active[q].as_mut().expect("query is active");
                state.cells[parent].port_done[port] = true;
                self.try_fire_blocking(q, parent);
                self.try_complete(q, parent)?;
            }
        }
        Ok(())
    }

    /// A blocking cell with all operands complete fires its single unit.
    fn try_fire_blocking(&mut self, q: usize, cell: usize) {
        let state = self.active[q].as_mut().expect("query is active");
        let spec = &state.plan.cells[cell];
        let cs = &mut state.cells[cell];
        if spec.firing != Firing::Complete || cs.fired_blocking || !cs.port_done.iter().all(|&d| d)
        {
            return;
        }
        cs.fired_blocking = true;
        // Blocking kernels take plain pages; unwrap the operand wrappers
        // (their index slots are never populated for non-join cells).
        let unwrap = |ops: Vec<Arc<OperandPage>>| {
            ops.into_iter()
                .map(|op| Arc::clone(&op.page))
                .collect::<Vec<_>>()
        };
        let left = unwrap(std::mem::take(&mut cs.received[0]));
        let right = if spec.arity > 1 {
            unwrap(std::mem::take(&mut cs.received[1]))
        } else {
            Vec::new()
        };
        cs.pending.push_back(WorkKind::Complete { left, right });
        if let Some(t) = self.trace() {
            t.record(EventKind::CellFire, q as u32, cell as u32, 1, 1);
        }
    }

    /// Complete `cell` if its operands are done and no work is outstanding.
    fn try_complete(&mut self, q: usize, cell: usize) -> HostResult<()> {
        let state = self.active[q].as_mut().expect("query is active");
        let spec = &state.plan.cells[cell];
        let cs = &state.cells[cell];
        let blocked_on_fire = spec.firing == Firing::Complete && !cs.fired_blocking;
        if cs.complete
            || blocked_on_fire
            || !cs.port_done.iter().all(|&d| d)
            || !cs.pending.is_empty()
            || cs.in_flight > 0
        {
            return Ok(());
        }
        self.complete_cell(q, cell)
    }

    /// The root cell completed: assemble the result relation, release the
    /// query's locks, and admit whatever those locks were blocking.
    fn finish_query(&mut self, q: usize) -> HostResult<()> {
        let state = self.active[q].take().expect("query is active");
        let spec = &state.plan.cells[state.plan.root];
        let mut rel = Relation::new("result", spec.out_schema.clone(), spec.out_page_size)?;
        if self.params.deterministic {
            for page in canonicalize(&state.result_pages, &spec.out_schema, spec.out_page_size)? {
                rel.append_page(page)?;
            }
        } else {
            for page in state.result_pages {
                rel.append_page(page)?;
            }
        }
        let mut stats = state.stats;
        stats.result_tuples = rel.num_tuples();
        stats.result_payload_bytes = rel.tuple_refs().map(|t| t.raw().len() as u64).sum();
        stats.elapsed = state.admitted_at.elapsed();
        if let Some(t) = self.trace() {
            t.transfer(Path::QueryResult, q as u32, stats.result_payload_bytes);
            t.record(
                EventKind::QueryDone,
                q as u32,
                u32::MAX,
                0,
                stats.result_tuples as u64,
            );
        }
        self.per_query[q] = stats;
        self.results[q] = Some(Ok(rel));
        self.finished += 1;
        self.locks.release(q);
        self.admit_compatible()
    }

    /// Doom query `q`: record `err` (first fault wins), discard its
    /// not-yet-dispatched work, and conclude it once nothing of it remains
    /// in flight. Everything else the scheduler holds keeps running.
    fn fail_query(&mut self, q: usize, err: HostError) -> HostResult<()> {
        let Some(state) = self.active[q].as_mut() else {
            return Ok(());
        };
        if state.failed.is_none() {
            state.failed = Some(err);
            for cs in &mut state.cells {
                cs.pending.clear();
            }
        }
        if state.in_flight_total == 0 {
            self.conclude_failed(q)?;
        }
        Ok(())
    }

    /// The last in-flight unit of a doomed query drained: publish its
    /// error, release its locks, and admit whatever those locks blocked.
    fn conclude_failed(&mut self, q: usize) -> HostResult<()> {
        let state = self.active[q].take().expect("query is active");
        let err = state.failed.expect("concluding a query that never failed");
        let mut stats = state.stats;
        stats.elapsed = state.admitted_at.elapsed();
        if let Some(t) = self.trace() {
            t.record(EventKind::QueryDone, q as u32, u32::MAX, 1, 0);
        }
        self.per_query[q] = stats;
        self.results[q] = Some(Err(err));
        self.finished += 1;
        self.locks.release(q);
        self.admit_compatible()
    }

    /// The whole pool is dead: every query still needing worker service
    /// fails with a structured error. (Queries admitted by the released
    /// locks may still *complete* here — a scan-only query needs no
    /// worker — so this loops via `admit_compatible` until quiescent.)
    fn fail_survivorless_queries(&mut self) -> HostResult<()> {
        for q in 0..self.queries.len() {
            if self.active[q].is_some() {
                self.fail_query(
                    q,
                    HostError::WorkersExhausted {
                        workers: self.params.workers,
                    },
                )?;
            }
        }
        Ok(())
    }

    /// Worker `worker` died: shrink the pool and requeue whatever unit it
    /// held so a survivor can serve it. Idempotent — the death may be
    /// noticed twice (a refused dispatch, then the drop-guard report).
    fn on_worker_died(&mut self, worker: usize) -> HostResult<()> {
        if self.dead[worker] {
            return Ok(());
        }
        self.dead[worker] = true;
        self.idle.retain(|&w| w != worker);
        if let Some(t) = self.trace() {
            t.record_global(EventKind::Fault, 1, worker as u64);
        }
        if let Some((q, cell, kind)) = self.assigned[worker].take() {
            self.dispatched -= 1;
            let state = self.active[q].as_mut().expect("query is active");
            state.cells[cell].in_flight -= 1;
            state.in_flight_total -= 1;
            if state.failed.is_some() {
                if state.in_flight_total == 0 {
                    self.conclude_failed(q)?;
                }
            } else {
                state.stats.requeued_units += 1;
                state.cells[cell].pending.push_front(kind);
                if let Some(t) = self.trace() {
                    t.record(EventKind::Fault, q as u32, cell as u32, 2, worker as u64);
                }
            }
        }
        Ok(())
    }

    /// While a worker is idle and ready work exists, let the allocation
    /// policy pick the instruction to serve and dispatch one of its units.
    fn dispatch_ready(&mut self) {
        if let Some(t) = self.trace() {
            if t.is_enabled() {
                let pending: usize = self
                    .active
                    .iter()
                    .flatten()
                    .flat_map(|s| s.cells.iter().map(|c| c.pending.len()))
                    .sum();
                t.record(
                    EventKind::QueueDepth,
                    u32::MAX,
                    u32::MAX,
                    pending as u64,
                    self.idle.len() as u64,
                );
            }
        }
        while let Some(&worker) = self.idle.last() {
            let mut candidates: Vec<WorkCandidate> = Vec::new();
            let mut owners: Vec<(usize, usize)> = Vec::new();
            for (q, state) in self.active.iter().enumerate() {
                let Some(state) = state else { continue };
                for (c, cs) in state.cells.iter().enumerate() {
                    if !cs.pending.is_empty() {
                        candidates.push(WorkCandidate {
                            instr: state.base + c,
                            in_flight: cs.in_flight,
                            depth: state.plan.cells[c].depth,
                        });
                        owners.push((q, c));
                    }
                }
            }
            if candidates.is_empty() {
                return;
            }
            let instr = self.picker.pick(&candidates);
            let (q, c) = owners[candidates
                .iter()
                .position(|cand| cand.instr == instr)
                .expect("picker returns a candidate id")];
            let state = self.active[q].as_mut().expect("query is active");
            let kind = state.cells[c]
                .pending
                .pop_front()
                .expect("candidate has pending work");
            let seq = self.next_seq;
            let unit = WorkUnit {
                plan: Arc::clone(&state.plan),
                query: q,
                cell: c,
                kind: kind.clone(),
                seq,
                fault: self.params.fault.fault_for(seq),
            };
            self.idle.pop();
            match self.work_txs[worker].send(unit) {
                Ok(()) => {
                    self.next_seq += 1;
                    self.dispatched += 1;
                    self.assigned[worker] = Some((q, c, kind));
                    let state = self.active[q].as_mut().expect("query is active");
                    state.cells[c].in_flight += 1;
                    state.in_flight_total += 1;
                    if let Some(t) = self.trace() {
                        t.record(
                            EventKind::UnitDispatch,
                            q as u32,
                            c as u32,
                            seq,
                            worker as u64,
                        );
                    }
                }
                Err(refused) => {
                    // The worker's receiver is gone: it died before ever
                    // accepting work. Shrink the pool, requeue the unit,
                    // and keep dispatching to the survivors.
                    self.dead[worker] = true;
                    let state = self.active[q].as_mut().expect("query is active");
                    state.cells[c].pending.push_front(refused.0.kind);
                    state.stats.requeued_units += 1;
                    if let Some(t) = self.trace() {
                        t.record(EventKind::Fault, q as u32, c as u32, 2, worker as u64);
                    }
                }
            }
        }
    }

    /// A worker reported back: account for the unit, route its output,
    /// and cascade whatever that unblocks — or contain its failure.
    fn on_completion(&mut self, completion: Completion) -> HostResult<()> {
        match completion {
            Completion::WorkerDied { worker } => self.on_worker_died(worker),
            Completion::Done {
                worker,
                query: q,
                cell,
                pages,
                pages_in,
                bytes_in,
                bytes_out,
                class,
            } => {
                self.recycle_worker(worker);
                self.dispatched -= 1;
                let state = self.active[q].as_mut().expect("query is active");
                state.cells[cell].in_flight -= 1;
                state.in_flight_total -= 1;
                state.stats.units_fired += 1;
                match class {
                    UnitClass::Probe => state.stats.probe_units += 1,
                    UnitClass::Sweep => state.stats.sweep_units += 1,
                    UnitClass::Other => {}
                }
                state.stats.pages_moved += pages_in + pages.len();
                state.stats.bytes_moved += bytes_in + bytes_out;
                if state.failed.is_some() {
                    // A late completion of an already-doomed query: the
                    // work is discarded, the worker goes back to the pool.
                    if state.in_flight_total == 0 {
                        self.conclude_failed(q)?;
                    }
                    return Ok(());
                }
                self.route_output(q, cell, pages)?;
                self.try_complete(q, cell)
            }
            Completion::Failed {
                worker,
                query: q,
                cell,
                payload,
            } => {
                // The panic was contained on the worker; it lives on and
                // rejoins the pool. Only the owning query is doomed.
                self.recycle_worker(worker);
                self.dispatched -= 1;
                let state = self.active[q].as_mut().expect("query is active");
                state.cells[cell].in_flight -= 1;
                state.in_flight_total -= 1;
                state.stats.units_fired += 1;
                state.stats.failed_units += 1;
                let op = state.plan.cells[cell].op.name().to_string();
                if let Some(t) = self.trace() {
                    t.record(EventKind::Fault, q as u32, cell as u32, 0, worker as u64);
                }
                self.fail_query(
                    q,
                    HostError::UnitPanicked {
                        query: q,
                        cell,
                        op,
                        payload,
                    },
                )
            }
        }
    }

    /// Return `worker` to the idle pool (unless it has since died).
    fn recycle_worker(&mut self, worker: usize) {
        self.assigned[worker] = None;
        if !self.dead[worker] {
            self.idle.push(worker);
        }
    }
}

/// Sort result tuple images lexicographically and repack them into full
/// pages — the deterministic-mode canonical form. The tuple encoding is
/// canonical (equal tuples ⟺ equal images), so byte order is a total,
/// run-independent order.
fn canonicalize(
    pages: &[Arc<Page>],
    schema: &Schema,
    page_size: usize,
) -> df_relalg::Result<Vec<Page>> {
    let mut images: Vec<&[u8]> = pages
        .iter()
        .flat_map(|p| p.tuple_refs().map(|t| t.raw()).collect::<Vec<_>>())
        .collect();
    images.sort_unstable();
    let mut out: Vec<Page> = Vec::new();
    for img in images {
        if out.last().map_or(true, Page::is_full) {
            out.push(Page::new(schema.clone(), page_size)?);
        }
        out.last_mut().expect("just pushed").push_raw(img)?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Workers (the IPs)
// ---------------------------------------------------------------------------

/// Accumulates kernel output batches into output pages, draining each
/// [`TupleBuf`] page-at-a-time (the IP output buffer of §4.2).
struct OutputPager {
    schema: Schema,
    page_size: usize,
    pages: Vec<Page>,
}

impl OutputPager {
    fn new(schema: Schema, page_size: usize) -> OutputPager {
        OutputPager {
            schema,
            page_size,
            pages: Vec::new(),
        }
    }

    fn absorb(&mut self, buf: &mut TupleBuf) {
        while !buf.is_empty() {
            if self.pages.last().map_or(true, Page::is_full) {
                self.pages.push(
                    Page::new(self.schema.clone(), self.page_size)
                        .expect("cell page size fits one tuple"),
                );
            }
            buf.drain_into(self.pages.last_mut().expect("just pushed"));
        }
    }

    fn finish(self) -> Vec<Arc<Page>> {
        self.pages
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(Arc::new)
            .collect()
    }
}

/// Announces a worker's death to the scheduler if its thread exits any way
/// other than the orderly shutdown paths (which disarm it): an injected
/// dead-at-start fault, or a panic escaping the kernel guard.
struct DeathGuard {
    id: usize,
    done: SyncSender<Completion>,
    armed: bool,
}

impl Drop for DeathGuard {
    fn drop(&mut self) {
        if self.armed {
            // The scheduler may itself be gone (error path) — best effort.
            let _ = self.done.send(Completion::WorkerDied { worker: self.id });
        }
    }
}

/// Render a caught panic payload for the [`HostError::UnitPanicked`] report.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker thread: receive, execute a `*_raw` kernel under a panic
/// guard, send pages (or the contained failure) back.
fn worker_loop(
    id: usize,
    rx: Receiver<WorkUnit>,
    done: SyncSender<Completion>,
    poisoned: Arc<AtomicBool>,
    dead_at_start: bool,
    trace: Option<Arc<Tracer>>,
) -> WorkerStats {
    let spawned = Instant::now();
    let mut stats = WorkerStats::default();
    let mut guard = DeathGuard {
        id,
        done: done.clone(),
        armed: true,
    };
    if dead_at_start {
        // Injected fault: this IP never comes up. Returning with the guard
        // armed reports the death to the scheduler.
        stats.wall = spawned.elapsed();
        return stats;
    }
    while let Ok(unit) = rx.recv() {
        if poisoned.load(Ordering::Relaxed) {
            break;
        }
        // A fused span unit runs `k` logical operators in one kernel; each
        // still counts as its own kernel span (start/end pair, busy time
        // split evenly) so the per-operator accounting — and the df-obs
        // conservation identities over it — hold in both transfer modes.
        let logical_kernels = unit.plan.cells[unit.cell].steps.len().max(1);
        let span = trace
            .as_deref()
            .map(|t| t.span(unit.query as u32, unit.cell as u32, unit.seq));
        let t0 = Instant::now();
        let executed = catch_unwind(AssertUnwindSafe(|| {
            match unit.fault {
                Some(InjectedFault::Panic) => {
                    panic!("injected fault: kernel panic on unit {}", unit.seq)
                }
                Some(InjectedFault::Delay(d)) => thread::sleep(d),
                None => {}
            }
            execute_unit(&unit)
        }));
        let busy = t0.elapsed();
        stats.units += 1;
        stats.busy += busy;
        stats.kernel_spans += logical_kernels;
        if let (Some(t), Some(span)) = (trace.as_deref(), span) {
            let class = match &executed {
                Ok((_, _, _, UnitClass::Probe)) => 1,
                Ok((_, _, _, UnitClass::Sweep)) => 2,
                _ => 0,
            };
            let per = busy.as_nanos() as u64 / logical_kernels as u64;
            span.end_with(
                t,
                class,
                busy.as_nanos() as u64 - per * (logical_kernels - 1) as u64,
            );
            for _ in 1..logical_kernels {
                let extra = t.span(unit.query as u32, unit.cell as u32, unit.seq);
                extra.end_with(t, class, per);
            }
        }
        let completion = match executed {
            Ok((pages, pages_in, bytes_in, class)) => {
                let bytes_out: u64 = pages.iter().map(|p| p.wire_bytes() as u64).sum();
                stats.bytes_in += bytes_in;
                stats.bytes_out += bytes_out;
                if let Some(t) = trace.as_deref() {
                    // Operand pages crossed the distribution network to
                    // this IP; result pages go back over arbitration.
                    t.transfer(Path::Distribution, unit.query as u32, bytes_in);
                    t.transfer(Path::Arbitration, unit.query as u32, bytes_out);
                }
                Completion::Done {
                    worker: id,
                    query: unit.query,
                    cell: unit.cell,
                    pages,
                    pages_in,
                    bytes_in,
                    bytes_out,
                    class,
                }
            }
            Err(payload) => {
                // Contained: report the failure and keep serving. The IP
                // survives its instruction the way the paper's distributed
                // control survives a node.
                stats.panics += 1;
                Completion::Failed {
                    worker: id,
                    query: unit.query,
                    cell: unit.cell,
                    payload: panic_message(payload.as_ref()),
                }
            }
        };
        let s0 = Instant::now();
        let sent = done.send(completion);
        stats.send_wait += s0.elapsed();
        if sent.is_err() {
            // Scheduler gone (error path): stop quietly.
            poisoned.store(true, Ordering::Relaxed);
            break;
        }
    }
    guard.armed = false;
    stats.wall = spawned.elapsed();
    stats
}

/// Run the kernel for one work unit. Returns (output pages, operand page
/// count, operand bytes, unit class).
fn execute_unit(unit: &WorkUnit) -> (Vec<Arc<Page>>, usize, u64, UnitClass) {
    let spec = &unit.plan.cells[unit.cell];
    let mut pager = OutputPager::new(spec.out_schema.clone(), spec.out_page_size);
    let count = |pages: &[Arc<Page>]| {
        (
            pages.len(),
            pages.iter().map(|p| p.wire_bytes() as u64).sum::<u64>(),
        )
    };
    let count_ops = |pages: &[Arc<OperandPage>]| {
        (
            pages.len(),
            pages
                .iter()
                .map(|p| p.page.wire_bytes() as u64)
                .sum::<u64>(),
        )
    };
    let mut class = UnitClass::Other;

    // A fused span cell (pipeline mode) runs its whole restrict→project
    // chain over the operand page in one kernel — `spec.op` is only the
    // chain's bottom operator, so it must not reach the per-op match below.
    if !spec.steps.is_empty() {
        let WorkKind::Page(page) = &unit.kind else {
            unreachable!("span cells fire per page");
        };
        pager.absorb(&mut span_page_raw(page, &spec.steps, &spec.out_schema));
        return (pager.finish(), 1, page.wire_bytes() as u64, class);
    }

    let (pages_in, bytes_in) = match (&spec.op, &unit.kind) {
        (Op::Restrict { predicate }, WorkKind::Page(page)) => {
            pager.absorb(&mut restrict_page_raw(page, predicate));
            (1, page.wire_bytes() as u64)
        }
        (Op::Project { projection, dedup }, WorkKind::Page(page)) => {
            debug_assert!(!dedup, "dedup project fires on complete operands");
            pager.absorb(&mut project_page_raw(page, projection, &spec.out_schema));
            (1, page.wire_bytes() as u64)
        }
        (
            Op::Join { condition },
            WorkKind::Sweep {
                new_page,
                opposite,
                new_is_outer,
            },
        ) => {
            // The hash path applies per cell, not per pair: both operands'
            // schemas are fixed, so applicability is uniform across the
            // unit's pairs. The inner page is indexed on the condition's
            // right attribute (the inner side is always port 1); probing
            // outer slots in page order reproduces the nested-loops output
            // byte for byte.
            let applicable = unit.plan.join == JoinAlgo::Hash && {
                let (outer, inner) = if *new_is_outer {
                    (&new_page.page, &opposite[0].page)
                } else {
                    (&opposite[0].page, &new_page.page)
                };
                hash_join_applicable(outer.schema(), inner.schema(), condition)
            };
            class = if applicable {
                UnitClass::Probe
            } else {
                UnitClass::Sweep
            };
            for opp in opposite {
                let (outer, inner) = if *new_is_outer {
                    (new_page.as_ref(), opp.as_ref())
                } else {
                    (opp.as_ref(), new_page.as_ref())
                };
                if applicable {
                    pager.absorb(&mut hash_join_probe(
                        &outer.page,
                        &inner.page,
                        inner.index_for(condition.right),
                        condition,
                        &spec.out_schema,
                    ));
                } else {
                    pager.absorb(&mut join_pages_raw(
                        &outer.page,
                        &inner.page,
                        condition,
                        &spec.out_schema,
                    ));
                }
            }
            let (n, b) = count_ops(opposite);
            (n + 1, b + new_page.page.wire_bytes() as u64)
        }
        (
            Op::CrossProduct,
            WorkKind::Sweep {
                new_page,
                opposite,
                new_is_outer,
            },
        ) => {
            class = UnitClass::Sweep;
            for opp in opposite {
                let (outer, inner) = if *new_is_outer {
                    (&new_page.page, &opp.page)
                } else {
                    (&opp.page, &new_page.page)
                };
                pager.absorb(&mut cross_pages_raw(outer, inner, &spec.out_schema));
            }
            let (n, b) = count_ops(opposite);
            (n + 1, b + new_page.page.wire_bytes() as u64)
        }
        (Op::Union, WorkKind::Complete { left, right }) => {
            let l: Vec<&Page> = left.iter().map(Arc::as_ref).collect();
            let r: Vec<&Page> = right.iter().map(Arc::as_ref).collect();
            pager.absorb(&mut union_pages_raw(&l, &r, &spec.out_schema));
            let ((ln, lb), (rn, rb)) = (count(left), count(right));
            (ln + rn, lb + rb)
        }
        (Op::Difference, WorkKind::Complete { left, right }) => {
            let l: Vec<&Page> = left.iter().map(Arc::as_ref).collect();
            let r: Vec<&Page> = right.iter().map(Arc::as_ref).collect();
            pager.absorb(&mut difference_pages_raw(&l, &r, &spec.out_schema));
            let ((ln, lb), (rn, rb)) = (count(left), count(right));
            (ln + rn, lb + rb)
        }
        (Op::Project { projection, dedup }, WorkKind::Complete { left, .. }) => {
            debug_assert!(*dedup, "plain project fires per page");
            // Two phases on one worker: attribute elimination (the
            // parallelizable part), then global duplicate elimination over
            // the projected pages (the paper's §5 blocking tail).
            let mut projected = OutputPager::new(spec.out_schema.clone(), spec.out_page_size);
            for page in left {
                projected.absorb(&mut project_page_raw(page, projection, &spec.out_schema));
            }
            let projected_pages = projected.pages;
            let refs: Vec<&Page> = projected_pages.iter().collect();
            pager.absorb(&mut dedup_pages_raw(&refs, &spec.out_schema));
            count(left)
        }
        (op, kind) => unreachable!(
            "operator `{}` never receives work of kind {kind:?}",
            op.name()
        ),
    };
    (pager.finish(), pages_in, bytes_in, class)
}

//! Query compilation: a validated [`QueryTree`] becomes a vector of
//! *instruction cells*, the host executor's counterpart of the paper's
//! instructions held by memory cells / ICs. Each cell knows its operator,
//! its derived output schema, its parent (and which operand port of the
//! parent it feeds), and its depth from the root (the `RootFirst` policy's
//! input).

use df_core::{JoinAlgo, TransferMode};
use df_query::ops::SpanStep;
use df_query::{validate, Op, QueryTree};
use df_relalg::{Catalog, Schema, PAGE_HEADER_BYTES};

use crate::error::{HostError, HostResult};

/// How the scheduler treats a cell's arriving operand pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Firing {
    /// Leaf: pages come from the page store at admission, no work units.
    Source,
    /// One work unit per arriving operand page (restrict, non-dedup
    /// project) — the §3.2 page-granularity firing rule.
    PerPage,
    /// One work unit per (new page × opposite pages so far) sweep (join,
    /// cross product) — the paper's independent nested-loops work units.
    PairSweep,
    /// One work unit once every operand is complete (union, difference,
    /// dedup project) — the operators the paper calls out as blocking.
    Complete,
}

/// One compiled instruction cell.
#[derive(Debug, Clone)]
pub(crate) struct CellSpec {
    /// The relational operation (predicates/projections pre-resolved by the
    /// tree builder, re-checked by `validate`).
    pub op: Op,
    /// Derived output schema.
    pub out_schema: Schema,
    /// `(parent cell, operand port)` — `None` for the root.
    pub parent: Option<(usize, usize)>,
    /// Distance from the root (root = 0).
    pub depth: usize,
    /// Number of operand ports (= the operator's arity).
    pub arity: usize,
    /// Firing discipline.
    pub firing: Firing,
    /// Page size for this cell's output pages: the configured size, grown
    /// if necessary so at least one (possibly very wide) tuple fits.
    pub out_page_size: usize,
    /// Non-empty only under [`TransferMode::Pipeline`]: this cell is a
    /// *fused span* standing in for a maximal restrict→project chain. The
    /// steps run bottom (this cell's original operator) to top per operand
    /// page in one work unit; `op` keeps the bottom operator for
    /// diagnostics, `out_schema`/`out_page_size`/`parent`/`depth` are the
    /// chain top's. The absorbed upper cells stay in `cells` (indices are
    /// tree node ids) but nothing ever routes pages to them.
    pub steps: Vec<SpanStep>,
}

/// A compiled query: cells in topological (leaf-before-parent) order, the
/// root last by construction of [`QueryTree`].
#[derive(Debug, Clone)]
pub(crate) struct QueryPlan {
    pub cells: Vec<CellSpec>,
    pub root: usize,
    /// Join algorithm every pair-sweep cell of this plan runs with.
    pub join: JoinAlgo,
}

impl QueryPlan {
    /// Compile `tree` against `db`.
    ///
    /// # Errors
    /// Fails on validation errors ([`HostError::Data`]), and on update
    /// operators ([`HostError::ReadOnlyExecutor`]): the host executor runs
    /// read-only queries (updates stay on the oracle and the simulated
    /// machines, which own catalog mutation).
    pub fn build(
        db: &Catalog,
        tree: &QueryTree,
        page_size: usize,
        join: JoinAlgo,
        transfer: TransferMode,
    ) -> HostResult<QueryPlan> {
        let schemas = validate(db, tree)?;
        let parents = tree.parents();

        // Depth from the root: walk parents (children have smaller ids, so
        // a reverse sweep sees every parent before its children).
        let mut depth = vec![0usize; tree.len()];
        for id in tree.topo_order().collect::<Vec<_>>().into_iter().rev() {
            if let Some(p) = parents[id.0] {
                depth[id.0] = depth[p.0] + 1;
            }
        }

        let mut cells = Vec::with_capacity(tree.len());
        for id in tree.topo_order() {
            let node = tree.node(id);
            let firing = match &node.op {
                Op::Scan { .. } => Firing::Source,
                Op::Restrict { .. } => Firing::PerPage,
                Op::Project { dedup, .. } => {
                    if *dedup {
                        Firing::Complete
                    } else {
                        Firing::PerPage
                    }
                }
                Op::Join { .. } | Op::CrossProduct => Firing::PairSweep,
                Op::Union | Op::Difference => Firing::Complete,
                Op::Append { .. } | Op::Delete { .. } => {
                    return Err(HostError::ReadOnlyExecutor {
                        op: node.op.name().to_string(),
                    });
                }
            };
            let out_schema = schemas.schema(id).clone();
            let out_page_size = page_size.max(PAGE_HEADER_BYTES + out_schema.tuple_width());
            let parent = parents[id.0].map(|p| {
                let port = tree
                    .node(p)
                    .children
                    .iter()
                    .position(|c| *c == id)
                    .expect("parents() is consistent with children");
                (p.0, port)
            });
            cells.push(CellSpec {
                op: node.op.clone(),
                out_schema,
                parent,
                depth: depth[id.0],
                arity: node.op.arity(),
                firing,
                out_page_size,
                steps: Vec::new(),
            });
        }
        let mut plan = QueryPlan {
            cells,
            root: tree.root().0,
            join,
        };
        if transfer == TransferMode::Pipeline {
            plan.fuse_spans();
        }
        Ok(plan)
    }

    /// The pipeline post-pass: collapse every maximal chain of per-page
    /// restrict/project cells into one fused span cell.
    ///
    /// Cell indices are tree node ids (the scheduler addresses cells by
    /// them), so unlike the simulated machines' compiler this pass never
    /// renumbers: the chain's *bottom* cell is rewritten in place to carry
    /// the whole chain, and the absorbed upper cells are left inert — with
    /// the bottom's `parent` repointed past them, no page is ever routed
    /// their way, no unit ever fires on them, and cell completion never
    /// consults them.
    fn fuse_spans(&mut self) {
        let fusible = |spec: &CellSpec| {
            spec.firing == Firing::PerPage
                && matches!(
                    spec.op,
                    Op::Restrict { .. } | Op::Project { dedup: false, .. }
                )
        };
        // A chain bottom is a fusible cell not fed by another fusible cell.
        let mut fed_by_fusible = vec![false; self.cells.len()];
        for spec in self.cells.iter().filter(|s| fusible(s)) {
            if let Some((p, _)) = spec.parent {
                if fusible(&self.cells[p]) {
                    fed_by_fusible[p] = true;
                }
            }
        }
        for (bottom, &fed) in fed_by_fusible.iter().enumerate() {
            if fed || !fusible(&self.cells[bottom]) {
                continue;
            }
            // Walk up while the parent is fusible too.
            let mut chain = vec![bottom];
            while let Some((p, _)) = self.cells[*chain.last().expect("nonempty")].parent {
                if !fusible(&self.cells[p]) {
                    break;
                }
                chain.push(p);
            }
            if chain.len() < 2 {
                continue;
            }
            let steps: Vec<SpanStep> = chain
                .iter()
                .map(|&c| match &self.cells[c].op {
                    Op::Restrict { predicate } => SpanStep::Restrict(predicate.clone()),
                    Op::Project { projection, .. } => SpanStep::Project(projection.clone()),
                    other => unreachable!("non-fusible op `{}` in a chain", other.name()),
                })
                .collect();
            let top = *chain.last().expect("nonempty");
            let top_spec = self.cells[top].clone();
            let spec = &mut self.cells[bottom];
            spec.steps = steps;
            spec.out_schema = top_spec.out_schema;
            spec.out_page_size = top_spec.out_page_size;
            spec.parent = top_spec.parent;
            spec.depth = top_spec.depth;
            if self.root == top {
                self.root = bottom;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_query::TreeBuilder;
    use df_relalg::{CmpOp, DataType, Relation, Schema, Tuple, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let s = Schema::build()
            .attr("id", DataType::Int)
            .attr("dept", DataType::Int)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "emp",
                s,
                1024,
                (0..8).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 2)])),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn compiles_shapes_and_depths() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Gt, Value::Int(2))
            .unwrap()
            .equi_join(b.scan("emp").unwrap(), "dept", "dept")
            .unwrap()
            .finish();
        let plan =
            QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Materialize).unwrap();
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.root, 3);
        assert_eq!(plan.cells[plan.root].depth, 0);
        assert_eq!(plan.cells[plan.root].firing, Firing::PairSweep);
        assert_eq!(plan.cells[0].firing, Firing::Source);
        // scan -> restrict (port 0 of the join's outer side).
        assert_eq!(plan.cells[0].parent, Some((1, 0)));
        assert_eq!(plan.cells[1].parent, Some((3, 0)));
        assert_eq!(plan.cells[2].parent, Some((3, 1)));
        assert_eq!(plan.cells[0].depth, 2);
        // Join output is wider than either input.
        assert_eq!(plan.cells[3].out_schema.arity(), 4);
    }

    #[test]
    fn dedup_project_is_blocking_and_plain_is_not() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .scan("emp")
            .unwrap()
            .project(&["dept"], true)
            .unwrap()
            .finish();
        let plan =
            QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Materialize).unwrap();
        assert_eq!(plan.cells[1].firing, Firing::Complete);
        let q = TreeBuilder::new(&db)
            .scan("emp")
            .unwrap()
            .project(&["dept"], false)
            .unwrap()
            .finish();
        let plan =
            QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Materialize).unwrap();
        assert_eq!(plan.cells[1].firing, Firing::PerPage);
    }

    #[test]
    fn tiny_page_size_grows_to_fit_one_tuple() {
        let db = db();
        let q = TreeBuilder::new(&db).scan("emp").unwrap().finish();
        let plan =
            QueryPlan::build(&db, &q, 8, JoinAlgo::Nested, TransferMode::Materialize).unwrap();
        assert!(plan.cells[0].out_page_size >= PAGE_HEADER_BYTES + 16);
    }

    #[test]
    fn pipeline_fuses_chain_without_renumbering() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Gt, Value::Int(2))
            .unwrap()
            .project(&["dept"], false)
            .unwrap()
            .finish();
        let plan =
            QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Pipeline).unwrap();
        // Cells keep their tree-node indices; the restrict (cell 1) became
        // the span, absorbing the project (cell 2), and took over as root.
        assert_eq!(plan.cells.len(), 3);
        assert_eq!(plan.root, 1);
        let span = &plan.cells[1];
        assert_eq!(span.steps.len(), 2);
        assert!(matches!(span.steps[0], SpanStep::Restrict(_)));
        assert!(matches!(span.steps[1], SpanStep::Project(_)));
        assert_eq!(span.parent, None);
        assert_eq!(span.out_schema.arity(), 1);
        assert_eq!(span.firing, Firing::PerPage);
        // The scan still feeds the span cell at port 0.
        assert_eq!(plan.cells[0].parent, Some((1, 0)));
        // Materialize mode leaves the chain unfused.
        let plan =
            QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Materialize).unwrap();
        assert_eq!(plan.root, 2);
        assert!(plan.cells.iter().all(|c| c.steps.is_empty()));
    }

    #[test]
    fn pipeline_fuses_legs_below_a_join() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let left = b
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Gt, Value::Int(1))
            .unwrap()
            .restrict_where("id", CmpOp::Lt, Value::Int(6))
            .unwrap();
        let q = left
            .equi_join(b.scan("emp").unwrap(), "dept", "dept")
            .unwrap()
            .finish();
        let plan =
            QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Pipeline).unwrap();
        // scan(0) -> restrict(1) -> restrict(2) -> join(4) <- scan(3); the
        // two restricts fuse into cell 1, feeding the join's port 0.
        let span = &plan.cells[1];
        assert_eq!(span.steps.len(), 2);
        assert_eq!(span.parent, Some((4, 0)));
        assert_eq!(plan.root, 4);
        // A lone restrict (or project) never fuses: chain length 1.
        let q = TreeBuilder::new(&db)
            .scan("emp")
            .unwrap()
            .restrict_where("id", CmpOp::Gt, Value::Int(2))
            .unwrap()
            .finish();
        let plan =
            QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Pipeline).unwrap();
        assert!(plan.cells.iter().all(|c| c.steps.is_empty()));
    }

    #[test]
    fn rejects_updates() {
        let db = db();
        let q = TreeBuilder::new(&db)
            .delete_where("emp", "id", CmpOp::Eq, Value::Int(0))
            .unwrap();
        let err = QueryPlan::build(&db, &q, 1024, JoinAlgo::Nested, TransferMode::Materialize)
            .unwrap_err();
        assert!(err.to_string().contains("read-only"));
    }
}

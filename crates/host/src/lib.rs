//! # df-host — the data-flow machine on real threads
//!
//! The simulated machines (`df-sim`, `df-ring`) measure the paper's design
//! in virtual time; this crate *runs* it, mapping the hardware of Boral &
//! DeWitt's data-flow database machine onto one OS process:
//!
//! | paper component                  | host construct                        |
//! |----------------------------------|---------------------------------------|
//! | master controller + ICs          | scheduler (the calling thread)        |
//! | instruction memory cells         | per-cell operand page tables          |
//! | instruction processors (IPs)     | worker threads                        |
//! | distribution network             | bounded per-worker dispatch channels  |
//! | arbitration network              | bounded shared completion channel     |
//! | disk cache / mass storage        | `Catalog` page store (`Arc<Page>`s)   |
//!
//! Queries fire at **page granularity** (§3.2): a cell becomes eligible the
//! moment an operand page lands, so restriction of page *k* overlaps the
//! join of page *k − 1* on another core. Which eligible instruction a freed
//! worker serves is decided by the same [`df_core::AllocationStrategy`]
//! policies the simulators sweep. Concurrent queries are admitted under the
//! relation-granularity [`df_core::LockTable`] shared with the ring
//! machine's MC.
//!
//! Faults are contained, not fatal (§4's case for distributed control): a
//! kernel panic is caught on the worker and fails only the owning query; a
//! worker thread that dies shrinks the pool and its unit is requeued on a
//! survivor; anomalies surface as a structured [`HostError`], never a hang
//! — and a deterministic [`FaultPlan`] injects all of these on demand.
//!
//! ```
//! use df_host::{run_host_query, HostParams};
//! use df_query::TreeBuilder;
//! use df_relalg::{Catalog, DataType, Relation, Schema, Tuple, Value};
//!
//! let mut db = Catalog::new();
//! let schema = Schema::build().attr("id", DataType::Int).finish().unwrap();
//! db.insert(Relation::from_tuples(
//!     "r", schema, 256,
//!     (0..100).map(|i| Tuple::new(vec![Value::Int(i)])),
//! ).unwrap()).unwrap();
//!
//! let query = TreeBuilder::new(&db)
//!     .scan("r").unwrap()
//!     .restrict_where("id", df_relalg::CmpOp::Lt, Value::Int(10)).unwrap()
//!     .finish();
//! let (result, metrics) = run_host_query(&db, &query, &HostParams::with_workers(2)).unwrap();
//! assert_eq!(result.num_tuples(), 10);
//! assert!(metrics.total_units() > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod error;
mod exec;
mod fault;
mod metrics;
mod params;
mod plan;
mod view;

pub use error::{HostError, HostResult};
pub use exec::{run_host_queries, run_host_query, HostRunOutput};
pub use fault::FaultPlan;
pub use metrics::{HostMetrics, QueryStats, WorkerStats};
pub use params::HostParams;
pub use view::{StandingView, ViewUpdate};

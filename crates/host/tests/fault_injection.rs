//! Fault containment: injected worker failures must stay contained — the
//! victim query gets a structured error, every concurrent query's result
//! stays byte-identical to a fault-free run, and the run always
//! terminates (structured error, never a hang).

use std::time::Duration;

use df_host::{run_host_queries, run_host_query, FaultPlan, HostError, HostParams};
use df_query::{execute_readonly, ExecParams, QueryTree};
use df_relalg::{Catalog, Relation};
use df_workload::{benchmark_queries, generate_database, BenchmarkSpec};

fn setup() -> (Catalog, Vec<QueryTree>) {
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).expect("benchmark queries build");
    (db, queries)
}

fn oracles(db: &Catalog, queries: &[QueryTree]) -> Vec<Relation> {
    queries
        .iter()
        .map(|q| execute_readonly(db, q, &ExecParams::default()).expect("oracle executes"))
        .collect()
}

/// Canonical page images of every successful query (deterministic mode
/// makes these run-independent).
fn images(results: &[Result<Relation, HostError>]) -> Vec<Option<Vec<Vec<u8>>>> {
    results
        .iter()
        .map(|r| {
            r.as_ref()
                .ok()
                .map(|rel| rel.pages().iter().map(|p| p.raw_data().to_vec()).collect())
        })
        .collect()
}

/// Injected panics unwind through the default panic hook, which would spam
/// the test output with expected backtraces; silence panics on the named
/// worker threads only. (The library itself never touches the hook.)
fn quiet_worker_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("df-host-worker"));
            if !on_worker {
                default(info);
            }
        }));
    });
}

/// The old executor asserted `workers >= 1` deep inside the scheduler;
/// misconfiguration must now surface as a structured error up front.
#[test]
fn zero_workers_is_a_structured_error_not_a_panic() {
    let (db, queries) = setup();
    let err = run_host_queries(&db, &queries, &HostParams::with_workers(0)).unwrap_err();
    assert!(matches!(err, HostError::InvalidParams { .. }), "{err:?}");
    assert!(err.to_string().contains("workers"));
}

/// The tentpole acceptance test: one injected kernel panic mid-run fails
/// exactly the owning query with [`HostError::UnitPanicked`], while every
/// other query of the batch stays byte-identical to a fault-free run and
/// multiset-identical to the sequential oracle.
#[test]
fn injected_panic_is_contained_to_the_owning_query() {
    quiet_worker_panics();
    let (db, queries) = setup();
    let want = oracles(&db, &queries);

    let clean = HostParams {
        deterministic: true,
        ..HostParams::with_workers(2)
    };
    let clean_images = images(
        &run_host_queries(&db, &queries, &clean)
            .expect("fault-free run")
            .results,
    );

    let mut faulted = clean.clone();
    faulted.fault = FaultPlan {
        panic_on_unit: Some(5),
        ..FaultPlan::default()
    };
    let out = run_host_queries(&db, &queries, &faulted).expect("run survives the panic");

    let failed: Vec<usize> = (0..queries.len())
        .filter(|&i| out.results[i].is_err())
        .collect();
    assert_eq!(
        failed.len(),
        1,
        "exactly one query is the victim: {failed:?}"
    );
    let victim = failed[0];
    match out.results[victim].as_ref().unwrap_err() {
        HostError::UnitPanicked { query, payload, .. } => {
            assert_eq!(*query, victim);
            assert!(payload.contains("injected fault"), "payload: {payload}");
        }
        other => panic!("expected UnitPanicked, got {other:?}"),
    }
    assert_eq!(out.metrics.total_panics(), 1);
    assert_eq!(out.metrics.per_query[victim].failed_units, 1);
    assert_eq!(out.metrics.workers_lost(), 0, "the worker itself survives");

    let got_images = images(&out.results);
    for i in 0..queries.len() {
        if i == victim {
            continue;
        }
        let got = out.results[i].as_ref().expect("survivor succeeds");
        assert!(
            got.same_contents(&want[i]),
            "survivor query {i} diverged from the oracle"
        );
        assert_eq!(
            got_images[i], clean_images[i],
            "survivor query {i} is not byte-identical to the fault-free run"
        );
    }
}

/// A worker that dies before accepting any work shrinks the pool; its
/// queued unit is requeued on the survivor and every query still matches
/// the oracle.
#[test]
fn dead_worker_at_start_shrinks_the_pool_and_requeues() {
    let (db, queries) = setup();
    let want = oracles(&db, &queries);
    let params = HostParams {
        fault: FaultPlan {
            dead_workers: vec![1],
            ..FaultPlan::default()
        },
        ..HostParams::with_workers(2)
    };
    let out = run_host_queries(&db, &queries, &params).expect("run survives the death");
    for (i, (got, want)) in out.results.iter().zip(&want).enumerate() {
        let got = got.as_ref().expect("every query completes on the survivor");
        assert!(got.same_contents(want), "query {i} diverged");
    }
    assert_eq!(out.metrics.workers_lost(), 1);
    assert!(out.metrics.per_worker[1].lost);
    assert!(!out.metrics.per_worker[0].lost);
    assert_eq!(out.metrics.per_worker[1].units, 0);
}

/// Losing the whole pool yields a clean structured error for every query
/// that still needed worker service — never a deadlock.
#[test]
fn all_workers_dead_fails_cleanly_without_hanging() {
    let (db, queries) = setup();
    let params = HostParams {
        fault: FaultPlan {
            dead_workers: vec![0, 1],
            ..FaultPlan::default()
        },
        ..HostParams::with_workers(2)
    };
    let out = run_host_queries(&db, &queries, &params).expect("the run itself is orderly");
    for (i, r) in out.results.iter().enumerate() {
        match r {
            Err(HostError::WorkersExhausted { workers }) => assert_eq!(*workers, 2),
            other => panic!("query {i}: expected WorkersExhausted, got {other:?}"),
        }
    }
    assert_eq!(out.metrics.workers_lost(), 2);
    assert_eq!(out.metrics.total_units(), 0);
}

/// Injected delays perturb interleavings but never the answer.
#[test]
fn injected_delays_leave_results_byte_identical() {
    let (db, queries) = setup();
    let clean = HostParams {
        deterministic: true,
        ..HostParams::with_workers(4)
    };
    let baseline = images(
        &run_host_queries(&db, &queries, &clean)
            .expect("fault-free run")
            .results,
    );
    let mut delayed = clean.clone();
    delayed.fault = FaultPlan {
        delay_every: Some(3),
        delay: Duration::from_millis(1),
        ..FaultPlan::default()
    };
    let out = run_host_queries(&db, &queries, &delayed).expect("delays are harmless");
    assert_eq!(images(&out.results), baseline);
}

/// A wedged kernel (simulated by a delay far past the stall timeout) makes
/// the scheduler report [`HostError::Stalled`] instead of blocking forever.
#[test]
fn wedged_kernel_trips_the_stall_diagnostic() {
    let (db, queries) = setup();
    let params = HostParams {
        stall_timeout: Duration::from_millis(20),
        fault: FaultPlan {
            delay_every: Some(1),
            delay: Duration::from_secs(2),
            ..FaultPlan::default()
        },
        ..HostParams::with_workers(2)
    };
    let err = run_host_queries(&db, &queries, &params).unwrap_err();
    match err {
        HostError::Stalled {
            in_flight, waited, ..
        } => {
            assert!(in_flight > 0, "units were in flight when the run stalled");
            assert_eq!(waited, Duration::from_millis(20));
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}

/// Seeded random panics at 1 and 2 workers: every query either matches the
/// oracle or reports the contained panic, and the counters reconcile.
#[test]
fn seeded_panic_rate_matrix_contains_every_fault() {
    quiet_worker_panics();
    let (db, queries) = setup();
    let want = oracles(&db, &queries);
    for workers in [1usize, 2] {
        let params = HostParams {
            fault: FaultPlan {
                panic_rate: 0.05,
                seed: 0xD0E5,
                ..FaultPlan::default()
            },
            ..HostParams::with_workers(workers)
        };
        let out = run_host_queries(&db, &queries, &params).expect("run survives");
        let mut failed_queries = 0usize;
        for (i, r) in out.results.iter().enumerate() {
            match r {
                Ok(got) => assert!(
                    got.same_contents(&want[i]),
                    "query {i} diverged at {workers} workers"
                ),
                Err(HostError::UnitPanicked { .. }) => failed_queries += 1,
                Err(other) => panic!("query {i}: unexpected error {other:?}"),
            }
        }
        let failed_units: usize = out.metrics.per_query.iter().map(|q| q.failed_units).sum();
        assert_eq!(failed_units, out.metrics.total_panics());
        assert!(
            failed_queries <= out.metrics.total_panics(),
            "each failed query implies at least one contained panic"
        );
        assert_eq!(out.metrics.workers_lost(), 0);
    }
}

/// Worker wall clocks run from spawn, so even a worker that never receives
/// a unit reports a nonzero lifetime (the old executor clocked from first
/// receive and reported zero).
#[test]
fn idle_workers_report_nonzero_wall_time() {
    let (db, queries) = setup();
    let query = &queries[0];
    let (_, metrics) =
        run_host_query(&db, query, &HostParams::with_workers(8)).expect("host executes");
    assert_eq!(metrics.per_worker.len(), 8);
    for (id, w) in metrics.per_worker.iter().enumerate() {
        assert!(!w.wall.is_zero(), "worker {id} reports zero wall time");
        assert!(w.busy + w.send_wait <= w.wall + Duration::from_millis(5));
    }
}

//! Observability invariants: an installed tracer must account for every
//! byte and every unit exactly, and tracing must never perturb results.
//!
//! The load-bearing identity: the `QueryResult` path records each query's
//! result payload (the sum of its tuple image lengths), which is
//! packing-independent — so traced byte totals are directly comparable to
//! the sequential oracle's relation sizes.

use std::sync::Arc;

use df_host::{run_host_queries, HostParams};
use df_obs::{EventKind, Path, Tracer};
use df_query::{execute_readonly, ExecParams, QueryTree};
use df_relalg::{Catalog, Relation};
use df_sim::rng::SimRng;
use df_workload::{benchmark_queries, generate_database, random_query, BenchmarkSpec};
use proptest::prelude::*;

fn setup(scale: f64) -> (Catalog, Vec<QueryTree>, i64) {
    let spec = BenchmarkSpec::scaled(scale);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).expect("benchmark queries build");
    (db, queries, spec.cutoff())
}

/// Payload bytes of a relation: the packing-independent sum of its tuple
/// image lengths.
fn payload_bytes(rel: &Relation) -> u64 {
    rel.tuple_refs().map(|t| t.raw().len() as u64).sum()
}

fn traced_params(workers: usize) -> (HostParams, Arc<Tracer>) {
    let tracer = Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY));
    let params = HostParams {
        trace: Some(Arc::clone(&tracer)),
        ..HostParams::with_workers(workers)
    };
    (params, tracer)
}

/// Traced `QueryResult` bytes equal the oracle's relation payload sizes —
/// per query (via `QueryStats::result_payload_bytes`) and in total (via
/// the tracer's exact path counter) — across all ten benchmark queries.
#[test]
fn traced_result_bytes_equal_oracle_payload_for_all_ten_queries() {
    let (db, queries, _) = setup(0.01);
    let (params, tracer) = traced_params(4);
    let out = run_host_queries(&db, &queries, &params).expect("host executes");

    let mut oracle_total = 0u64;
    for (i, (query, stats)) in queries.iter().zip(&out.metrics.per_query).enumerate() {
        let want = execute_readonly(&db, query, &ExecParams::default()).expect("oracle");
        let want_bytes = payload_bytes(&want);
        assert_eq!(
            stats.result_payload_bytes, want_bytes,
            "query {i}: traced payload vs oracle"
        );
        oracle_total += want_bytes;
    }
    let snap = tracer.snapshot();
    assert_eq!(
        snap.bytes(Path::QueryResult),
        oracle_total,
        "QueryResult path total vs oracle payload sum"
    );
    assert_eq!(
        snap.transfers(Path::QueryResult),
        queries.len() as u64,
        "one QueryResult transfer per query"
    );
}

/// The tracer's distribution/arbitration byte totals equal the worker
/// stats' own accounting, and the event stream is internally consistent:
/// every dispatched unit has a kernel span, every span's class matches the
/// probe/sweep unit counts, every query is admitted and concluded.
#[test]
fn event_stream_is_conserved_against_metrics() {
    let (db, queries, _) = setup(0.01);
    let (params, tracer) = traced_params(2);
    let out = run_host_queries(&db, &queries, &params).expect("host executes");
    let m = &out.metrics;
    let snap = tracer.snapshot();
    assert_eq!(
        snap.dropped, 0,
        "ring must hold the whole run at this scale"
    );

    let bytes_in: u64 = m.per_worker.iter().map(|w| w.bytes_in).sum();
    let bytes_out: u64 = m.per_worker.iter().map(|w| w.bytes_out).sum();
    assert_eq!(snap.bytes(Path::Distribution), bytes_in);
    assert_eq!(snap.bytes(Path::Arbitration), bytes_out);

    let units = m.total_units();
    assert_eq!(snap.of_kind(EventKind::UnitDispatch).count(), units);
    // Kernel spans are counted per *logical operator*: in materialize mode
    // (the default here) every unit runs exactly one, so all three agree.
    assert_eq!(m.total_kernel_spans(), units);
    assert_eq!(
        snap.of_kind(EventKind::KernelStart).count(),
        m.total_kernel_spans()
    );
    assert_eq!(
        snap.of_kind(EventKind::KernelEnd).count(),
        m.total_kernel_spans()
    );

    // KernelEnd carries the unit class in `a`: 0 other, 1 probe, 2 sweep.
    let class = |c: u64| {
        snap.of_kind(EventKind::KernelEnd)
            .filter(|e| e.a == c)
            .count()
    };
    let probes: usize = m.per_query.iter().map(|q| q.probe_units).sum();
    let sweeps: usize = m.per_query.iter().map(|q| q.sweep_units).sum();
    assert_eq!(class(1), probes, "probe spans vs probe units");
    assert_eq!(class(2), sweeps, "sweep spans vs sweep units");

    assert_eq!(snap.of_kind(EventKind::QueryAdmit).count(), queries.len());
    let done: Vec<_> = snap.of_kind(EventKind::QueryDone).collect();
    assert_eq!(done.len(), queries.len());
    assert!(done.iter().all(|e| e.a == 0), "no query failed");

    // Units fired per the cell-fire events (`b` = units created by the
    // arrival) equal the units dispatched.
    let fired: u64 = snap.of_kind(EventKind::CellFire).map(|e| e.b).sum();
    assert_eq!(fired as usize, units, "cell fires vs dispatches");
}

/// Pipeline mode dispatches a fused restrict→project chain as ONE unit but
/// must still account one kernel span per logical operator: the traced
/// `KernelStart`/`KernelEnd` counts equal the workers' `kernel_spans`
/// total, which strictly exceeds the unit count (some chain fused), while
/// the distribution/arbitration byte identities keep holding.
#[test]
fn pipeline_span_units_conserve_per_operator_kernel_spans() {
    use df_core::TransferMode;
    use df_workload::pipeline_queries;
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    let queries = pipeline_queries(&db, &spec).expect("pipeline suite builds");
    let tracer = Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY));
    let params = HostParams {
        transfer: TransferMode::Pipeline,
        trace: Some(Arc::clone(&tracer)),
        ..HostParams::with_workers(2)
    };
    let out = run_host_queries(&db, &queries, &params).expect("host executes");
    let m = &out.metrics;
    let snap = tracer.snapshot();
    assert_eq!(snap.dropped, 0, "ring must hold the whole run");

    let units = m.total_units();
    let spans = m.total_kernel_spans();
    assert_eq!(snap.of_kind(EventKind::UnitDispatch).count(), units);
    assert_eq!(snap.of_kind(EventKind::KernelStart).count(), spans);
    assert_eq!(snap.of_kind(EventKind::KernelEnd).count(), spans);
    assert!(
        spans > units,
        "the pipeline suite has restrict→project chains, so fused units \
         must carry more logical spans ({spans}) than units ({units})"
    );

    let bytes_in: u64 = m.per_worker.iter().map(|w| w.bytes_in).sum();
    let bytes_out: u64 = m.per_worker.iter().map(|w| w.bytes_out).sum();
    assert_eq!(snap.bytes(Path::Distribution), bytes_in);
    assert_eq!(snap.bytes(Path::Arbitration), bytes_out);
}

/// Installing a tracer must not change results: deterministic-mode page
/// images are byte-identical with tracing on, off (`set_enabled(false)`),
/// and absent (`trace: None`).
#[test]
fn tracing_leaves_results_byte_identical() {
    let (db, queries, _) = setup(0.01);
    let images = |trace: Option<Arc<Tracer>>| -> Vec<Vec<Vec<u8>>> {
        let params = HostParams {
            deterministic: true,
            trace,
            ..HostParams::with_workers(4)
        };
        run_host_queries(&db, &queries, &params)
            .expect("host executes")
            .results
            .iter()
            .map(|r| {
                let r = r.as_ref().expect("query succeeds");
                r.pages().iter().map(|p| p.raw_data().to_vec()).collect()
            })
            .collect()
    };
    let untraced = images(None);
    let traced = images(Some(Arc::new(Tracer::new(4096))));
    assert_eq!(untraced, traced, "tracing changed result bytes");

    let disabled_tracer = Arc::new(Tracer::new(4096));
    disabled_tracer.set_enabled(false);
    let disabled = images(Some(Arc::clone(&disabled_tracer)));
    assert_eq!(untraced, disabled, "disabled tracer changed result bytes");
    assert!(
        disabled_tracer.snapshot().events.is_empty(),
        "disabled tracer must record nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random join-chain trees: the traced `QueryResult` byte total always
    /// equals the sequential oracle's relation payload, at any worker
    /// count and tracer capacity (byte counters are exact even when the
    /// tiny event ring wraps).
    #[test]
    fn traced_payload_matches_oracle_on_random_chains(
        seed in 0u64..1_000,
        workers in 1usize..5,
        capacity in prop_oneof![Just(8usize), Just(64 * 1024)],
    ) {
        let (db, _, cutoff) = setup(0.01);
        let mut rng = SimRng::new(seed);
        let query = random_query(&db, 5, 3, cutoff, &mut rng).expect("query builds");
        let want = execute_readonly(&db, &query, &ExecParams::default()).expect("oracle");

        let tracer = Arc::new(Tracer::new(capacity));
        let params = HostParams {
            trace: Some(Arc::clone(&tracer)),
            ..HostParams::with_workers(workers)
        };
        let out = run_host_queries(&db, std::slice::from_ref(&query), &params)
            .expect("host executes");
        let got = out.results[0].as_ref().expect("query succeeds");
        prop_assert!(got.same_contents(&want), "seed {} diverged", seed);

        let snap = tracer.snapshot();
        prop_assert_eq!(
            snap.bytes(Path::QueryResult),
            payload_bytes(&want),
            "seed {}: traced payload vs oracle", seed
        );
        prop_assert_eq!(
            out.metrics.per_query[0].result_payload_bytes,
            payload_bytes(got)
        );
    }
}

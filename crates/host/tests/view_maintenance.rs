//! Property-based differential tests for incremental view maintenance:
//! for random view trees (depth 1–4, mixing restricts, set-ops, joins,
//! and dedup projections) over random duplicate-heavy write batches
//! (appends *and* deletes), the maintained [`StandingView`] must stay
//! **byte-identical** to re-running the defining query from scratch
//! after every single write — never "close", never "same multiset,
//! different order".

use df_host::StandingView;
use df_query::{apply_write, execute_readonly, parse_query, stage_write, ExecParams};
use df_relalg::{Catalog, DataType, Relation, Schema, Tuple, Value};
use proptest::prelude::*;

const PAGE_SIZE: usize = 128;
const BASES: [&str; 3] = ["b0", "b1", "b2"];

fn base_schema() -> Schema {
    Schema::build()
        .attr("key", DataType::Int)
        .attr("val", DataType::Int)
        .finish()
        .expect("schema")
}

/// A catalog of three same-schema bases filled from `rows`, which draws
/// keys and vals from tiny domains so duplicates are the common case.
fn catalog(rows: &[(u8, u8, u8)]) -> Catalog {
    let mut db = Catalog::new();
    for (i, name) in BASES.iter().enumerate() {
        let tuples = rows
            .iter()
            .filter(|(base, _, _)| *base as usize % BASES.len() == i)
            .map(|&(_, k, v)| {
                Tuple::new(vec![
                    Value::Int(i64::from(k % 6)),
                    Value::Int(i64::from(v % 5)),
                ])
            });
        db.insert(Relation::from_tuples(name, base_schema(), PAGE_SIZE, tuples).expect("relation"))
            .expect("insert");
    }
    db
}

/// A deterministic word stream over the drawn entropy (cycled, so deep
/// trees never exhaust it).
struct Words<'a> {
    words: &'a [u64],
    next: usize,
}

impl Words<'_> {
    fn draw(&mut self) -> u64 {
        let w = self.words[self.next % self.words.len()];
        self.next += 1;
        w
    }
}

/// A schema-preserving expression over the bases: scans, restricts, and
/// counted set-ops, nested to `depth`. Every node keeps the (key, val)
/// schema, so any two chains can feed a set-op or a join.
fn gen_chain(w: &mut Words<'_>, depth: usize) -> String {
    if depth == 0 {
        return format!("(scan {})", BASES[w.draw() as usize % BASES.len()]);
    }
    match w.draw() % 4 {
        0 => format!("(scan {})", BASES[w.draw() as usize % BASES.len()]),
        1 => format!(
            "(restrict {} (< val {}))",
            gen_chain(w, depth - 1),
            w.draw() % 5
        ),
        2 => format!(
            "(union {} {})",
            gen_chain(w, depth - 1),
            gen_chain(w, depth - 1)
        ),
        _ => format!(
            "(difference {} {})",
            gen_chain(w, depth - 1),
            gen_chain(w, depth - 1)
        ),
    }
}

/// A full view definition: a chain, optionally capped by a join (the
/// retained-state delta path) or a dedup projection (the counted path).
fn gen_view(w: &mut Words<'_>, depth: usize) -> String {
    let body = gen_chain(w, depth.saturating_sub(1));
    match w.draw() % 4 {
        0 => body,
        1 => format!(
            "(join {} {} (= key key))",
            body,
            gen_chain(w, depth.saturating_sub(1))
        ),
        2 => format!("(project-distinct {} (key))", body),
        _ => format!("(project {} (val))", body),
    }
}

/// One write statement against a random base: an append whose source
/// restriction selects several (often duplicate) tuples from another
/// base, or a predicate delete.
fn gen_write(w: &mut Words<'_>) -> String {
    let target = BASES[w.draw() as usize % BASES.len()];
    if w.draw() % 3 == 0 {
        let attr = if w.draw() % 2 == 0 { "key" } else { "val" };
        format!("(delete {target} (= {attr} {}))", w.draw() % 6)
    } else {
        let source = BASES[w.draw() as usize % BASES.len()];
        format!(
            "(append (restrict (scan {source}) (< val {})) {target})",
            w.draw() % 5 + 1
        )
    }
}

/// The from-scratch oracle: parse and execute the defining query against
/// the current catalog, images in canonical (sorted) order.
fn oracle_images(db: &Catalog, text: &str) -> Vec<Vec<u8>> {
    let tree = parse_query(db, text).expect("oracle parse");
    let params = ExecParams {
        page_size: PAGE_SIZE,
        ..ExecParams::default()
    };
    let rel = execute_readonly(db, &tree, &params).expect("oracle run");
    let mut images: Vec<Vec<u8>> = rel.tuple_refs().map(|t| t.raw().to_vec()).collect();
    images.sort();
    images
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential contract: install a random view, stream random
    /// write batches through the same staged-delta path the serve engine
    /// uses, and demand byte-identity with the scratch oracle after
    /// every batch.
    #[test]
    fn maintained_view_matches_scratch_oracle_after_every_write(
        rows in prop::collection::vec((0u8..6, 0u8..6, 0u8..5), 3..40),
        entropy in prop::collection::vec(0u64..u64::MAX, 24),
        depth in 1usize..=4,
        num_writes in 1usize..=8,
    ) {
        let mut w = Words { words: &entropy, next: 0 };
        let text = gen_view(&mut w, depth);
        let mut db = catalog(&rows);
        let tree = parse_query(&db, &text).expect("view parses");
        let mut view = StandingView::install("v", &text, &db, &tree, PAGE_SIZE)
            .expect("view installs");
        prop_assert_eq!(
            view.tuple_images(),
            oracle_images(&db, &text),
            "installation materialized the oracle result: {}",
            text
        );

        let params = ExecParams { page_size: PAGE_SIZE, ..ExecParams::default() };
        for i in 0..num_writes {
            let write = gen_write(&mut w);
            let write_tree = parse_query(&db, &write).expect("write parses");
            let delta = stage_write(&db, &write_tree, &params).expect("write stages");
            let target = delta.target().to_string();
            let (inserts, deletes) = delta.base_change();
            apply_write(&mut db, delta).expect("write applies");
            view.apply_write(&target, &inserts, &deletes).expect("view maintains");
            prop_assert_eq!(
                view.tuple_images(),
                oracle_images(&db, &text),
                "view `{}` diverged after write {} (`{}`)",
                text, i, write
            );
        }
    }

    /// Replaying a batch's inserts and deletes through a view that does
    /// not read the target must be a no-op that moves zero delta pages.
    #[test]
    fn unrelated_writes_move_no_delta_pages(
        rows in prop::collection::vec((0u8..6, 0u8..6, 0u8..5), 3..30),
        entropy in prop::collection::vec(0u64..u64::MAX, 8),
    ) {
        let mut w = Words { words: &entropy, next: 0 };
        let db = catalog(&rows);
        // A view pinned to b0 only; writes target b1.
        let text = format!("(restrict (scan b0) (< val {}))", w.draw() % 5 + 1);
        let tree = parse_query(&db, &text).expect("view parses");
        let mut view = StandingView::install("v", &text, &db, &tree, PAGE_SIZE)
            .expect("view installs");
        let before = view.tuple_images();
        let images: Vec<Vec<u8>> = (0..4)
            .map(|_| {
                let mut buf = Vec::new();
                Tuple::new(vec![
                    Value::Int((w.draw() % 6) as i64),
                    Value::Int((w.draw() % 5) as i64),
                ])
                .encode(&base_schema(), &mut buf)
                .expect("encode");
                buf
            })
            .collect();
        let update = view.apply_write("b1", &images, &images[..2]).expect("no-op replay");
        prop_assert_eq!(update.delta_pages, 0);
        prop_assert!(!update.result_changed);
        prop_assert_eq!(view.tuple_images(), before);
    }
}

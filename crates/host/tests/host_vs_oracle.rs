//! Differential tests: the real-threads executor must produce exactly the
//! oracle's tuple multiset for every worker count and allocation strategy —
//! parallelism may reorder pages, never change the answer.

use df_core::AllocationStrategy;
use df_host::{run_host_queries, run_host_query, HostParams};
use df_query::{execute_readonly, ExecParams, QueryTree};
use df_relalg::Catalog;
use df_sim::rng::SimRng;
use df_workload::{benchmark_queries, generate_database, random_query, BenchmarkSpec};
use proptest::prelude::*;

fn setup(scale: f64) -> (Catalog, Vec<QueryTree>, i64) {
    let spec = BenchmarkSpec::scaled(scale);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).expect("benchmark queries build");
    (db, queries, spec.cutoff())
}

fn worker_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1, 2, cores];
    counts.dedup();
    counts
}

/// The tentpole acceptance check: all ten benchmark queries, at 1, 2 and
/// `available_parallelism` workers, under every allocation strategy,
/// tuple-set-identical to the sequential oracle.
#[test]
fn ten_queries_match_oracle_at_all_worker_counts_and_strategies() {
    let (db, queries, _) = setup(0.01);
    let oracle_params = ExecParams::default();
    let oracles: Vec<_> = queries
        .iter()
        .map(|q| execute_readonly(&db, q, &oracle_params).expect("oracle executes"))
        .collect();

    for workers in worker_counts() {
        for strategy in AllocationStrategy::ALL {
            let params = HostParams {
                strategy,
                ..HostParams::with_workers(workers)
            };
            let out = run_host_queries(&db, &queries, &params).expect("host executes");
            assert_eq!(out.results.len(), queries.len());
            for (i, (got, want)) in out.results.iter().zip(&oracles).enumerate() {
                let got = got.as_ref().expect("query succeeds");
                assert!(
                    got.same_contents(want),
                    "query {i} diverged from oracle at {workers} workers, {strategy}: \
                     {} tuples vs {}",
                    got.num_tuples(),
                    want.num_tuples(),
                );
            }
            assert_eq!(out.metrics.per_worker.len(), workers);
        }
    }
}

/// Concurrent admission of the whole batch (single `run_host_queries` call
/// admits all ten at once — the benchmark is read-only, so every query
/// holds shared locks concurrently) still matches per-query runs.
#[test]
fn batch_metrics_are_consistent() {
    let (db, queries, _) = setup(0.01);
    let params = HostParams::with_workers(4);
    let out = run_host_queries(&db, &queries, &params).expect("host executes");

    assert_eq!(out.metrics.per_query.len(), queries.len());
    let fired: usize = out.metrics.per_query.iter().map(|q| q.units_fired).sum();
    assert_eq!(
        fired,
        out.metrics.total_units(),
        "scheduler and worker unit counts agree"
    );
    for (i, (q, rel)) in out.metrics.per_query.iter().zip(&out.results).enumerate() {
        let rel = rel.as_ref().expect("query succeeds");
        assert_eq!(
            q.result_tuples,
            rel.num_tuples(),
            "query {i} result accounting"
        );
        assert!(q.elapsed <= out.metrics.elapsed);
    }
    assert!(out.metrics.total_bytes() > 0);
}

/// Deterministic mode: repeated runs are byte-identical page-for-page, not
/// just multiset-equal, regardless of interleaving.
#[test]
fn deterministic_mode_repeated_runs_agree_exactly() {
    let (db, queries, _) = setup(0.01);
    let params = HostParams {
        deterministic: true,
        ..HostParams::with_workers(4)
    };
    let images = |queries: &[QueryTree]| -> Vec<Vec<Vec<u8>>> {
        run_host_queries(&db, queries, &params)
            .expect("host executes")
            .results
            .iter()
            .map(|r| {
                let r = r.as_ref().expect("query succeeds");
                r.pages().iter().map(|p| p.raw_data().to_vec()).collect()
            })
            .collect()
    };
    let first = images(&queries);
    for _ in 0..3 {
        assert_eq!(images(&queries), first, "deterministic runs diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random join-chain trees at random worker counts and strategies
    /// always match the oracle.
    #[test]
    fn random_chain_queries_match_oracle(seed in 0u64..1_000, workers in 1usize..5) {
        let (db, _, cutoff) = setup(0.01);
        let mut rng = SimRng::new(seed);
        let query = random_query(&db, 5, 3, cutoff, &mut rng).expect("query builds");
        let strategy = AllocationStrategy::ALL[(seed % 4) as usize];
        let params = HostParams { strategy, ..HostParams::with_workers(workers) };

        let want = execute_readonly(&db, &query, &ExecParams::default()).expect("oracle");
        let (got, metrics) = run_host_query(&db, &query, &params).expect("host");
        prop_assert!(
            got.same_contents(&want),
            "seed {} diverged: {} tuples vs {}", seed, got.num_tuples(), want.num_tuples()
        );
        prop_assert_eq!(metrics.per_worker.len(), workers);
    }
}

/// Hash-accelerated equi-joins: every benchmark query's result is
/// byte-identical (deterministic mode) to the nested-loops run, and the
/// equi-join queries actually take the probe path.
#[test]
fn hash_join_matches_nested_byte_for_byte_on_all_ten_queries() {
    use df_core::JoinAlgo;
    let (db, queries, _) = setup(0.01);
    let run = |join: JoinAlgo| {
        let params = HostParams {
            deterministic: true,
            join,
            ..HostParams::with_workers(4)
        };
        run_host_queries(&db, &queries, &params).expect("host executes")
    };
    let nested = run(JoinAlgo::Nested);
    let hashed = run(JoinAlgo::Hash);
    let images = |out: &df_host::HostRunOutput| -> Vec<Vec<Vec<u8>>> {
        out.results
            .iter()
            .map(|r| {
                let r = r.as_ref().expect("query succeeds");
                r.pages().iter().map(|p| p.raw_data().to_vec()).collect()
            })
            .collect()
    };
    assert_eq!(
        images(&nested),
        images(&hashed),
        "hash join changed some query's result bytes"
    );
    let probes: usize = hashed.metrics.per_query.iter().map(|q| q.probe_units).sum();
    let nested_probes: usize = nested.metrics.per_query.iter().map(|q| q.probe_units).sum();
    assert!(probes > 0, "no benchmark equi-join took the probe path");
    assert_eq!(nested_probes, 0, "nested algorithm must never probe");
    for q in &hashed.metrics.per_query {
        assert!(
            q.probe_units + q.sweep_units <= q.units_fired,
            "pair units exceed total units"
        );
    }
}

/// A non-equi θ-join under `JoinAlgo::Hash` silently degrades to the
/// nested-loops sweep — right answer, zero probe units.
#[test]
fn non_equi_theta_join_under_hash_falls_back_to_sweep() {
    use df_core::JoinAlgo;
    use df_query::TreeBuilder;
    use df_relalg::{CmpOp, DataType, Relation, Schema, Tuple, Value};

    let mut db = Catalog::new();
    let s = Schema::build()
        .attr("k", DataType::Int)
        .attr("v", DataType::Int)
        .finish()
        .unwrap();
    for (name, n) in [("a", 30i64), ("b", 20i64)] {
        db.insert(
            Relation::from_tuples(
                name,
                s.clone(),
                16 + 16 * 4,
                (0..n).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 5)])),
            )
            .unwrap(),
        )
        .unwrap();
    }
    let b = TreeBuilder::new(&db);
    for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Ne] {
        let q = b
            .scan("a")
            .unwrap()
            .restrict_where("k", CmpOp::Lt, Value::Int(8))
            .unwrap()
            .join_on(b.scan("b").unwrap(), "v", op, "k")
            .unwrap()
            .finish();
        let want = execute_readonly(&db, &q, &ExecParams::default()).expect("oracle");
        let params = HostParams {
            join: JoinAlgo::Hash,
            ..HostParams::with_workers(2)
        };
        let (got, metrics) = run_host_query(&db, &q, &params).expect("host");
        assert!(
            got.same_contents(&want),
            "θ-join {op:?} diverged under hash"
        );
        let stats = &metrics.per_query[0];
        assert_eq!(stats.probe_units, 0, "θ-join {op:?} must not probe");
        assert!(stats.sweep_units > 0, "θ-join {op:?} must sweep");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hash and nested runs of random join-chain trees are byte-identical
    /// in deterministic mode.
    #[test]
    fn random_chain_queries_hash_equals_nested(seed in 0u64..1_000, workers in 1usize..5) {
        use df_core::JoinAlgo;
        let (db, _, cutoff) = setup(0.01);
        let mut rng = SimRng::new(seed);
        let query = random_query(&db, 5, 3, cutoff, &mut rng).expect("query builds");
        let run = |join: JoinAlgo| -> Vec<Vec<u8>> {
            let params = HostParams {
                deterministic: true,
                join,
                ..HostParams::with_workers(workers)
            };
            let (rel, _) = run_host_query(&db, &query, &params).expect("host");
            rel.pages().iter().map(|p| p.raw_data().to_vec()).collect()
        };
        prop_assert_eq!(run(JoinAlgo::Nested), run(JoinAlgo::Hash), "seed {} diverged", seed);
    }
}

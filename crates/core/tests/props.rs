//! Property tests of the data-flow machine: random tiny databases, random
//! queries, random machine shapes — the machine must always agree with the
//! oracle and satisfy basic accounting invariants.

use df_core::{run_queries, AllocationStrategy, Granularity, MachineParams};
use df_query::{execute_readonly, ExecParams, TreeBuilder};
use df_relalg::{Catalog, CmpOp, DataType, Relation, Schema, Tuple, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::build()
        .attr("k", DataType::Int)
        .attr("v", DataType::Int)
        .finish()
        .expect("schema")
}

/// A tiny random database of two relations.
fn arb_db() -> impl Strategy<Value = Catalog> {
    (
        prop::collection::vec((-8i64..8, -8i64..8), 0..40),
        prop::collection::vec((-8i64..8, -8i64..8), 0..40),
    )
        .prop_map(|(a_rows, b_rows)| {
            let mut db = Catalog::new();
            for (name, rows) in [("a", a_rows), ("b", b_rows)] {
                db.insert(
                    Relation::from_tuples(
                        name,
                        schema(),
                        16 + 16 * 3,
                        rows.iter()
                            .map(|&(k, v)| Tuple::new(vec![Value::Int(k), Value::Int(v)])),
                    )
                    .expect("relation"),
                )
                .expect("insert");
            }
            db
        })
}

/// A random query over relations `a` and `b`.
fn arb_query_shape() -> impl Strategy<Value = (u8, i64, i64)> {
    (0u8..5, -8i64..8, -8i64..8)
}

fn build_query(db: &Catalog, shape: (u8, i64, i64)) -> df_query::QueryTree {
    let (kind, c1, c2) = shape;
    let b = TreeBuilder::new(db);
    match kind {
        0 => b
            .scan("a")
            .unwrap()
            .restrict_where("k", CmpOp::Lt, Value::Int(c1))
            .unwrap()
            .finish(),
        1 => b
            .scan("a")
            .unwrap()
            .restrict_where("k", CmpOp::Ge, Value::Int(c1))
            .unwrap()
            .equi_join(b.scan("b").unwrap(), "v", "k")
            .unwrap()
            .finish(),
        2 => b
            .scan("a")
            .unwrap()
            .equi_join(
                b.scan("b")
                    .unwrap()
                    .restrict_where("v", CmpOp::Le, Value::Int(c2))
                    .unwrap(),
                "k",
                "k",
            )
            .unwrap()
            .project(&["v", "r_v"], false)
            .unwrap()
            .finish(),
        3 => b
            .scan("a")
            .unwrap()
            .union(b.scan("b").unwrap())
            .unwrap()
            .finish(),
        _ => b
            .scan("a")
            .unwrap()
            .difference(
                b.scan("b")
                    .unwrap()
                    .restrict_where("k", CmpOp::Gt, Value::Int(c2))
                    .unwrap(),
            )
            .unwrap()
            .finish(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Machine == oracle for random (db, query, machine shape, granularity).
    #[test]
    fn machine_always_agrees_with_oracle(
        db in arb_db(),
        shape in arb_query_shape(),
        processors in 1usize..6,
        cells in 1usize..3,
        frames in 4usize..64,
        g_pick in 0usize..3,
    ) {
        let query = build_query(&db, shape);
        let oracle = execute_readonly(&db, &query, &ExecParams::default()).unwrap();
        let mut params = MachineParams::with_processors(processors);
        params.cells_per_processor = cells;
        params.cache.frames = frames;
        params.page_size = 16 + 16 * 3;
        let g = Granularity::ALL[g_pick];
        let out = run_queries(
            &db,
            std::slice::from_ref(&query),
            &params,
            g,
            AllocationStrategy::default(),
        )
        .unwrap();
        prop_assert!(
            out.results[0].same_contents(&oracle),
            "granularity {g}, {processors} procs, {frames} frames: {} vs {} tuples",
            out.results[0].num_tuples(),
            oracle.num_tuples()
        );
        // Accounting invariants.
        let m = &out.metrics;
        prop_assert!(m.elapsed.as_nanos() > 0 || oracle.is_empty());
        prop_assert!(m.processor_utilization() <= 1.0 + 1e-9);
        prop_assert!(m.arbitration.bytes >= m.arbitration.transfers,
            "packets smaller than 1 byte each");
    }

    /// Byte conservation: everything written to disk is an intermediate
    /// spill, so disk writes never exceed distribution-network traffic.
    #[test]
    fn spills_are_bounded_by_produced_pages(
        db in arb_db(),
        shape in arb_query_shape(),
        frames in 4usize..16,
    ) {
        let query = build_query(&db, shape);
        let mut params = MachineParams::with_processors(3);
        params.cache.frames = frames;
        params.page_size = 16 + 16 * 3;
        let out = run_queries(
            &db,
            std::slice::from_ref(&query),
            &params,
            Granularity::Relation,
            AllocationStrategy::default(),
        )
        .unwrap();
        let m = &out.metrics;
        prop_assert!(
            m.disk_write.bytes <= m.distribution.bytes + m.arbitration.bytes,
            "spilled {} B but produced only {} B",
            m.disk_write.bytes,
            m.distribution.bytes + m.arbitration.bytes
        );
    }
}

proptest! {
    /// Observability conservation: the per-interval demand series and an
    /// installed tracer are fed from exactly the transfers that feed the
    /// network `ByteCounter`s, so all three totals agree to the byte — for
    /// any database, query shape, and granularity.
    #[test]
    fn bandwidth_series_and_trace_equal_counters(
        db in arb_db(),
        shape in arb_query_shape(),
        page_level in 0u8..2,
    ) {
        use df_obs::{Path, Tracer};
        use std::sync::Arc;

        let query = build_query(&db, shape);
        let tracer = Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY));
        let mut params = MachineParams::with_processors(3);
        params.page_size = 16 + 16 * 3;
        params.trace = Some(Arc::clone(&tracer));
        let g = if page_level == 1 { Granularity::Page } else { Granularity::Relation };
        let out = run_queries(
            &db,
            std::slice::from_ref(&query),
            &params,
            g,
            AllocationStrategy::default(),
        )
        .unwrap();
        let m = &out.metrics;
        prop_assert_eq!(m.arbitration_series.total_bytes(), m.arbitration.bytes);
        prop_assert_eq!(m.distribution_series.total_bytes(), m.distribution.bytes);
        let snap = tracer.snapshot();
        prop_assert_eq!(snap.bytes(Path::Arbitration), m.arbitration.bytes);
        prop_assert_eq!(snap.bytes(Path::Distribution), m.distribution.bytes);
    }
}
